"""Micro-op (µop) definitions of the GANAX ISA (paper Section IV).

The ISA has three groups:

* **Access µops** configure and control the strided µindex generators in the
  access µ-engine: ``access.cfg``, ``access.start``, ``access.stop``.
* **SIMD execute µops** specify only the *type* of operation — they carry no
  source/destination fields because the access µ-engine supplies addresses —
  and are preloaded into the local µop buffers: ``add``, ``mul``, ``mac``,
  ``pool``, ``act`` plus ``repeat``.
* **MIMD µops** live in the global µop buffer and orchestrate the PVs:
  ``mimd.ld`` loads a microarchitectural register of all PEs in one PV, and
  ``mimd.exe`` sends a (possibly different) local µop index to every PV.

Every µop is a small frozen dataclass; :mod:`repro.isa.encoding` maps them to
and from the bit-level formats described in the paper (64-bit global µops with
one 4-bit index field per PV and a 1-bit SIMD/MIMD-SIMD mode flag).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from ..errors import IsaError


class ConfigRegister(enum.Enum):
    """The five configuration registers of a strided µindex generator."""

    ADDR = 0
    OFFSET = 1
    STEP = 2
    END = 3
    REPEAT = 4


class AddressGenerator(enum.IntEnum):
    """Index of a strided µindex generator inside an access µ-engine."""

    INPUT = 0
    WEIGHT = 1
    OUTPUT = 2


class ExecuteOp(enum.Enum):
    """Operation types the execute µ-engine ALU supports."""

    ADD = "add"
    MUL = "mul"
    MAC = "mac"
    POOL = "pool"
    ACT = "act"
    NOP = "nop"


@dataclass(frozen=True)
class MicroOp:
    """Base class of every µop."""

    @property
    def mnemonic(self) -> str:
        raise NotImplementedError

    @property
    def is_access(self) -> bool:
        return isinstance(self, (AccessCfg, AccessStart, AccessStop))

    @property
    def is_execute(self) -> bool:
        return isinstance(self, (ExecuteUop, RepeatUop))

    @property
    def is_mimd(self) -> bool:
        return isinstance(self, (MimdLoad, MimdExecute))


# ----------------------------------------------------------------------
# Access µops
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccessCfg(MicroOp):
    """``access.cfg %pv_idx, %addrgen_idx, %dst, imm``

    Loads a 16-bit immediate into one of the five configuration registers of
    one address generator of the access µ-engine of every PE in PV
    ``pv_index``.
    """

    pv_index: int
    generator: AddressGenerator
    register: ConfigRegister
    immediate: int

    def __post_init__(self) -> None:
        if self.pv_index < 0:
            raise IsaError(f"access.cfg: pv_index must be >= 0, got {self.pv_index}")
        if not (0 <= self.immediate < (1 << 16)):
            raise IsaError(
                f"access.cfg: immediate {self.immediate} does not fit in 16 bits"
            )

    @property
    def mnemonic(self) -> str:
        return "access.cfg"


@dataclass(frozen=True)
class AccessStart(MicroOp):
    """``access.start %pv_idx, %addrgen_idx`` — begin address generation."""

    pv_index: int
    generator: AddressGenerator

    def __post_init__(self) -> None:
        if self.pv_index < 0:
            raise IsaError(f"access.start: pv_index must be >= 0, got {self.pv_index}")

    @property
    def mnemonic(self) -> str:
        return "access.start"


@dataclass(frozen=True)
class AccessStop(MicroOp):
    """``access.stop %pv_idx, %addrgen_idx`` — interrupt address generation."""

    pv_index: int
    generator: AddressGenerator

    def __post_init__(self) -> None:
        if self.pv_index < 0:
            raise IsaError(f"access.stop: pv_index must be >= 0, got {self.pv_index}")

    @property
    def mnemonic(self) -> str:
        return "access.stop"


# ----------------------------------------------------------------------
# Execute µops (SIMD group)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecuteUop(MicroOp):
    """An execute µop: only the operation type, no operand fields.

    ``add``/``mul``/``mac`` consume addresses from the µindex generators for
    their source and destination operands; ``act`` consumes one source and
    one destination address; ``pool`` consumes a window of source addresses.
    ``activation`` selects the non-linear function applied by ``act``.
    """

    op: ExecuteOp
    activation: str = "relu"

    _ACTIVATIONS = ("relu", "leaky_relu", "tanh", "sigmoid", "identity")

    def __post_init__(self) -> None:
        if not isinstance(self.op, ExecuteOp):
            raise IsaError(f"invalid execute op {self.op!r}")
        if self.op is ExecuteOp.ACT and self.activation not in self._ACTIVATIONS:
            raise IsaError(
                f"act µop has unknown activation '{self.activation}', "
                f"expected one of {self._ACTIVATIONS}"
            )

    @property
    def mnemonic(self) -> str:
        return self.op.value


@dataclass(frozen=True)
class RepeatUop(MicroOp):
    """``repeat`` — repeat the next fetched µop ``count`` times.

    The repetition count lives in a per-PE microarchitectural register that a
    ``mimd.ld`` µop preloads; ``count`` here mirrors that register so the
    machine and the analytical model can reason about the schedule without
    re-simulating the load.  A count of 0 means "use the register value".
    """

    count: int = 0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise IsaError(f"repeat count must be >= 0, got {self.count}")

    @property
    def mnemonic(self) -> str:
        return "repeat"


# ----------------------------------------------------------------------
# MIMD µops
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MimdLoad(MicroOp):
    """``mimd.ld %pv_idx, %dst, imm`` — load an immediate into a PE register.

    Used mainly to preload the ``repeat`` register of all PEs within a PV.
    """

    pv_index: int
    destination: str
    immediate: int

    _REGISTERS = ("repeat", "stride", "base")

    def __post_init__(self) -> None:
        if self.pv_index < 0:
            raise IsaError(f"mimd.ld: pv_index must be >= 0, got {self.pv_index}")
        if self.destination not in self._REGISTERS:
            raise IsaError(
                f"mimd.ld: unknown destination register '{self.destination}', "
                f"expected one of {self._REGISTERS}"
            )
        if not (0 <= self.immediate < (1 << 16)):
            raise IsaError(
                f"mimd.ld: immediate {self.immediate} does not fit in 16 bits"
            )

    @property
    def mnemonic(self) -> str:
        return "mimd.ld"


@dataclass(frozen=True)
class MimdExecute(MicroOp):
    """``mimd.exe %uop_index_1, ..., %uop_index_N``

    The i-th PV fetches the µop at ``local_indices[i]`` from its local µop
    buffer and executes it across all its PEs.  Different PVs may receive
    different indices, which is what makes the array MIMD at PV granularity
    while staying SIMD inside each PV.
    """

    local_indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.local_indices:
            raise IsaError("mimd.exe requires at least one local µop index")
        if any(i < 0 for i in self.local_indices):
            raise IsaError("mimd.exe: local µop indices must be >= 0")
        object.__setattr__(self, "local_indices", tuple(int(i) for i in self.local_indices))

    @property
    def mnemonic(self) -> str:
        return "mimd.exe"

    @property
    def is_uniform(self) -> bool:
        """True when every PV receives the same index (degenerates to SIMD)."""
        return len(set(self.local_indices)) == 1


#: µops that may appear in a local µop buffer.
LOCAL_BUFFER_UOPS = (ExecuteUop, RepeatUop)

#: µops that may appear in the global µop buffer.
GLOBAL_BUFFER_UOPS = (ExecuteUop, RepeatUop, MimdLoad, MimdExecute, AccessCfg, AccessStart, AccessStop)
