"""The GANAX µop instruction set: definitions, encoding, assembler, programs."""

from .assembler import assemble, assemble_line, disassemble, disassemble_uop
from .encoding import (
    GLOBAL_UOP_BITS,
    LOCAL_UOP_BITS,
    PV_INDEX_FIELD_BITS,
    decode_global_uop,
    decode_local_uop,
    encode_global_uop,
    encode_local_uop,
    encoded_size_bits,
    is_mimd_word,
)
from .program import MicroProgram, MicroProgramBuilder
from .uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    MicroOp,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)

__all__ = [
    "assemble",
    "assemble_line",
    "disassemble",
    "disassemble_uop",
    "GLOBAL_UOP_BITS",
    "LOCAL_UOP_BITS",
    "PV_INDEX_FIELD_BITS",
    "decode_global_uop",
    "decode_local_uop",
    "encode_global_uop",
    "encode_local_uop",
    "encoded_size_bits",
    "is_mimd_word",
    "MicroProgram",
    "MicroProgramBuilder",
    "AccessCfg",
    "AccessStart",
    "AccessStop",
    "AddressGenerator",
    "ConfigRegister",
    "ExecuteOp",
    "ExecuteUop",
    "MicroOp",
    "MimdExecute",
    "MimdLoad",
    "RepeatUop",
]
