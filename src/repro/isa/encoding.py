"""Bit-level encoding of GANAX µops.

The paper fixes the geometry of the global µop buffer: 32 entries of 64 bits,
with four bits per PV used to index that PV's local µop buffer and one extra
bit selecting the execution model (SIMD or MIMD-SIMD) for the current
operation.  Local µops are small (the execute group has no operand fields), so
we encode them in 16 bits.

The encoding here is a concrete, reversible realisation of that description.
Round-tripping (``decode(encode(uop)) == uop``) is property-tested; the cycle
level machine itself operates on the dataclass µops and only uses the encoder
to size buffers and to charge µop-fetch energy, exactly like the real design
would fetch encoded words.

Global µop word layout::

    bits 63..0   : the 64-bit payload of the paper's global µop entry
      SIMD mode  : bits 15..0 hold the encoded local µop broadcast to all PEs,
                   bits 23..16 hold a PV index where relevant,
                   bits 47..32 hold a 16-bit immediate,
                   bits 26..24 hold an address-generator index,
                   bits 30..28 hold a configuration-register index.
      MIMD mode  : bits 4*i+3 .. 4*i hold the local µop buffer index for PV i
                   (16 PVs x 4 bits fill the 64-bit entry, as in the paper).
    bits 67..64  : opcode (sideband, analogous to the buffer's control bits)
    bit  68      : mode (0 = SIMD, 1 = MIMD-SIMD) — the paper's "extra one
                   bit in the global µops" that selects the execution model.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import IsaError
from .uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    MicroOp,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)

#: Number of bits of one encoded global µop (paper: 64).
GLOBAL_UOP_BITS = 64

#: Number of bits of one encoded local µop.
LOCAL_UOP_BITS = 16

#: Bits of the global µop used per PV to index its local buffer (paper: 4).
PV_INDEX_FIELD_BITS = 4

_MODE_SHIFT = 68
_OPCODE_SHIFT = 64
_OPCODE_MASK = 0xF

#: Total bits of an encoded word including the opcode/mode sideband.
ENCODED_GLOBAL_WORD_BITS = 69

# Opcodes for the global encoding.
_OPCODES = {
    "exec": 0x0,
    "repeat": 0x1,
    "mimd.ld": 0x2,
    "mimd.exe": 0x3,
    "access.cfg": 0x4,
    "access.start": 0x5,
    "access.stop": 0x6,
}
_OPCODES_REVERSE = {v: k for k, v in _OPCODES.items()}

# Local (16-bit) encoding: bits 15..12 opcode, 11..8 op kind, 7..0 payload.
_LOCAL_EXEC_OPCODE = 0x0
_LOCAL_REPEAT_OPCODE = 0x1
_EXEC_OP_CODES = {
    ExecuteOp.ADD: 0x0,
    ExecuteOp.MUL: 0x1,
    ExecuteOp.MAC: 0x2,
    ExecuteOp.POOL: 0x3,
    ExecuteOp.ACT: 0x4,
    ExecuteOp.NOP: 0x5,
}
_EXEC_OP_REVERSE = {v: k for k, v in _EXEC_OP_CODES.items()}
_ACTIVATION_CODES = {"relu": 0, "leaky_relu": 1, "tanh": 2, "sigmoid": 3, "identity": 4}
_ACTIVATION_REVERSE = {v: k for k, v in _ACTIVATION_CODES.items()}


# ----------------------------------------------------------------------
# Local µop encoding
# ----------------------------------------------------------------------
def encode_local_uop(uop: MicroOp) -> int:
    """Encode a local-buffer µop (execute group) into a 16-bit word."""
    if isinstance(uop, ExecuteUop):
        payload = _ACTIVATION_CODES[uop.activation] if uop.op is ExecuteOp.ACT else 0
        return (
            (_LOCAL_EXEC_OPCODE << 12)
            | (_EXEC_OP_CODES[uop.op] << 8)
            | (payload & 0xFF)
        )
    if isinstance(uop, RepeatUop):
        if uop.count >= (1 << 12):
            raise IsaError(f"repeat count {uop.count} does not fit in 12 bits")
        return (_LOCAL_REPEAT_OPCODE << 12) | uop.count
    raise IsaError(f"µop {uop!r} cannot live in a local µop buffer")


def decode_local_uop(word: int) -> MicroOp:
    """Decode a 16-bit local µop word."""
    if not (0 <= word < (1 << LOCAL_UOP_BITS)):
        raise IsaError(f"local µop word {word:#x} does not fit in {LOCAL_UOP_BITS} bits")
    opcode = (word >> 12) & 0xF
    if opcode == _LOCAL_EXEC_OPCODE:
        op_code = (word >> 8) & 0xF
        if op_code not in _EXEC_OP_REVERSE:
            raise IsaError(f"unknown execute op code {op_code:#x}")
        op = _EXEC_OP_REVERSE[op_code]
        payload = word & 0xFF
        if op is ExecuteOp.ACT:
            if payload not in _ACTIVATION_REVERSE:
                raise IsaError(f"unknown activation code {payload:#x}")
            return ExecuteUop(op=op, activation=_ACTIVATION_REVERSE[payload])
        return ExecuteUop(op=op)
    if opcode == _LOCAL_REPEAT_OPCODE:
        return RepeatUop(count=word & 0xFFF)
    raise IsaError(f"unknown local µop opcode {opcode:#x}")


# ----------------------------------------------------------------------
# Global µop encoding
# ----------------------------------------------------------------------
def encode_global_uop(uop: MicroOp, num_pvs: int = 16) -> int:
    """Encode a global-buffer µop into its 64-bit entry plus sideband bits."""
    if num_pvs <= 0 or num_pvs * PV_INDEX_FIELD_BITS > 64:
        raise IsaError(f"cannot encode indices for {num_pvs} PVs in 64 bits")
    if isinstance(uop, MimdExecute):
        if len(uop.local_indices) > num_pvs:
            raise IsaError(
                f"mimd.exe carries {len(uop.local_indices)} indices but the "
                f"encoding supports only {num_pvs} PVs"
            )
        word = (1 << _MODE_SHIFT) | (_OPCODES["mimd.exe"] << _OPCODE_SHIFT)
        for pv, index in enumerate(uop.local_indices):
            if index >= (1 << PV_INDEX_FIELD_BITS):
                raise IsaError(
                    f"local µop index {index} does not fit in "
                    f"{PV_INDEX_FIELD_BITS} bits"
                )
            word |= index << (PV_INDEX_FIELD_BITS * pv)
        return word

    if isinstance(uop, MimdLoad):
        word = (1 << _MODE_SHIFT) | (_OPCODES["mimd.ld"] << _OPCODE_SHIFT)
        word |= (uop.pv_index & 0xFF) << 16
        word |= (uop.immediate & 0xFFFF) << 32
        registers = MimdLoad._REGISTERS
        word |= (registers.index(uop.destination) & 0x7) << 24
        return word

    if isinstance(uop, AccessCfg):
        word = _OPCODES["access.cfg"] << _OPCODE_SHIFT
        word |= (uop.pv_index & 0xFF) << 16
        word |= (int(uop.generator) & 0x7) << 24
        word |= (uop.register.value & 0x7) << 28
        word |= (uop.immediate & 0xFFFF) << 32
        return word

    if isinstance(uop, (AccessStart, AccessStop)):
        key = "access.start" if isinstance(uop, AccessStart) else "access.stop"
        word = _OPCODES[key] << _OPCODE_SHIFT
        word |= (uop.pv_index & 0xFF) << 16
        word |= (int(uop.generator) & 0x7) << 24
        return word

    if isinstance(uop, (ExecuteUop, RepeatUop)):
        # SIMD broadcast of a local µop: mode bit 0, local encoding in 15..0.
        opcode = _OPCODES["repeat"] if isinstance(uop, RepeatUop) else _OPCODES["exec"]
        return (opcode << _OPCODE_SHIFT) | encode_local_uop(uop)

    raise IsaError(f"µop {uop!r} cannot live in the global µop buffer")


def decode_global_uop(word: int, num_pvs: int = 16) -> MicroOp:
    """Decode a global µop word produced by :func:`encode_global_uop`."""
    if not (0 <= word < (1 << ENCODED_GLOBAL_WORD_BITS)):
        raise IsaError(
            f"global µop word does not fit in {ENCODED_GLOBAL_WORD_BITS} bits"
        )
    opcode = (word >> _OPCODE_SHIFT) & _OPCODE_MASK
    if opcode not in _OPCODES_REVERSE:
        raise IsaError(f"unknown global µop opcode {opcode:#x}")
    kind = _OPCODES_REVERSE[opcode]

    if kind == "mimd.exe":
        indices = tuple(
            (word >> (PV_INDEX_FIELD_BITS * pv)) & ((1 << PV_INDEX_FIELD_BITS) - 1)
            for pv in range(num_pvs)
        )
        return MimdExecute(local_indices=indices)
    if kind == "mimd.ld":
        registers = MimdLoad._REGISTERS
        reg_index = (word >> 24) & 0x7
        if reg_index >= len(registers):
            raise IsaError(f"unknown mimd.ld register index {reg_index}")
        return MimdLoad(
            pv_index=(word >> 16) & 0xFF,
            destination=registers[reg_index],
            immediate=(word >> 32) & 0xFFFF,
        )
    if kind == "access.cfg":
        return AccessCfg(
            pv_index=(word >> 16) & 0xFF,
            generator=AddressGenerator((word >> 24) & 0x7),
            register=ConfigRegister((word >> 28) & 0x7),
            immediate=(word >> 32) & 0xFFFF,
        )
    if kind == "access.start":
        return AccessStart(
            pv_index=(word >> 16) & 0xFF,
            generator=AddressGenerator((word >> 24) & 0x7),
        )
    if kind == "access.stop":
        return AccessStop(
            pv_index=(word >> 16) & 0xFF,
            generator=AddressGenerator((word >> 24) & 0x7),
        )
    # exec / repeat: SIMD broadcast of a local µop.
    return decode_local_uop(word & 0xFFFF)


def is_mimd_word(word: int) -> bool:
    """The 1-bit mode field: True when the word is a MIMD-SIMD µop."""
    return bool((word >> _MODE_SHIFT) & 0x1)


def encoded_size_bits(uop: MicroOp) -> int:
    """Size in bits of a µop in the buffer it belongs to."""
    if isinstance(uop, (ExecuteUop, RepeatUop)):
        return LOCAL_UOP_BITS
    return GLOBAL_UOP_BITS
