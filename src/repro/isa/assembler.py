"""Textual assembler / disassembler for GANAX µops.

The assembler accepts one µop per line using the mnemonics of Section IV of
the paper, e.g.::

    access.cfg  %pv0, %gen0, %addr, 17
    access.cfg  %pv0, %gen0, %step, 2
    access.start %pv0, %gen0
    mimd.ld     %pv1, %repeat, 64
    repeat
    mac
    mimd.exe    0, 1, 0, 1
    act         tanh

Comments start with ``#`` or ``;`` and blank lines are ignored.  The
disassembler produces text the assembler accepts (round-trip tested).
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence

from ..errors import AssemblerError
from .uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    MicroOp,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)

_REGISTER_NAMES = {
    "addr": ConfigRegister.ADDR,
    "offset": ConfigRegister.OFFSET,
    "step": ConfigRegister.STEP,
    "end": ConfigRegister.END,
    "repeat": ConfigRegister.REPEAT,
}
_REGISTER_NAMES_REVERSE = {v: k for k, v in _REGISTER_NAMES.items()}

_GENERATOR_NAMES = {
    "gen0": AddressGenerator.INPUT,
    "gen1": AddressGenerator.WEIGHT,
    "gen2": AddressGenerator.OUTPUT,
    "input": AddressGenerator.INPUT,
    "weight": AddressGenerator.WEIGHT,
    "output": AddressGenerator.OUTPUT,
}
_GENERATOR_CANONICAL = {
    AddressGenerator.INPUT: "gen0",
    AddressGenerator.WEIGHT: "gen1",
    AddressGenerator.OUTPUT: "gen2",
}

_EXECUTE_MNEMONICS = {op.value: op for op in ExecuteOp if op is not ExecuteOp.NOP}
_EXECUTE_MNEMONICS["nop"] = ExecuteOp.NOP


def _strip(line: str) -> str:
    for marker in ("#", ";"):
        if marker in line:
            line = line.split(marker, 1)[0]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    if not text:
        return []
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_pv(token: str, mnemonic: str) -> int:
    match = re.fullmatch(r"%?pv(\d+)", token)
    if not match:
        raise AssemblerError(f"{mnemonic}: expected a PV operand like %pv3, got '{token}'")
    return int(match.group(1))


def _parse_generator(token: str, mnemonic: str) -> AddressGenerator:
    key = token.lstrip("%").lower()
    if key not in _GENERATOR_NAMES:
        raise AssemblerError(
            f"{mnemonic}: unknown address generator '{token}' "
            f"(expected %gen0/%gen1/%gen2 or %input/%weight/%output)"
        )
    return _GENERATOR_NAMES[key]


def _parse_register(token: str, mnemonic: str) -> ConfigRegister:
    key = token.lstrip("%").lower().rstrip(".")
    if key not in _REGISTER_NAMES:
        raise AssemblerError(
            f"{mnemonic}: unknown configuration register '{token}' "
            f"(expected %addr/%offset/%step/%end/%repeat)"
        )
    return _REGISTER_NAMES[key]


def _parse_int(token: str, mnemonic: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"{mnemonic}: expected an integer, got '{token}'") from exc


def assemble_line(line: str) -> MicroOp | None:
    """Assemble a single line; returns None for blank/comment-only lines."""
    text = _strip(line)
    if not text:
        return None
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    operands = _split_operands(parts[1] if len(parts) > 1 else "")

    if mnemonic == "access.cfg":
        if len(operands) != 4:
            raise AssemblerError("access.cfg expects: %pv, %gen, %reg, imm")
        return AccessCfg(
            pv_index=_parse_pv(operands[0], mnemonic),
            generator=_parse_generator(operands[1], mnemonic),
            register=_parse_register(operands[2], mnemonic),
            immediate=_parse_int(operands[3], mnemonic),
        )
    if mnemonic in ("access.start", "access.stop"):
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} expects: %pv, %gen")
        cls = AccessStart if mnemonic == "access.start" else AccessStop
        return cls(
            pv_index=_parse_pv(operands[0], mnemonic),
            generator=_parse_generator(operands[1], mnemonic),
        )
    if mnemonic == "mimd.ld":
        if len(operands) != 3:
            raise AssemblerError("mimd.ld expects: %pv, %dst, imm")
        destination = operands[1].lstrip("%").lower()
        return MimdLoad(
            pv_index=_parse_pv(operands[0], mnemonic),
            destination=destination,
            immediate=_parse_int(operands[2], mnemonic),
        )
    if mnemonic == "mimd.exe":
        if not operands:
            raise AssemblerError("mimd.exe expects at least one local µop index")
        indices = tuple(_parse_int(op.lstrip("%"), mnemonic) for op in operands)
        return MimdExecute(local_indices=indices)
    if mnemonic == "repeat":
        if len(operands) > 1:
            raise AssemblerError("repeat expects at most one count operand")
        count = _parse_int(operands[0], mnemonic) if operands else 0
        return RepeatUop(count=count)
    if mnemonic in _EXECUTE_MNEMONICS:
        op = _EXECUTE_MNEMONICS[mnemonic]
        if op is ExecuteOp.ACT:
            activation = operands[0].lower() if operands else "relu"
            return ExecuteUop(op=op, activation=activation)
        if operands:
            raise AssemblerError(f"{mnemonic} takes no operands")
        return ExecuteUop(op=op)
    raise AssemblerError(f"unknown mnemonic '{mnemonic}'")


def assemble(source: str | Iterable[str]) -> List[MicroOp]:
    """Assemble a multi-line program (string or iterable of lines)."""
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = list(source)
    uops: List[MicroOp] = []
    for number, line in enumerate(lines, start=1):
        try:
            uop = assemble_line(line)
        except AssemblerError as exc:
            raise AssemblerError(f"line {number}: {exc}") from exc
        if uop is not None:
            uops.append(uop)
    return uops


def disassemble_uop(uop: MicroOp) -> str:
    """Render one µop as assembler text."""
    if isinstance(uop, AccessCfg):
        return (
            f"access.cfg %pv{uop.pv_index}, %{_GENERATOR_CANONICAL[uop.generator]}, "
            f"%{_REGISTER_NAMES_REVERSE[uop.register]}, {uop.immediate}"
        )
    if isinstance(uop, AccessStart):
        return f"access.start %pv{uop.pv_index}, %{_GENERATOR_CANONICAL[uop.generator]}"
    if isinstance(uop, AccessStop):
        return f"access.stop %pv{uop.pv_index}, %{_GENERATOR_CANONICAL[uop.generator]}"
    if isinstance(uop, MimdLoad):
        return f"mimd.ld %pv{uop.pv_index}, %{uop.destination}, {uop.immediate}"
    if isinstance(uop, MimdExecute):
        return "mimd.exe " + ", ".join(str(i) for i in uop.local_indices)
    if isinstance(uop, RepeatUop):
        return f"repeat {uop.count}" if uop.count else "repeat"
    if isinstance(uop, ExecuteUop):
        if uop.op is ExecuteOp.ACT:
            return f"act {uop.activation}"
        return uop.op.value
    raise AssemblerError(f"cannot disassemble {uop!r}")


def disassemble(uops: Sequence[MicroOp]) -> str:
    """Render a µop sequence as assembler text, one µop per line."""
    return "\n".join(disassemble_uop(uop) for uop in uops)
