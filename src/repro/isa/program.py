"""Micro-program containers.

A :class:`MicroProgram` is what the layer compiler produces and what the
cycle-level machine executes: the preloaded contents of every PV's local µop
buffer plus the ordered sequence of global µops.  The container validates the
structural constraints the hardware imposes (local buffer capacity, local
index ranges referenced by ``mimd.exe``, PV indices in range) so that invalid
programs are rejected at build time rather than mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import IsaError, ProgramEncodingError, ProgramError
from .assembler import disassemble_uop
from .encoding import GLOBAL_UOP_BITS, LOCAL_UOP_BITS, encode_global_uop, encode_local_uop
from .uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    ExecuteUop,
    MicroOp,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)


@dataclass(frozen=True)
class MicroProgram:
    """A complete GANAX micro-program for one layer (or layer tile).

    Attributes
    ----------
    name:
        Identifier, typically the layer name it was compiled from.
    num_pvs:
        Number of processing vectors the program targets.
    local_uops:
        Per-PV local µop buffer contents.  ``local_uops[pv][i]`` is the µop a
        ``mimd.exe`` with index ``i`` for PV ``pv`` dispatches.
    global_uops:
        The ordered stream of global µops executed by the global controller.
    """

    name: str
    num_pvs: int
    local_uops: Tuple[Tuple[MicroOp, ...], ...]
    global_uops: Tuple[MicroOp, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramError("micro-program name must be non-empty")
        if self.num_pvs <= 0:
            raise ProgramError("num_pvs must be positive")
        if len(self.local_uops) != self.num_pvs:
            raise ProgramError(
                f"expected {self.num_pvs} local µop buffers, got {len(self.local_uops)}"
            )
        object.__setattr__(
            self,
            "local_uops",
            tuple(tuple(buffer) for buffer in self.local_uops),
        )
        object.__setattr__(self, "global_uops", tuple(self.global_uops))
        self._validate()

    def _validate(self) -> None:
        for pv, buffer in enumerate(self.local_uops):
            for uop in buffer:
                if not isinstance(uop, (ExecuteUop, RepeatUop)):
                    raise ProgramError(
                        f"PV {pv} local buffer contains non-local µop {uop!r}"
                    )
        for position, uop in enumerate(self.global_uops):
            if isinstance(uop, MimdExecute):
                if len(uop.local_indices) != self.num_pvs:
                    raise ProgramError(
                        f"global µop {position}: mimd.exe carries "
                        f"{len(uop.local_indices)} indices for {self.num_pvs} PVs"
                    )
                for pv, index in enumerate(uop.local_indices):
                    if index >= len(self.local_uops[pv]):
                        raise ProgramError(
                            f"global µop {position}: PV {pv} local index {index} "
                            f"out of range (buffer has {len(self.local_uops[pv])})"
                        )
            elif isinstance(uop, (MimdLoad, AccessCfg, AccessStart, AccessStop)):
                if uop.pv_index >= self.num_pvs:
                    raise ProgramError(
                        f"global µop {position}: PV index {uop.pv_index} out of "
                        f"range for {self.num_pvs} PVs"
                    )
            elif not isinstance(uop, (ExecuteUop, RepeatUop)):
                raise ProgramError(
                    f"global µop {position}: {uop!r} is not a valid global µop"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def max_local_buffer_entries(self) -> int:
        """Largest local µop buffer footprint across PVs."""
        return max((len(buffer) for buffer in self.local_uops), default=0)

    @property
    def num_global_uops(self) -> int:
        return len(self.global_uops)

    def count_by_kind(self) -> Dict[str, int]:
        """Histogram of global µop mnemonics (useful in tests and reports)."""
        counts: Dict[str, int] = {}
        for uop in self.global_uops:
            counts[uop.mnemonic] = counts.get(uop.mnemonic, 0) + 1
        return counts

    def mimd_uop_count(self) -> int:
        """Number of global µops dispatched in MIMD-SIMD mode."""
        return sum(1 for uop in self.global_uops if isinstance(uop, MimdExecute))

    def simd_uop_count(self) -> int:
        """Number of global µops broadcast in SIMD mode."""
        return sum(
            1 for uop in self.global_uops if isinstance(uop, (ExecuteUop, RepeatUop))
        )

    def validate_against_buffers(
        self, local_entries: int, global_entries: int | None = None
    ) -> None:
        """Check the program fits the configured µop buffer sizes.

        The global µop buffer is double-buffered and refilled per layer, so
        exceeding its entry count is legal (it just means multiple fills);
        callers pass ``global_entries`` only when they want a strict check.
        """
        if self.max_local_buffer_entries > local_entries:
            raise ProgramError(
                f"program '{self.name}' needs {self.max_local_buffer_entries} local "
                f"µop entries but the hardware provides {local_entries}"
            )
        if global_entries is not None and self.num_global_uops > global_entries:
            raise ProgramError(
                f"program '{self.name}' has {self.num_global_uops} global µops, "
                f"exceeding the strict limit of {global_entries}"
            )

    # ------------------------------------------------------------------
    # Footprints
    # ------------------------------------------------------------------
    def local_buffer_bits(self) -> int:
        """Total encoded footprint of all local µop buffers."""
        return sum(len(buffer) for buffer in self.local_uops) * LOCAL_UOP_BITS

    def global_buffer_bits(self) -> int:
        """Total encoded footprint of the global µop stream."""
        return self.num_global_uops * GLOBAL_UOP_BITS

    def encoded_global_words(self) -> Tuple[int, ...]:
        """The encoded 64-bit words of the global stream (for fetch costing)."""
        words = []
        for index, uop in enumerate(self.global_uops):
            try:
                words.append(encode_global_uop(uop, num_pvs=self.num_pvs))
            except IsaError as exc:
                raise ProgramEncodingError(
                    self.name, f"global µop {index}", repr(uop), str(exc)
                ) from exc
        return tuple(words)

    def encoded_local_words(self) -> Tuple[Tuple[int, ...], ...]:
        """The encoded 16-bit words of every local buffer."""
        encoded = []
        for pv, buffer in enumerate(self.local_uops):
            words = []
            for index, uop in enumerate(buffer):
                try:
                    words.append(encode_local_uop(uop))
                except IsaError as exc:
                    raise ProgramEncodingError(
                        self.name, f"PV {pv} local µop {index}", repr(uop), str(exc)
                    ) from exc
            encoded.append(tuple(words))
        return tuple(encoded)

    # ------------------------------------------------------------------
    # Disassembly
    # ------------------------------------------------------------------
    def disassemble(self) -> str:
        """Stable sectioned textual disassembly of the whole program.

        The format is what the FileCheck harness and the ``disasm`` CLI verb
        consume: a ``.program``/``.pvs`` header, one ``.local`` section per run
        of PVs with identical buffer contents, then the ordered ``.global``
        stream, each µop rendered by the canonical assembler text prefixed
        with its buffer index.
        """
        lines = [f".program {self.name}", f".pvs {self.num_pvs}"]
        pv = 0
        while pv < self.num_pvs:
            end = pv
            while (
                end + 1 < self.num_pvs
                and self.local_uops[end + 1] == self.local_uops[pv]
            ):
                end += 1
            header = f".local %pv{pv}" if end == pv else f".local %pv{pv}..%pv{end}"
            lines.append(header)
            for index, uop in enumerate(self.local_uops[pv]):
                lines.append(f"  {index}: {disassemble_uop(uop)}")
            pv = end + 1
        lines.append(".global")
        for index, uop in enumerate(self.global_uops):
            lines.append(f"  {index}: {disassemble_uop(uop)}")
        lines.append(".end")
        return "\n".join(lines) + "\n"

    def uop_records(self) -> Dict[str, object]:
        """JSON-ready structured disassembly (the CLI's ``disasm --json``)."""
        return {
            "program": self.name,
            "num_pvs": self.num_pvs,
            "local": [
                [
                    {
                        "index": index,
                        "mnemonic": uop.mnemonic,
                        "text": disassemble_uop(uop),
                        "word": encode_local_uop(uop),
                    }
                    for index, uop in enumerate(buffer)
                ]
                for buffer in self.local_uops
            ],
            "global": [
                {
                    "index": index,
                    "mnemonic": uop.mnemonic,
                    "text": disassemble_uop(uop),
                    "word": encode_global_uop(uop, num_pvs=self.num_pvs),
                }
                for index, uop in enumerate(self.global_uops)
            ],
        }


class MicroProgramBuilder:
    """Imperative helper for assembling a :class:`MicroProgram`."""

    def __init__(self, name: str, num_pvs: int) -> None:
        if num_pvs <= 0:
            raise ProgramError("num_pvs must be positive")
        self._name = name
        self._num_pvs = num_pvs
        self._local: List[List[MicroOp]] = [[] for _ in range(num_pvs)]
        self._global: List[MicroOp] = []

    # -- local buffers ---------------------------------------------------
    def preload_local(self, pv_index: int, uop: MicroOp) -> int:
        """Append ``uop`` to PV ``pv_index``'s local buffer; returns its index.

        Identical µops are deduplicated (the paper preloads a small set of
        execute µops once and reuses them), so preloading the same µop twice
        returns the original index.
        """
        self._check_pv(pv_index)
        if not isinstance(uop, (ExecuteUop, RepeatUop)):
            raise ProgramError(f"{uop!r} cannot be preloaded into a local buffer")
        buffer = self._local[pv_index]
        if uop in buffer:
            return buffer.index(uop)
        buffer.append(uop)
        return len(buffer) - 1

    def preload_local_everywhere(self, uop: MicroOp) -> Tuple[int, ...]:
        """Preload ``uop`` into every PV's local buffer; returns per-PV indices."""
        return tuple(self.preload_local(pv, uop) for pv in range(self._num_pvs))

    # -- global stream ----------------------------------------------------
    def emit(self, uop: MicroOp) -> None:
        """Append a µop to the global stream."""
        self._global.append(uop)

    def emit_simd(self, uop: ExecuteUop | RepeatUop) -> None:
        """Broadcast an execute µop to all PEs in SIMD mode."""
        if not isinstance(uop, (ExecuteUop, RepeatUop)):
            raise ProgramError("SIMD broadcast requires an execute-group µop")
        self._global.append(uop)

    def emit_mimd(self, local_indices: Sequence[int]) -> None:
        """Dispatch one local µop index per PV in MIMD-SIMD mode."""
        self._global.append(MimdExecute(local_indices=tuple(local_indices)))

    def emit_access_cfg(self, pv_index: int, generator, register, immediate: int) -> None:
        self._check_pv(pv_index)
        self._global.append(
            AccessCfg(
                pv_index=pv_index,
                generator=generator,
                register=register,
                immediate=immediate,
            )
        )

    def emit_access_start(self, pv_index: int, generator) -> None:
        self._check_pv(pv_index)
        self._global.append(AccessStart(pv_index=pv_index, generator=generator))

    def emit_access_stop(self, pv_index: int, generator) -> None:
        self._check_pv(pv_index)
        self._global.append(AccessStop(pv_index=pv_index, generator=generator))

    def emit_mimd_load(self, pv_index: int, destination: str, immediate: int) -> None:
        self._check_pv(pv_index)
        self._global.append(
            MimdLoad(pv_index=pv_index, destination=destination, immediate=immediate)
        )

    # -- finalisation ------------------------------------------------------
    def build(self) -> MicroProgram:
        return MicroProgram(
            name=self._name,
            num_pvs=self._num_pvs,
            local_uops=tuple(tuple(buffer) for buffer in self._local),
            global_uops=tuple(self._global),
        )

    def _check_pv(self, pv_index: int) -> None:
        if not (0 <= pv_index < self._num_pvs):
            raise ProgramError(
                f"PV index {pv_index} out of range for {self._num_pvs} PVs"
            )
