"""Searchable design spaces over :class:`~repro.config.ArchitectureConfig`.

A :class:`DesignSpace` is a finite grid over a chosen subset of architecture
configuration fields: one :class:`Dimension` per field with an explicit tuple
of candidate values, plus optional feasibility constraints.  The canonical way
to build one is :meth:`DesignSpace.for_accelerator`, which materializes the
space from an accelerator's declared ``config_space()`` — the registry
contract that every :class:`~repro.accelerators.base.AcceleratorModel` names
the configuration fields its estimates react to — intersected with the
built-in per-field value ranges in :data:`DEFAULT_DIMENSION_VALUES` (or the
caller's overrides).

A point of the space is a :class:`DesignPoint`: an immutable, hashable
assignment of one value per dimension that can be applied onto any base
configuration.  Points whose configuration would be invalid (the
``ArchitectureConfig`` constructor rejects it) or that fail a user constraint
are *infeasible* and never leave the space's enumeration/sampling methods.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from random import Random
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..config import ArchitectureConfig, _canonical_value
from ..errors import ConfigurationError

#: Feasibility predicate over a ``{field: value}`` assignment.
Constraint = Callable[[Mapping[str, Any]], bool]

#: The one non-config axis a design space may carry: the µop schedule.  Its
#: candidate values are registered spec strings (see :mod:`repro.schedule`);
#: the axis never touches :class:`ArchitectureConfig` — the explorer routes
#: it into :attr:`~repro.config.SimulationOptions.schedule` instead — and a
#: point's schedule must pass the verify-then-simulate gate
#: (:func:`repro.schedule.verify_schedule`) at the point's geometry before
#: the point is considered feasible.
SCHEDULE_DIMENSION: str = "schedule"

#: Built-in candidate values for the configuration fields a design-space
#: search commonly explores.  ``DesignSpace.for_accelerator`` uses these for
#: every requested field the caller does not override; fields without a
#: default range must be given explicit values.
DEFAULT_DIMENSION_VALUES: Dict[str, Tuple[Any, ...]] = {
    "num_pvs": (4, 8, 16, 32),
    "pes_per_pv": (4, 8, 16, 32),
    "frequency_hz": (250e6, 500e6, 1e9),
    "dram_bandwidth_bytes_per_cycle": (16.0, 32.0, 64.0, 128.0),
    "mimd_dispatch_overhead_cycles": (0, 1, 2, 4),
    "zero_gating_energy_fraction": (0.05, 0.1, 0.2),
    "ganax_target_utilization": (0.85, 0.92, 1.0),
}

#: Fields swept when the caller names none: the PE-array geometry and the
#: off-chip bandwidth, the three axes the paper's own ablations move.
DEFAULT_SEARCH_FIELDS: Tuple[str, ...] = (
    "num_pvs",
    "pes_per_pv",
    "dram_bandwidth_bytes_per_cycle",
)

_CONFIG_FIELD_NAMES = frozenset(f.name for f in dataclass_fields(ArchitectureConfig))


@dataclass(frozen=True)
class Dimension:
    """One axis of a design space: a configuration field and its candidates.

    Values keep their given order (it defines the enumeration order and the
    neighbourhood structure of hill climbing) with duplicates collapsed.
    """

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if self.name == SCHEDULE_DIMENSION:
            # Schedule candidates canonicalize through the schedule registry
            # (``colmajor`` -> ``colmajor@tile64``), so unknown specs fail at
            # space construction and aliases collapse to one grid value.
            from ..schedule import canonical_schedule_name

            seen_names: List[str] = []
            for value in self.values:
                canonical_name = canonical_schedule_name(str(value))
                if canonical_name not in seen_names:
                    seen_names.append(canonical_name)
            if not seen_names:
                raise ConfigurationError(
                    f"dimension '{self.name}' needs at least one value"
                )
            object.__setattr__(self, "values", tuple(seen_names))
            return
        if self.name not in _CONFIG_FIELD_NAMES:
            raise ConfigurationError(
                f"'{self.name}' is not an ArchitectureConfig field; "
                f"known fields: {', '.join(sorted(_CONFIG_FIELD_NAMES))}"
            )
        seen: List[Any] = []
        for value in self.values:
            canonical = _canonical_value(value)
            if canonical not in seen:
                seen.append(canonical)
        if not seen:
            raise ConfigurationError(f"dimension '{self.name}' needs at least one value")
        object.__setattr__(self, "values", tuple(seen))

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class DesignPoint:
    """One assignment of a value to every dimension of a design space.

    Stored as a sorted tuple of ``(field, value)`` pairs with numerically
    normalized values, so equal assignments compare and hash equal however
    they were constructed, and the :attr:`label` is canonical.
    """

    items: Tuple[Tuple[str, Any], ...]

    def __post_init__(self) -> None:
        normalized = tuple(
            sorted((name, _canonical_value(value)) for name, value in self.items)
        )
        if not normalized:
            raise ConfigurationError("a design point needs at least one field")
        names = [name for name, _ in normalized]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"design point repeats a field: {names}")
        object.__setattr__(self, "items", normalized)

    @classmethod
    def from_mapping(cls, values: Mapping[str, Any]) -> "DesignPoint":
        return cls(items=tuple(values.items()))

    @property
    def values(self) -> Dict[str, Any]:
        """The assignment as a plain dict (insertion order = sorted fields)."""
        return dict(self.items)

    @property
    def label(self) -> str:
        """Canonical human-readable identifier, e.g. ``num_pvs=8,pes_per_pv=16``."""
        return ",".join(f"{name}={value}" for name, value in self.items)

    @property
    def schedule(self) -> Optional[str]:
        """The point's schedule spec string, when the space has that axis."""
        return self.values.get(SCHEDULE_DIMENSION)

    def apply(self, base_config: ArchitectureConfig) -> ArchitectureConfig:
        """The base configuration with this point's *config* fields substituted.

        The :data:`SCHEDULE_DIMENSION` axis is not an
        :class:`ArchitectureConfig` field; the explorer applies it to
        :class:`~repro.config.SimulationOptions` instead, so it is skipped
        here.
        """
        updates = {
            name: value
            for name, value in self.items
            if name != SCHEDULE_DIMENSION
        }
        if not updates:
            return base_config
        return base_config.with_updates(**updates)


class DesignSpace:
    """A finite, constrained grid over architecture-configuration fields.

    Parameters
    ----------
    dimensions:
        The axes of the space; at least one, with distinct field names.
    base_config:
        Configuration every point is applied onto (paper default when
        omitted); also used for feasibility checking.
    constraints:
        Predicates over the ``{field: value}`` assignment; a point is
        feasible only if every constraint accepts it *and* the resulting
        :class:`ArchitectureConfig` constructs without error.
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        base_config: Optional[ArchitectureConfig] = None,
        constraints: Sequence[Constraint] = (),
    ) -> None:
        if not dimensions:
            raise ConfigurationError("a design space needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"design space repeats a dimension: {names}")
        self._dimensions = tuple(dimensions)
        self._base_config = base_config or ArchitectureConfig.paper_default()
        self._constraints = tuple(constraints)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> Tuple[Dimension, ...]:
        return self._dimensions

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self._dimensions)

    @property
    def base_config(self) -> ArchitectureConfig:
        return self._base_config

    @property
    def size(self) -> int:
        """Number of grid points (feasible or not)."""
        size = 1
        for dimension in self._dimensions:
            size *= len(dimension)
        return size

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly record of the space's axes and cardinality."""
        return {
            "dimensions": {d.name: list(d.values) for d in self._dimensions},
            "size": self.size,
            "constraints": len(self._constraints),
        }

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def is_feasible(self, point: DesignPoint) -> bool:
        """Whether the point passes every constraint and builds a valid config.

        Points carrying a :data:`SCHEDULE_DIMENSION` value are additionally
        gated by the schedule subsystem's verify-then-simulate contract:
        the schedule's lowering is compiled over pinned probe layers at the
        point's geometry and statically verified
        (:func:`repro.schedule.verify_schedule`, memoized per knob
        fingerprint × geometry); a schedule whose programs carry ERROR
        findings is pruned here and never reaches a simulator.
        """
        values = point.values
        for constraint in self._constraints:
            if not constraint(values):
                return False
        try:
            config = point.apply(self._base_config)
        except ConfigurationError:
            return False
        schedule = values.get(SCHEDULE_DIMENSION)
        if schedule is not None:
            from ..schedule import schedule_is_feasible

            if not schedule_is_feasible(
                schedule, num_pvs=config.num_pvs, pes_per_pv=config.pes_per_pv
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # Enumeration and sampling
    # ------------------------------------------------------------------
    def point_at(self, index: int) -> DesignPoint:
        """The grid point at a mixed-radix ``index`` (no feasibility check).

        The last dimension varies fastest, matching :meth:`points`' order.
        """
        if not (0 <= index < self.size):
            raise ConfigurationError(
                f"design-space index {index} out of range [0, {self.size})"
            )
        assignment: Dict[str, Any] = {}
        for dimension in reversed(self._dimensions):
            index, offset = divmod(index, len(dimension))
            assignment[dimension.name] = dimension.values[offset]
        return DesignPoint.from_mapping(assignment)

    def points(self) -> Iterator[DesignPoint]:
        """Every feasible point, in deterministic grid order."""
        for index in range(self.size):
            point = self.point_at(index)
            if self.is_feasible(point):
                yield point

    #: Spaces up to this many grid points are sampled via a full index
    #: shuffle (exact, even when most points are infeasible); larger spaces
    #: use rejection sampling so memory stays O(draws), not O(space).
    _EXHAUSTIVE_SAMPLE_LIMIT = 1 << 16

    def sample(self, count: int, rng: Random) -> List[DesignPoint]:
        """``count`` distinct feasible points drawn uniformly without replacement.

        May return fewer when feasible points are scarce: on small spaces
        (up to ``_EXHAUSTIVE_SAMPLE_LIMIT`` grid points) every index is
        considered, on larger ones a bounded number of rejection draws is
        made — a huge, mostly-infeasible space cannot hang the sampler.
        Deterministic for a given ``rng`` state.
        """
        if count <= 0:
            raise ConfigurationError("sample count must be positive")
        chosen: List[DesignPoint] = []
        if self.size <= self._EXHAUSTIVE_SAMPLE_LIMIT:
            indices = list(range(self.size))
            rng.shuffle(indices)
        else:
            # index stream of bounded length; duplicates are skipped below
            attempts = max(1000, 100 * count)
            indices = (rng.randrange(self.size) for _ in range(attempts))
        seen: set = set()
        for index in indices:
            if index in seen:
                continue
            seen.add(index)
            point = self.point_at(index)
            if self.is_feasible(point):
                chosen.append(point)
                if len(chosen) == count:
                    break
        return chosen

    def neighbors(self, point: DesignPoint) -> List[DesignPoint]:
        """Feasible one-step moves along each dimension's value list.

        The neighbourhood hill climbing explores: for every dimension, the
        assignments using the previous and the next candidate value.
        """
        values = point.values
        missing = set(self.dimension_names) - set(values)
        if missing:
            raise ConfigurationError(
                f"point does not assign dimensions: {sorted(missing)}"
            )
        result: List[DesignPoint] = []
        for dimension in self._dimensions:
            current = values[dimension.name]
            if current not in dimension.values:
                raise ConfigurationError(
                    f"point value {current!r} is not a candidate of "
                    f"dimension '{dimension.name}'"
                )
            position = dimension.values.index(current)
            for step in (-1, 1):
                offset = position + step
                if not (0 <= offset < len(dimension)):
                    continue
                neighbor = DesignPoint.from_mapping(
                    {**values, dimension.name: dimension.values[offset]}
                )
                if self.is_feasible(neighbor):
                    result.append(neighbor)
        return result

    # ------------------------------------------------------------------
    # Construction from the accelerator registry
    # ------------------------------------------------------------------
    @classmethod
    def for_accelerator(
        cls,
        accelerator: str,
        fields: Optional[Sequence[str]] = None,
        overrides: Optional[Mapping[str, Sequence[Any]]] = None,
        base_config: Optional[ArchitectureConfig] = None,
        constraints: Sequence[Constraint] = (),
    ) -> "DesignSpace":
        """Materialize a space from an accelerator's ``config_space()``.

        ``fields`` picks the axes (default: the members of
        :data:`DEFAULT_SEARCH_FIELDS` the model reacts to); every field must
        appear in the model's declared ``config_space()`` — searching along an
        axis the model ignores would only produce duplicate cache entries.
        Candidate values come from ``overrides`` when given, else from
        :data:`DEFAULT_DIMENSION_VALUES`.

        The :data:`SCHEDULE_DIMENSION` axis is accepted alongside the config
        fields for models that react to the schedule (i.e. whose
        ``canonical_options`` does not collapse it away); its candidate
        values default to every registered schedule.
        """
        from ..accelerators.registry import create_accelerator, get_accelerator

        base_config = base_config or ArchitectureConfig.paper_default()
        model = create_accelerator(accelerator, config=base_config)
        reactive = tuple(model.config_space())
        overrides = dict(overrides or {})

        unknown = set(overrides) - _CONFIG_FIELD_NAMES - {SCHEDULE_DIMENSION}
        if unknown:
            raise ConfigurationError(
                f"override fields are not ArchitectureConfig fields: {sorted(unknown)}"
            )
        if fields is None:
            # default axes plus any explicitly overridden field, filtered to
            # what the model actually reacts to, order-preserving
            seen: List[str] = []
            for name in (*DEFAULT_SEARCH_FIELDS, *overrides):
                if name in reactive and name not in seen:
                    seen.append(name)
            selected = tuple(seen)
        else:
            selected = tuple(fields)
        if not selected:
            raise ConfigurationError(
                f"no searchable fields for accelerator '{model.name}'"
            )
        dimensions: List[Dimension] = []
        for name in selected:
            if name == SCHEDULE_DIMENSION:
                # Schedule reactivity is declared through canonical_options:
                # a model that collapses every schedule to "default" (the
                # baseline, the roofline) would evaluate identical jobs at
                # every schedule value — reject the axis like an ignored
                # config field.
                from ..config import SimulationOptions
                from ..schedule import schedule_names

                spec = get_accelerator(model.name)
                probe = spec.canonical_options(
                    SimulationOptions(schedule="raster")
                )
                if probe.schedule == "default":
                    raise ConfigurationError(
                        f"accelerator '{model.name}' does not react to the "
                        "schedule (its canonical_options collapses every "
                        "schedule to 'default')"
                    )
                values = overrides.get(name, schedule_names())
                dimensions.append(Dimension(name=name, values=tuple(values)))
                continue
            if name not in reactive:
                raise ConfigurationError(
                    f"accelerator '{model.name}' does not react to '{name}'; "
                    f"its config_space() is: {', '.join(reactive)}"
                )
            values = overrides.get(name, DEFAULT_DIMENSION_VALUES.get(name))
            if values is None:
                raise ConfigurationError(
                    f"no default candidate values for '{name}'; "
                    "pass them via overrides={...}"
                )
            dimensions.append(Dimension(name=name, values=tuple(values)))
        return cls(
            dimensions=dimensions, base_config=base_config, constraints=constraints
        )
