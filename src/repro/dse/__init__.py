"""Design-space exploration over the accelerator registry.

The subsystem has four parts:

* :mod:`~repro.dse.space` — :class:`DesignSpace` / :class:`DesignPoint` /
  :class:`Dimension`: a finite, constrained grid over
  :class:`~repro.config.ArchitectureConfig` fields, materialized from an
  accelerator's declared ``config_space()``.
* :mod:`~repro.dse.strategies` — the :class:`SearchStrategy` protocol and the
  built-in :class:`ExhaustiveSearch`, :class:`RandomSearch` and
  :class:`HillClimbSearch` strategies.
* :mod:`~repro.dse.pareto` — :class:`Objective`, :class:`EvaluatedPoint` and
  the canonical :class:`ParetoFrontier` partition.
* :mod:`~repro.dse.engine` — :class:`DesignSpaceExplorer` /
  :func:`explore`, which submit every candidate evaluation as batched
  :class:`~repro.runner.SimulationJob` objects through the shared
  :class:`~repro.runner.SimulationRunner`.

See ``src/repro/dse/README.md`` for a walkthrough, `repro.Session.explore`
for the session-level entry point, and ``repro-experiments dse`` for the CLI.
"""

from .engine import (
    DEFAULT_OBJECTIVES,
    DesignSpaceExplorer,
    ExplorationResult,
    explore,
)
from .pareto import EvaluatedPoint, Objective, ParetoFrontier, dominates
from .space import (
    DEFAULT_DIMENSION_VALUES,
    DEFAULT_SEARCH_FIELDS,
    DesignPoint,
    DesignSpace,
    Dimension,
)
from .strategies import (
    STRATEGIES,
    ExhaustiveSearch,
    HillClimbSearch,
    RandomSearch,
    SearchStrategy,
    get_strategy,
    scalar_score,
)

__all__ = [
    "DEFAULT_DIMENSION_VALUES",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_SEARCH_FIELDS",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceExplorer",
    "Dimension",
    "EvaluatedPoint",
    "ExhaustiveSearch",
    "ExplorationResult",
    "HillClimbSearch",
    "Objective",
    "ParetoFrontier",
    "RandomSearch",
    "STRATEGIES",
    "SearchStrategy",
    "dominates",
    "explore",
    "get_strategy",
    "scalar_score",
]
