"""Pluggable search strategies for design-space exploration.

A strategy decides *which* points of a :class:`~repro.dse.space.DesignSpace`
to evaluate and in what batches; it never runs a simulation itself.  The
engine hands it an ``evaluate`` callback that turns a batch of design points
into :class:`~repro.dse.pareto.EvaluatedPoint` values — behind the callback
every candidate becomes a set of :class:`~repro.runner.SimulationJob` objects
submitted through the shared :class:`~repro.runner.SimulationRunner`, so a
strategy should prefer few large batches over many small ones: a batch
deduplicates internally, hits the content-addressed cache, and gives a
parallel backend the widest fan-out.  Since the streaming runner redesign
the engine's evaluator additionally exposes ``evaluate.stream(points)``,
yielding evaluations *as they complete*; adaptive strategies can consume it
to react to early results (and closing the stream cancels whatever has not
started), while batch-only strategies keep calling ``evaluate(points)``.

Three strategies are built in:

* :class:`ExhaustiveSearch` — every feasible point, one batch.  The reference
  everything else is measured against; equivalent to a
  :class:`~repro.analysis.sweep.ParameterSweep` over the same grid.
* :class:`RandomSearch` — a uniform sample without replacement, one batch.
* :class:`HillClimbSearch` — adaptive: walk the one-step neighbourhood of the
  incumbent towards a better scalarized objective, restarting on local
  optima.  One batch per neighbourhood.

All strategies are deterministic for a fixed seed, so searches are exactly
reproducible and warm-cache re-runs replay the identical job set.
"""

from __future__ import annotations

import math
from random import Random
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from ..errors import AnalysisError, ConfigurationError
from .pareto import EvaluatedPoint, Objective
from .space import DesignPoint, DesignSpace

#: Batched evaluation callback supplied by the engine.
EvaluateFn = Callable[[Sequence[DesignPoint]], List[EvaluatedPoint]]

#: Evaluation budget a strategy falls back to when the caller gives none.
DEFAULT_BUDGET = 16


class SearchStrategy(Protocol):
    """Structural interface of a design-space search strategy."""

    @property
    def name(self) -> str:
        """Short identifier used in reports and the CLI's ``--strategy``."""
        ...

    def search(
        self,
        space: DesignSpace,
        evaluate: EvaluateFn,
        objectives: Sequence[Objective],
        budget: Optional[int] = None,
    ) -> None:
        """Evaluate up to ``budget`` distinct points via ``evaluate``.

        A strategy only *proposes* batches; the engine driving it owns the
        evaluation trace (memoized per point), so there is nothing to return.
        """
        ...


def _check_budget(budget: Optional[int]) -> Optional[int]:
    if budget is not None and budget <= 0:
        raise AnalysisError(f"search budget must be positive, got {budget}")
    return budget


def scalar_score(
    point: EvaluatedPoint, objectives: Sequence[Objective]
) -> float:
    """Scalarize a point's objectives for ranking: sum of sense-signed logs.

    Equivalent to ranking by the product of improving ratios, so a 2x gain on
    any one objective weighs the same regardless of the objectives' units.
    Non-positive values (a degenerate model reporting zero energy) push the
    score to ``-inf`` so such points never win.
    """
    score = 0.0
    for objective in objectives:
        value = point.objective(objective.name)
        if value <= 0:
            return float("-inf")
        log_value = math.log(value)
        score += log_value if objective.sense == "max" else -log_value
    return score


class ExhaustiveSearch:
    """Evaluate every feasible point of the space as one batch."""

    name = "exhaustive"

    def search(
        self,
        space: DesignSpace,
        evaluate: EvaluateFn,
        objectives: Sequence[Objective],
        budget: Optional[int] = None,
    ) -> None:
        budget = _check_budget(budget)
        points = list(space.points())
        if budget is not None and len(points) > budget:
            raise AnalysisError(
                f"exhaustive search needs {len(points)} evaluations but the "
                f"budget is {budget}; raise the budget, shrink the space, or "
                "use the random/hillclimb strategy"
            )
        if not points:
            raise AnalysisError("the design space has no feasible points")
        evaluate(points)


class RandomSearch:
    """Evaluate a uniform sample of the space (without replacement), one batch."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def search(
        self,
        space: DesignSpace,
        evaluate: EvaluateFn,
        objectives: Sequence[Objective],
        budget: Optional[int] = None,
    ) -> None:
        budget = _check_budget(budget) or DEFAULT_BUDGET
        points = space.sample(budget, Random(self._seed))
        if not points:
            raise AnalysisError("the design space has no feasible points")
        evaluate(points)


class HillClimbSearch:
    """Adaptive neighbourhood search over the scalarized objectives.

    Starts from a random feasible point, submits the incumbent's whole
    one-step neighbourhood, and **advances on the first strictly improving
    neighbour to complete** — when the engine's evaluator exposes a
    streaming path (``evaluate.stream``, the default since the streaming
    runner redesign), the climb consumes evaluations as they land and
    cancels the rest of the ring the moment an improving move arrives,
    instead of paying for every neighbour.  Against a plain batched
    ``evaluate`` callable it falls back to the historical
    best-of-the-whole-ring step.  Restarts from a fresh random point when
    stuck, until ``budget`` distinct evaluations have been spent.

    With the default multiplicative scalarization (:func:`scalar_score`)
    the climb targets the balanced region of the frontier; the engine's
    trace still sees every *consumed* point, so the Pareto analysis covers
    the whole walk.  With the serial backend completion order equals
    submission order, so searches stay exactly reproducible for a fixed
    seed; parallel backends may legitimately walk a different (equally
    valid) path, since "first completed" then depends on timing.
    """

    name = "hillclimb"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def search(
        self,
        space: DesignSpace,
        evaluate: EvaluateFn,
        objectives: Sequence[Objective],
        budget: Optional[int] = None,
    ) -> None:
        budget = _check_budget(budget) or DEFAULT_BUDGET
        rng = Random(self._seed)
        evaluated: Dict[DesignPoint, EvaluatedPoint] = {}
        stream = getattr(evaluate, "stream", None)

        def spend(points: Sequence[DesignPoint]) -> List[EvaluatedPoint]:
            fresh = [p for p in points if p not in evaluated]
            for result in evaluate(fresh) if fresh else []:
                evaluated[result.point] = result
            return [evaluated[p] for p in points]

        def climb(
            current: EvaluatedPoint, moves: Sequence[DesignPoint]
        ) -> Optional[EvaluatedPoint]:
            """The first (streaming) or best (batched) improving neighbour."""
            target = scalar_score(current, objectives)
            if stream is None:
                neighbors = spend(moves)
                best = max(
                    neighbors,
                    key=lambda p: (scalar_score(p, objectives), p.label),
                )
                return best if scalar_score(best, objectives) > target else None
            results = stream(moves)
            try:
                for result in results:
                    evaluated[result.point] = result
                    if scalar_score(result, objectives) > target:
                        return result  # closing the stream cancels the rest
            finally:
                results.close()
            return None

        def random_unvisited() -> Optional[DesignPoint]:
            for candidate in space.sample(len(evaluated) + 1, rng):
                if candidate not in evaluated:
                    return candidate
            return None

        start = random_unvisited()
        if start is None:
            raise AnalysisError("the design space has no feasible points")
        current = spend([start])[0]
        while len(evaluated) < budget:
            frontier_moves = [
                p
                for p in space.neighbors(current.point)
                if p not in evaluated
            ][: budget - len(evaluated)]
            if frontier_moves:
                improved = climb(current, frontier_moves)
                if improved is not None:
                    current = improved
                    continue
            # local optimum (or neighbourhood exhausted): restart — unless
            # the budget is already spent, in which case a restart would
            # overshoot it by one evaluation
            if len(evaluated) >= budget:
                break
            restart = random_unvisited()
            if restart is None:
                break
            current = spend([restart])[0]


#: Strategy name -> factory, for the CLI's ``--strategy`` flag.
STRATEGIES: Dict[str, Callable[..., SearchStrategy]] = {
    ExhaustiveSearch.name: lambda seed=0: ExhaustiveSearch(),
    RandomSearch.name: RandomSearch,
    HillClimbSearch.name: HillClimbSearch,
}


def get_strategy(name: str, seed: int = 0) -> SearchStrategy:
    """Build a strategy by name (``exhaustive``, ``random``, ``hillclimb``)."""
    key = str(name).strip().lower()
    factory = STRATEGIES.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown search strategy '{name}'; "
            f"available: {', '.join(sorted(STRATEGIES))}"
        )
    return factory(seed=seed)
