"""The design-space exploration engine: batched evaluation + Pareto analysis.

:class:`DesignSpaceExplorer` turns a candidate :class:`~repro.dse.space.
DesignPoint` into multi-objective measurements by simulating every workload on
the explored accelerator *and* on the baseline at that point's configuration,
all submitted as **one batch** of :class:`~repro.runner.SimulationJob` objects
through the shared :class:`~repro.runner.SimulationRunner` — so identical
candidates deduplicate within a search, repeated searches replay from the
content-addressed cache, and a pooled backend fans out across the whole
(point x model x accelerator) grid.

The default objectives span the three axes the ISSUE and the paper's
evaluation care about:

* ``speedup`` (max) — geomean generator speedup over the baseline across the
  evaluated workloads, both simulated at the candidate configuration;
* ``energy_pj`` (min) — total generator energy of the explored accelerator
  across the workloads;
* ``area_mm2`` (min) — accelerator area from :class:`~repro.hw.area.AreaModel`
  at the candidate's PE count.

:meth:`DesignSpaceExplorer.explore` runs a
:class:`~repro.dse.strategies.SearchStrategy` over a
:class:`~repro.dse.space.DesignSpace` and returns an
:class:`ExplorationResult`: the evaluation trace, the
:class:`~repro.dse.pareto.ParetoFrontier`, and the
:class:`~repro.runner.CacheStats` delta of the search (a warm-cache re-search
reports 100% hits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..accelerators.registry import get_accelerator
from ..analysis.metrics import geometric_mean
from ..analysis.report import format_frontier
from ..analysis.results import GanResult
from ..config import ArchitectureConfig, SimulationOptions
from ..errors import AnalysisError
from ..hw.area import AreaModel
from ..nn.network import GANModel
from ..runner import CacheStats, SimulationJob, SimulationRunner, get_default_runner
from ..workloads.registry import all_workloads, get_workload
from .pareto import EvaluatedPoint, Objective, ParetoFrontier
from .space import Constraint, DesignPoint, DesignSpace
from .strategies import ExhaustiveSearch, SearchStrategy

#: The stock three-objective setup: performance, energy, silicon.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective(
        "speedup",
        "max",
        "geomean generator speedup over the baseline (same configuration)",
    ),
    Objective(
        "energy_pj",
        "min",
        "total generator energy across the evaluated workloads (pJ)",
    ),
    Objective("area_mm2", "min", "accelerator area at the candidate PE count"),
)


@dataclass(frozen=True)
class ExplorationResult:
    """Everything one design-space search produced.

    Attributes
    ----------
    accelerator / baseline:
        The explored registry entry and the one speedups are taken against.
    strategy:
        Name of the strategy that drove the search.
    objectives:
        The optimization criteria, in reporting order.
    space:
        JSON-friendly description of the searched space
        (:meth:`DesignSpace.describe`).
    evaluated:
        Every evaluated point, in evaluation order (the search trace).
    frontier:
        The Pareto partition over ``evaluated``.
    cache_stats:
        Cache accounting for exactly this search (a delta, not the runner's
        lifetime counters): a re-search against a warm cache shows
        ``misses == 0`` and ``hit_rate == 1.0``.
    """

    accelerator: str
    baseline: str
    strategy: str
    objectives: Tuple[Objective, ...]
    space: Dict[str, Any]
    evaluated: Tuple[EvaluatedPoint, ...]
    frontier: ParetoFrontier
    cache_stats: CacheStats

    def best(self, objective_name: str) -> EvaluatedPoint:
        """The frontier point optimizing one objective."""
        return self.frontier.best(objective_name)

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly record of the whole search.

        Deliberately excludes :attr:`cache_stats`: the summary describes the
        *search outcome*, which is deterministic, while cache accounting is
        execution metadata that differs between cold and warm runs — and the
        CLI's ``--json`` outputs are byte-comparable across runs by contract
        (``--cache-stats`` prints the accounting separately).
        """
        return {
            "accelerator": self.accelerator,
            "baseline": self.baseline,
            "strategy": self.strategy,
            "space": dict(self.space),
            "evaluations": len(self.evaluated),
            **self.frontier.summary(),
        }

    def report(self, title: Optional[str] = None) -> str:
        """Rendered frontier table (see :func:`repro.analysis.report.format_frontier`)."""
        title = title or (
            f"Design-space exploration: {self.accelerator} vs {self.baseline} "
            f"({self.strategy}, {len(self.evaluated)} points)"
        )
        rows = [
            {
                "label": p.label,
                "objectives": dict(p.objectives),
                "on_frontier": self.frontier.is_on_frontier(p),
            }
            for p in (*self.frontier.frontier, *self.frontier.dominated)
        ]
        return format_frontier(
            title, rows, [(o.name, o.sense) for o in self.objectives]
        )


class _TraceEvaluator:
    """The memoizing evaluation facade the engine hands to strategies.

    Callable for batched evaluation (the historical ``evaluate`` signature),
    with a :meth:`stream` method for strategies that want evaluations as
    they complete.  Both paths share one memo — a strategy revisiting a
    point (hill-climb restarts, duplicated random draws) costs nothing —
    and append each fresh result to the engine's trace exactly once, in the
    order the strategy observed it.
    """

    def __init__(
        self,
        explorer: "DesignSpaceExplorer",
        memo: Dict[DesignPoint, EvaluatedPoint],
        trace: List[EvaluatedPoint],
    ) -> None:
        self._explorer = explorer
        self._memo = memo
        self._trace = trace

    def __call__(self, points: Sequence[DesignPoint]) -> List[EvaluatedPoint]:
        # dict.fromkeys: drop repeats *within* the batch too, so the
        # trace holds each point exactly once whatever the strategy sends
        fresh = [p for p in dict.fromkeys(points) if p not in self._memo]
        for result in self._explorer.evaluate(fresh):
            self._record(result)
        return [self._memo[p] for p in points]

    def stream(self, points: Sequence[DesignPoint]) -> Iterator[EvaluatedPoint]:
        """Yield evaluations as they land; memoized points come first.

        Fresh points stream through
        :meth:`DesignSpaceExplorer.evaluate_stream`; closing the iterator
        early cancels the in-flight simulations, and points that were never
        consumed never enter the trace (they were not evaluated).
        """
        ordered = list(dict.fromkeys(points))
        for point in ordered:
            if point in self._memo:
                yield self._memo[point]
        fresh = [p for p in ordered if p not in self._memo]
        for result in self._explorer.evaluate_stream(fresh):
            self._record(result)
            yield result

    def _record(self, result: EvaluatedPoint) -> None:
        if result.point not in self._memo:
            self._memo[result.point] = result
            self._trace.append(result)


class DesignSpaceExplorer:
    """Evaluate design points of one accelerator against a baseline.

    Parameters
    ----------
    accelerator:
        Registry name of the explored architecture (default ``"ganax"``).
    baseline:
        Registry name speedups are measured against (default ``"eyeriss"``);
        simulated at every candidate configuration alongside the candidate.
    models:
        Workloads driving the evaluation — built models, registry names or
        family spec strings (``"synthetic@d8c256"``); all six paper GANs
        when omitted.
    base_config / options:
        The configuration design points are applied onto, and the shared
        simulation options (paper defaults when omitted).
    objectives:
        Optimization criteria; :data:`DEFAULT_OBJECTIVES` when omitted.
    runner:
        The :class:`~repro.runner.SimulationRunner` every candidate batch
        submits through; the process-wide cached runner when omitted.
    """

    def __init__(
        self,
        accelerator: str = "ganax",
        baseline: str = "eyeriss",
        models: Optional[Sequence[Union[str, GANModel]]] = None,
        base_config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
        objectives: Optional[Sequence[Objective]] = None,
        runner: Optional[SimulationRunner] = None,
    ) -> None:
        self._accelerator = get_accelerator(accelerator).name
        self._baseline = get_accelerator(baseline).name
        # Which area model prices the candidate's silicon is a property of
        # the explored architecture family, not of its relation to the
        # baseline (exploring eyeriss against ganax must cost EYERISS area).
        self._candidate_ganax_area = bool(
            getattr(
                get_accelerator(self._accelerator).create(),
                "ganax_area_model",
                True,
            )
        )
        self._models = (
            [get_workload(m) if isinstance(m, str) else m for m in models]
            if models is not None
            else list(all_workloads())
        )
        if not self._models:
            raise AnalysisError("exploration needs at least one model")
        self._base_config = base_config or ArchitectureConfig.paper_default()
        self._options = options or SimulationOptions()
        self._objectives = tuple(objectives or DEFAULT_OBJECTIVES)
        self._runner = runner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def accelerator(self) -> str:
        return self._accelerator

    @property
    def baseline(self) -> str:
        return self._baseline

    @property
    def objectives(self) -> Tuple[Objective, ...]:
        return self._objectives

    @property
    def runner(self) -> SimulationRunner:
        if self._runner is None:
            self._runner = get_default_runner()
        return self._runner

    # ------------------------------------------------------------------
    # Space construction
    # ------------------------------------------------------------------
    def space(
        self,
        fields: Optional[Sequence[str]] = None,
        overrides: Optional[Mapping[str, Sequence[Any]]] = None,
        constraints: Sequence[Constraint] = (),
    ) -> DesignSpace:
        """The explored accelerator's ``config_space()``-driven design space."""
        return DesignSpace.for_accelerator(
            self._accelerator,
            fields=fields,
            overrides=overrides,
            base_config=self._base_config,
            constraints=constraints,
        )

    # ------------------------------------------------------------------
    # Evaluation (batched and streaming share one job-grid builder)
    # ------------------------------------------------------------------
    def _build_jobs(
        self, points: Sequence[DesignPoint]
    ) -> Tuple[List[SimulationJob], List[Tuple[int, str, bool]], List[ArchitectureConfig]]:
        """The (point x model x {candidate, baseline}) grid for one batch.

        Returns the jobs, a parallel slot list mapping each job back to
        ``(point index, model name, is_candidate)``, and each point's
        applied configuration — the single source of truth for both
        :meth:`evaluate` and :meth:`evaluate_stream`, so the two paths can
        never disagree about job construction.

        A point carrying a schedule axis value runs its jobs with that
        schedule substituted into the shared options; the job's cache key
        folds the schedule's knob fingerprint, so (geometry × schedule)
        points never collide in the cache while a schedule-insensitive
        accelerator (whose ``canonical_options`` collapses the schedule)
        still shares one entry per geometry.
        """
        jobs: List[SimulationJob] = []
        slots: List[Tuple[int, str, bool]] = []
        configs: List[ArchitectureConfig] = []
        for point_index, point in enumerate(points):
            config = point.apply(self._base_config)
            configs.append(config)
            options = self._options
            if point.schedule is not None:
                options = options.with_updates(schedule=point.schedule)
            for model in self._models:
                for name, is_candidate in (
                    (self._accelerator, True),
                    (self._baseline, False),
                ):
                    jobs.append(
                        SimulationJob(
                            model=model,
                            accelerator=name,
                            config=config,
                            options=options,
                        )
                    )
                    slots.append((point_index, model.name, is_candidate))
        return jobs, slots, configs

    def _score_slot(
        self,
        points: Sequence[DesignPoint],
        configs: Sequence[ArchitectureConfig],
        point_index: int,
        candidates: Mapping[str, GanResult],
        references: Mapping[str, GanResult],
    ) -> EvaluatedPoint:
        """Score one point from its per-model result maps, in model order."""
        order = [model.name for model in self._models]
        return self._score(
            points[point_index],
            configs[point_index],
            {name: candidates[name] for name in order},
            {name: references[name] for name in order},
        )

    def evaluate_stream(
        self, points: Sequence[DesignPoint]
    ) -> Iterator[EvaluatedPoint]:
        """Yield each point's :class:`EvaluatedPoint` as its jobs complete.

        The streaming counterpart of :meth:`evaluate`: the whole
        (point x model x {candidate, baseline}) grid is submitted at once,
        and a point is scored and yielded the moment *its* simulations have
        all landed — cache-warm points arrive immediately, and an adaptive
        strategy can react to the first finished candidate instead of
        waiting for the whole batch.  Points arrive in completion order
        (equal to submission order with the serial backend); closing the
        iterator early cancels every simulation that has not started.
        """
        points = list(points)
        if not points:
            return
        jobs, slots, configs = self._build_jobs(points)
        handle = self.runner.submit(jobs)
        remaining = [2 * len(self._models)] * len(points)
        candidates: List[Dict[str, GanResult]] = [{} for _ in points]
        references: List[Dict[str, GanResult]] = [{} for _ in points]
        try:
            for completion in handle.as_completed():
                point_index, model_name, is_candidate = slots[completion.index]
                side = candidates if is_candidate else references
                side[point_index][model_name] = completion.result
                remaining[point_index] -= 1
                if remaining[point_index] == 0:
                    yield self._score_slot(
                        points,
                        configs,
                        point_index,
                        candidates[point_index],
                        references[point_index],
                    )
        finally:
            handle.cancel()

    def evaluate(self, points: Sequence[DesignPoint]) -> List[EvaluatedPoint]:
        """Measure every point's objectives; one runner batch for all of them.

        For each point the batch carries ``len(models)`` candidate jobs plus
        ``len(models)`` baseline jobs at the same configuration; the runner
        deduplicates overlapping candidates and answers repeats from cache.
        """
        points = list(points)
        if not points:
            return []
        jobs, slots, configs = self._build_jobs(points)
        candidates: List[Dict[str, GanResult]] = [{} for _ in points]
        references: List[Dict[str, GanResult]] = [{} for _ in points]
        for (point_index, model_name, is_candidate), result in zip(
            slots, self.runner.run_jobs(jobs)
        ):
            side = candidates if is_candidate else references
            side[point_index][model_name] = result
        return [
            self._score_slot(points, configs, index, candidates[index], references[index])
            for index in range(len(points))
        ]

    def _score(
        self,
        point: DesignPoint,
        config: ArchitectureConfig,
        candidate: Mapping[str, GanResult],
        reference: Mapping[str, GanResult],
    ) -> EvaluatedPoint:
        """Fold one point's raw simulation results into objective values."""
        speedups = {}
        for name in candidate:
            cycles = candidate[name].generator.cycles
            if cycles == 0:
                raise AnalysisError(
                    f"{point.label}: {self._accelerator} generator cycles are "
                    f"zero for {name}"
                )
            speedups[name] = reference[name].generator.cycles / cycles
        energy_pj = sum(r.generator.energy_pj for r in candidate.values())
        area = AreaModel(num_pes=config.num_pes)
        area_mm2 = area.total_area_mm2(ganax=self._candidate_ganax_area)
        measured = {
            "speedup": geometric_mean(list(speedups.values())),
            "energy_pj": energy_pj,
            "area_mm2": area_mm2,
        }
        unknown = [o.name for o in self._objectives if o.name not in measured]
        if unknown:
            raise AnalysisError(
                f"objectives without an evaluator: {unknown}; "
                f"measured: {', '.join(measured)}"
            )
        return EvaluatedPoint(
            point=point,
            objectives={o.name: measured[o.name] for o in self._objectives},
            metrics={
                "speedups": speedups,
                "generator_energy_pj": {
                    name: r.generator.energy_pj for name, r in candidate.items()
                },
                "num_pes": config.num_pes,
            },
        )

    # ------------------------------------------------------------------
    # Search entry point
    # ------------------------------------------------------------------
    def explore(
        self,
        space: Optional[DesignSpace] = None,
        strategy: Optional[SearchStrategy] = None,
        budget: Optional[int] = None,
    ) -> ExplorationResult:
        """Run one search: strategy picks points, the runner evaluates them.

        Evaluations are memoized per point, so a strategy revisiting a point
        (hill-climb restarts, duplicated random draws) costs nothing and the
        trace holds each point once.
        """
        space = space if space is not None else self.space()
        strategy = strategy if strategy is not None else ExhaustiveSearch()
        before = dict(self.runner.stats.as_dict())
        memo: Dict[DesignPoint, EvaluatedPoint] = {}
        trace: List[EvaluatedPoint] = []
        strategy.search(
            space, _TraceEvaluator(self, memo, trace), self._objectives, budget
        )
        after = self.runner.stats.as_dict()
        delta = CacheStats(
            hits=int(after["hits"] - before["hits"]),
            misses=int(after["misses"] - before["misses"]),
            stores=int(after["stores"] - before["stores"]),
            deduplicated=int(after["deduplicated"] - before["deduplicated"]),
        )
        return ExplorationResult(
            accelerator=self._accelerator,
            baseline=self._baseline,
            strategy=strategy.name,
            objectives=self._objectives,
            space=space.describe(),
            evaluated=tuple(trace),
            frontier=ParetoFrontier(self._objectives, trace),
            cache_stats=delta,
        )


def explore(
    accelerator: str = "ganax",
    baseline: str = "eyeriss",
    strategy: Optional[SearchStrategy] = None,
    budget: Optional[int] = None,
    space: Optional[DesignSpace] = None,
    models: Optional[Sequence[GANModel]] = None,
    base_config: Optional[ArchitectureConfig] = None,
    options: Optional[SimulationOptions] = None,
    objectives: Optional[Sequence[Objective]] = None,
    runner: Optional[SimulationRunner] = None,
) -> ExplorationResult:
    """One-call exploration through a fresh :class:`DesignSpaceExplorer`."""
    explorer = DesignSpaceExplorer(
        accelerator=accelerator,
        baseline=baseline,
        models=models,
        base_config=base_config,
        options=options,
        objectives=objectives,
        runner=runner,
    )
    return explorer.explore(space=space, strategy=strategy, budget=budget)
