"""Multi-objective Pareto analysis over evaluated design points.

An :class:`Objective` names one metric of an evaluated design point and the
direction that improves it (``"max"`` for speedup, ``"min"`` for energy and
area).  A :class:`ParetoFrontier` partitions a set of
:class:`EvaluatedPoint` values into the non-dominated frontier and the
dominated rest under the classical ordering: ``a`` dominates ``b`` when ``a``
is at least as good on every objective and strictly better on at least one.

The frontier is a *canonical* value: construction deduplicates identical
(point, objectives) entries and orders both partitions by a deterministic
sort key, so the frontier computed from any permutation or multiset of the
same evaluations compares equal — the invariant the property tests in
``tests/test_properties.py`` pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..errors import AnalysisError
from .space import DesignPoint

#: Allowed objective senses.
SENSES = ("max", "min")


@dataclass(frozen=True)
class Objective:
    """One optimization criterion: a metric name and its improving direction."""

    name: str
    sense: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise AnalysisError("an objective needs a non-empty name")
        if self.sense not in SENSES:
            raise AnalysisError(
                f"objective '{self.name}' has sense '{self.sense}'; "
                f"expected one of: {', '.join(SENSES)}"
            )

    def adjusted(self, value: float) -> float:
        """The value on a larger-is-better scale."""
        return value if self.sense == "max" else -value


@dataclass(frozen=True)
class EvaluatedPoint:
    """A design point with its measured objective values.

    Attributes
    ----------
    point:
        The evaluated :class:`~repro.dse.space.DesignPoint`.
    objectives:
        Objective name -> measured value.  Must cover every objective the
        frontier is built over.
    metrics:
        Optional JSON-friendly detail (e.g. per-model speedups) carried along
        for reports; not part of the dominance ordering.
    """

    point: DesignPoint
    objectives: Mapping[str, float]
    metrics: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "objectives", dict(self.objectives))
        object.__setattr__(self, "metrics", dict(self.metrics))
        if not self.objectives:
            raise AnalysisError(f"{self.point.label}: no objective values")

    def __hash__(self) -> int:
        # the generated hash would choke on the dict fields; metrics are
        # reporting detail, so (point, objectives) identifies the evaluation
        return hash((self.point, tuple(sorted(self.objectives.items()))))

    @property
    def label(self) -> str:
        return self.point.label

    def objective(self, name: str) -> float:
        try:
            return self.objectives[name]
        except KeyError:
            raise AnalysisError(
                f"{self.label}: no objective '{name}'; "
                f"have: {', '.join(self.objectives)}"
            ) from None

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly record of the point and its measurements."""
        return {
            "point": self.point.values,
            "objectives": dict(self.objectives),
            "metrics": dict(self.metrics),
        }


def dominates(
    a: EvaluatedPoint, b: EvaluatedPoint, objectives: Sequence[Objective]
) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` under ``objectives``."""
    strictly_better = False
    for objective in objectives:
        va = objective.adjusted(a.objective(objective.name))
        vb = objective.adjusted(b.objective(objective.name))
        if va < vb:
            return False
        if va > vb:
            strictly_better = True
    return strictly_better


class ParetoFrontier:
    """The non-dominated subset of a set of evaluated design points."""

    def __init__(
        self,
        objectives: Sequence[Objective],
        points: Sequence[EvaluatedPoint],
    ) -> None:
        if not objectives:
            raise AnalysisError("a frontier needs at least one objective")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate objective names: {names}")
        self._objectives = tuple(objectives)
        unique = self._deduplicate(points)
        frontier: List[EvaluatedPoint] = []
        dominated: List[EvaluatedPoint] = []
        for candidate in unique:
            if any(
                dominates(other, candidate, self._objectives)
                for other in unique
                if other is not candidate
            ):
                dominated.append(candidate)
            else:
                frontier.append(candidate)
        self._frontier = tuple(sorted(frontier, key=self._sort_key))
        self._dominated = tuple(sorted(dominated, key=self._sort_key))

    def _deduplicate(
        self, points: Sequence[EvaluatedPoint]
    ) -> List[EvaluatedPoint]:
        """Collapse repeated (point, objective-vector) entries, keeping one."""
        unique: Dict[Tuple[Any, ...], EvaluatedPoint] = {}
        for point in points:
            key = (
                point.point.items,
                tuple(
                    (o.name, point.objective(o.name)) for o in self._objectives
                ),
            )
            unique.setdefault(key, point)
        return list(unique.values())

    def _sort_key(self, point: EvaluatedPoint) -> Tuple[Any, ...]:
        """Best-first on the first objective, tie-broken deterministically."""
        return (
            tuple(-o.adjusted(point.objective(o.name)) for o in self._objectives),
            point.label,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def objectives(self) -> Tuple[Objective, ...]:
        return self._objectives

    @property
    def frontier(self) -> Tuple[EvaluatedPoint, ...]:
        """The non-dominated points, canonically ordered."""
        return self._frontier

    @property
    def dominated(self) -> Tuple[EvaluatedPoint, ...]:
        """The excluded points, canonically ordered."""
        return self._dominated

    def __len__(self) -> int:
        return len(self._frontier)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParetoFrontier):
            return NotImplemented
        return (
            self._objectives == other._objectives
            and self._frontier == other._frontier
            and self._dominated == other._dominated
        )

    def is_on_frontier(self, point: EvaluatedPoint) -> bool:
        return point in self._frontier

    def dominates(self, a: EvaluatedPoint, b: EvaluatedPoint) -> bool:
        """Whether ``a`` dominates ``b`` under this frontier's objectives."""
        return dominates(a, b, self._objectives)

    def best(self, objective_name: str) -> EvaluatedPoint:
        """The frontier point optimizing one single objective."""
        if not self._frontier:
            raise AnalysisError("the frontier is empty")
        objective = next(
            (o for o in self._objectives if o.name == objective_name), None
        )
        if objective is None:
            raise AnalysisError(
                f"no objective '{objective_name}'; "
                f"have: {', '.join(o.name for o in self._objectives)}"
            )
        return max(
            self._frontier,
            key=lambda p: (objective.adjusted(p.objective(objective.name)), p.label),
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly frontier/dominated partition with objective senses."""
        return {
            "objectives": [
                {"name": o.name, "sense": o.sense, "description": o.description}
                for o in self._objectives
            ],
            "frontier": [p.summary() for p in self._frontier],
            "dominated": [p.summary() for p in self._dominated],
        }
