"""Verifier IR: findings, the static machine model, and the abstract
interpreter over compiled micro-programs.

The interpreter in this module walks a :class:`~repro.isa.program.MicroProgram`'s
global µop stream *in dispatch order*, tracking per-PV abstract state that
mirrors the cycle-level machine's semantics without simulating cycles:

* per address generator: which configuration registers have been written, the
  written values, and the number of produced-but-not-yet-consumed addresses
  (``access.start`` credits :meth:`GeneratorConfig.total_addresses`, execute
  µops debit their operand consumption);
* per PV: the ``repeat`` register state loaded by ``mimd.ld`` and a pending
  ``repeat`` prefix awaiting its follower µop.

Because the compiler dispatches one global µop per cycle in program order, any
point where the abstract model is inconsistent (an execute µop consuming more
addresses than were ever produced, a reconfiguration while addresses are
outstanding, a ``repeat`` with no follower) corresponds to a concrete machine
deadlock or silent operand misalignment.  The checks that interpret these
events into findings — with stable check ids and severities — live in
:mod:`repro.staticcheck.checks`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import ArchitectureConfig
from ..core.index_generator import GeneratorConfig
from ..errors import SimulationError
from ..isa.program import MicroProgram
from ..isa.uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    MicroOp,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)


class Severity(enum.Enum):
    """Severity of a verifier finding."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One verifier diagnosis, anchored to a global µop offset.

    ``index`` is the offset into the program's global µop stream (or -1 for
    program-level findings such as an oversized local buffer), ``mnemonic``
    the offending µop's mnemonic (or a section label like ``local[pv3]``), so
    every finding renders as a clickable ``(index, mnemonic, check-id,
    message)`` tuple.
    """

    check_id: str
    severity: Severity
    index: int
    mnemonic: str
    message: str
    program: str = ""

    def __str__(self) -> str:
        where = f"[{self.index}] {self.mnemonic}" if self.index >= 0 else self.mnemonic
        return f"{self.severity.value}: {self.check_id} @ {where}: {self.message}"

    def describe(self) -> Dict[str, object]:
        """JSON-ready record of this finding."""
        return {
            "check_id": self.check_id,
            "severity": self.severity.value,
            "index": self.index,
            "mnemonic": self.mnemonic,
            "message": self.message,
            "program": self.program,
        }


@dataclass(frozen=True)
class MachineModel:
    """Static model of the hardware a program is verified against.

    Mirrors the geometry the cycle-level machine derives from
    :class:`~repro.config.ArchitectureConfig` (PE buffer words default to
    ``max(entries, 64)`` exactly like :class:`~repro.core.pe.ProcessingEngine`)
    so the verifier and the simulator reject the same programs.
    """

    num_pvs: int
    pes_per_pv: int
    local_uop_entries: int
    pv_index_bits: int
    input_buffer_words: int
    weight_buffer_words: int
    output_buffer_words: int

    @classmethod
    def from_config(
        cls,
        config: Optional[ArchitectureConfig] = None,
        *,
        num_pvs: Optional[int] = None,
        pes_per_pv: Optional[int] = None,
        input_buffer_words: Optional[int] = None,
        weight_buffer_words: Optional[int] = None,
        output_buffer_words: Optional[int] = None,
    ) -> "MachineModel":
        config = config or ArchitectureConfig.paper_default()
        return cls(
            num_pvs=num_pvs if num_pvs is not None else config.num_pvs,
            pes_per_pv=pes_per_pv if pes_per_pv is not None else config.pes_per_pv,
            local_uop_entries=config.local_uop_entries,
            pv_index_bits=config.pv_index_bits,
            input_buffer_words=(
                input_buffer_words
                if input_buffer_words is not None
                else max(config.input_register_entries, 64)
            ),
            weight_buffer_words=(
                weight_buffer_words
                if weight_buffer_words is not None
                else max(config.weight_sram_entries, 64)
            ),
            output_buffer_words=(
                output_buffer_words
                if output_buffer_words is not None
                else max(config.partial_sum_register_entries, 64)
            ),
        )

    @classmethod
    def for_executor(
        cls,
        config: Optional[ArchitectureConfig] = None,
        *,
        num_pvs: int,
        pes_per_pv: int,
        output_columns: int,
        max_words: int = 4096,
    ) -> "MachineModel":
        """The buffer sizing :class:`~repro.core.compiler.GanaxLayerExecutor`
        uses when it instantiates a machine for one wave."""
        return cls.from_config(
            config,
            num_pvs=num_pvs,
            pes_per_pv=pes_per_pv,
            input_buffer_words=max(16, max_words),
            weight_buffer_words=max(16, max_words),
            output_buffer_words=max(output_columns, 16),
        )

    def buffer_words(self, generator: AddressGenerator) -> int:
        if generator is AddressGenerator.INPUT:
            return self.input_buffer_words
        if generator is AddressGenerator.WEIGHT:
            return self.weight_buffer_words
        return self.output_buffer_words


# ----------------------------------------------------------------------
# Abstract interpretation
# ----------------------------------------------------------------------
_REGISTER_FIELDS = {
    ConfigRegister.ADDR: "addr",
    ConfigRegister.OFFSET: "offset",
    ConfigRegister.STEP: "step",
    ConfigRegister.END: "end",
    ConfigRegister.REPEAT: "repeat",
}


@dataclass
class _GeneratorState:
    written: set = field(default_factory=set)
    values: Dict[ConfigRegister, int] = field(default_factory=dict)
    started: bool = False
    outstanding: int = 0
    last_start_index: int = -1

    def config(self) -> GeneratorConfig:
        kwargs = {
            _REGISTER_FIELDS[register]: value
            for register, value in self.values.items()
        }
        return GeneratorConfig(**kwargs)


@dataclass
class _PvState:
    generators: Dict[AddressGenerator, _GeneratorState]
    repeat_value: Optional[int] = None  # loaded by mimd.ld %repeat
    pending_repeat: Optional[Tuple[int, int]] = None  # (global index, count)


class ProgramInterpreter:
    """Walk a program's global stream, emitting findings via a callback.

    The callback signature is ``emit(check_id, index, mnemonic, message)``;
    severity tagging and filtering happen in :mod:`repro.staticcheck.checks`.
    """

    def __init__(self, program: MicroProgram, model: MachineModel, emit) -> None:
        self._program = program
        self._model = model
        self._emit = emit
        self._pvs = [
            _PvState(generators={gen: _GeneratorState() for gen in AddressGenerator})
            for _ in range(program.num_pvs)
        ]
        self.dispatched_local_indices: set = set()  # (pv, index) pairs

    # -- driver ---------------------------------------------------------
    def run(self) -> None:
        for index, uop in enumerate(self._program.global_uops):
            self._step(index, uop)
        self._finish()

    def _step(self, index: int, uop: MicroOp) -> None:
        if isinstance(uop, AccessCfg):
            state = self._pv_state(index, uop)
            if state is None:
                return
            gen = state.generators[uop.generator]
            if gen.outstanding > 0:
                self._emit(
                    "reconfigure-running", index, uop.mnemonic,
                    f"PV {uop.pv_index} {uop.generator.name} generator is "
                    f"reconfigured with {gen.outstanding} produced addresses "
                    "still unconsumed; the pattern in flight is clobbered",
                )
            gen.written.add(uop.register)
            gen.values[uop.register] = uop.immediate
        elif isinstance(uop, AccessStart):
            state = self._pv_state(index, uop)
            if state is None:
                return
            self._start_generator(index, uop, state.generators[uop.generator])
        elif isinstance(uop, AccessStop):
            state = self._pv_state(index, uop)
            if state is None:
                return
            gen = state.generators[uop.generator]
            if not gen.started:
                self._emit(
                    "stop-without-start", index, uop.mnemonic,
                    f"PV {uop.pv_index} {uop.generator.name} generator is "
                    "stopped but was never started",
                )
            gen.outstanding = 0
        elif isinstance(uop, MimdLoad):
            state = self._pv_state(index, uop)
            if state is None:
                return
            if uop.destination == "repeat":
                if uop.immediate <= 0:
                    self._emit(
                        "repeat-count", index, uop.mnemonic,
                        f"mimd.ld loads repeat register with {uop.immediate}; "
                        "the execute engine requires a positive count",
                    )
                else:
                    state.repeat_value = uop.immediate
            # stride/base destinations are not modeled by the cycle-level
            # machine; they carry no verifiable state here.
        elif isinstance(uop, MimdExecute):
            if len(uop.local_indices) != self._program.num_pvs:
                self._emit(
                    "pv-index-range", index, uop.mnemonic,
                    f"mimd.exe carries {len(uop.local_indices)} local indices "
                    f"for {self._program.num_pvs} PVs",
                )
            for pv, local_index in enumerate(uop.local_indices):
                if pv >= self._program.num_pvs:
                    break
                if not self._local_index_ok(index, pv, local_index):
                    continue
                self.dispatched_local_indices.add((pv, local_index))
                self._dispatch_execute(
                    index, pv, self._program.local_uops[pv][local_index]
                )
        elif isinstance(uop, (ExecuteUop, RepeatUop)):
            # SIMD broadcast: every PE of every PV receives the µop.
            for pv in range(self._program.num_pvs):
                self._dispatch_execute(index, pv, uop)
        else:  # pragma: no cover - MicroProgram validation forbids this
            self._emit(
                "pv-index-range", index, uop.mnemonic,
                f"{uop!r} is not a dispatchable global µop",
            )

    # -- access µ-engine ------------------------------------------------
    def _pv_state(self, index: int, uop) -> Optional[_PvState]:
        if not (0 <= uop.pv_index < self._program.num_pvs):
            self._emit(
                "pv-index-range", index, uop.mnemonic,
                f"PV index {uop.pv_index} out of range for "
                f"{self._program.num_pvs} PVs",
            )
            return None
        return self._pvs[uop.pv_index]

    def _start_generator(self, index: int, uop: AccessStart, gen: _GeneratorState) -> None:
        if gen.outstanding > 0:
            self._emit(
                "reconfigure-running", index, uop.mnemonic,
                f"PV {uop.pv_index} {uop.generator.name} generator is restarted "
                f"with {gen.outstanding} produced addresses still unconsumed",
            )
        missing = [r.name for r in ConfigRegister if r not in gen.written]
        if missing:
            self._emit(
                "cfg-def-before-use", index, uop.mnemonic,
                f"PV {uop.pv_index} {uop.generator.name} generator started with "
                f"unwritten configuration registers: {', '.join(missing)}",
            )
        config = gen.config()
        try:
            config.validate()
        except SimulationError as exc:
            self._emit(
                "cfg-invalid-at-start", index, uop.mnemonic,
                f"PV {uop.pv_index} {uop.generator.name} generator configuration "
                f"is invalid: {exc}",
            )
            gen.started = True
            return
        capacity = self._model.buffer_words(uop.generator)
        highest = config.offset + config.end - 1
        if highest >= capacity:
            self._emit(
                "addr-range-overflow", index, uop.mnemonic,
                f"PV {uop.pv_index} {uop.generator.name} pattern reaches address "
                f"{highest} but the PE buffer holds {capacity} words",
            )
        gen.started = True
        gen.outstanding += config.total_addresses()
        gen.last_start_index = index

    # -- execute µ-engine -----------------------------------------------
    def _local_index_ok(self, index: int, pv: int, local_index: int) -> bool:
        limit = min(
            self._model.local_uop_entries, 1 << self._model.pv_index_bits
        )
        if local_index >= limit:
            self._emit(
                "local-index-range", index, "mimd.exe",
                f"PV {pv} local index {local_index} exceeds the "
                f"{limit}-entry local µop buffer window",
            )
            return False
        if local_index >= len(self._program.local_uops[pv]):
            self._emit(
                "local-index-range", index, "mimd.exe",
                f"PV {pv} local index {local_index} points past the "
                f"{len(self._program.local_uops[pv])} preloaded entries",
            )
            return False
        return True

    def _dispatch_execute(self, index: int, pv: int, uop: MicroOp) -> None:
        state = self._pvs[pv]
        if isinstance(uop, RepeatUop):
            if state.pending_repeat is not None:
                self._emit(
                    "repeat-pairing", index, uop.mnemonic,
                    f"PV {pv} receives a repeat prefix while the repeat at "
                    f"global µop {state.pending_repeat[0]} still awaits its "
                    "follower execute µop",
                )
            if uop.count >= (1 << 12):
                self._emit(
                    "repeat-count", index, uop.mnemonic,
                    f"repeat count {uop.count} does not fit the 12-bit "
                    "local encoding",
                )
            count = uop.count
            if count == 0:
                if state.repeat_value is None:
                    self._emit(
                        "repeat-default", index, uop.mnemonic,
                        f"PV {pv} dispatches a count-0 repeat with no prior "
                        "mimd.ld of the repeat register; the hardware falls "
                        "back to the register's reset value of 1",
                    )
                    count = 1
                else:
                    count = state.repeat_value
            state.pending_repeat = (index, count)
            return
        if not isinstance(uop, ExecuteUop):  # pragma: no cover - validated
            return
        times = 1
        if state.pending_repeat is not None:
            times = state.pending_repeat[1]
            state.pending_repeat = None
        self._consume(index, pv, uop, times)

    def _consume(self, index: int, pv: int, uop: ExecuteUop, times: int) -> None:
        state = self._pvs[pv]
        op = uop.op
        if op in (ExecuteOp.MAC, ExecuteOp.MUL, ExecuteOp.ADD):
            self._debit(index, pv, uop, AddressGenerator.INPUT, times)
            self._debit(index, pv, uop, AddressGenerator.WEIGHT, times)
        elif op is ExecuteOp.ACT:
            self._debit(index, pv, uop, AddressGenerator.OUTPUT, times)
        elif op is ExecuteOp.POOL:
            # pool drains every queued input address and writes one output.
            gen = state.generators[AddressGenerator.INPUT]
            if gen.outstanding == 0:
                self._emit(
                    "execute-starved", index, uop.mnemonic,
                    f"PV {pv} pool µop finds no input addresses to drain",
                )
            gen.outstanding = 0
            self._debit(index, pv, uop, AddressGenerator.OUTPUT, times)
        # nop consumes nothing.

    def _debit(
        self, index: int, pv: int, uop: ExecuteUop, generator: AddressGenerator, n: int
    ) -> None:
        gen = self._pvs[pv].generators[generator]
        if gen.outstanding < n:
            self._emit(
                "execute-starved", index, uop.mnemonic,
                f"PV {pv} {uop.mnemonic} consumes {n} {generator.name} "
                f"address(es) but only {gen.outstanding} were produced; the "
                "execute engine would stall forever",
            )
            gen.outstanding = 0
        else:
            gen.outstanding -= n

    # -- end of program ---------------------------------------------------
    def _finish(self) -> None:
        for pv, state in enumerate(self._pvs):
            if state.pending_repeat is not None:
                index, _count = state.pending_repeat
                self._emit(
                    "repeat-pairing", index, "repeat",
                    f"PV {pv} repeat prefix at global µop {index} is never "
                    "followed by an execute µop",
                )
            for generator, gen in state.generators.items():
                if gen.outstanding > 0:
                    self._emit(
                        "unconsumed-addresses", gen.last_start_index, "access.start",
                        f"PV {pv} {generator.name} generator ends the program "
                        f"with {gen.outstanding} produced address(es) never "
                        "consumed; the machine would not drain",
                    )
