"""Static analysis for compiled µop programs and the repo's own source.

Three tools live here (see this package's ``README.md`` for the catalogs):

- the **verifier** (:func:`verify_program` / :func:`verify_words`): an
  abstract interpreter over a :class:`~repro.isa.program.MicroProgram`'s
  global µop stream that models the access µ-engine state machines and PE
  buffers and reports :class:`Finding`\\ s against a registry of
  severity-tagged checks (:data:`CATALOG`);
- the **FileCheck harness** (:func:`run_filecheck` / :func:`filecheck`): an
  LLVM-FileCheck-style directive matcher over the stable disassembly of
  compiled programs, backing the golden-program tests;
- the **repo lints** (:func:`run_lints`): AST passes that enforce standing
  project invariants (deterministic fingerprints, lock discipline,
  schema-versioned records, frozen ISA dataclasses).

``repro check`` and ``repro lint`` surface the first and last of these on
the command line; :func:`run_check_grid` is the workload × accelerator
driver behind ``repro check`` and the CI gate.
"""

from .checks import (
    CATALOG,
    CheckSpec,
    check_ids,
    max_severity,
    verify_program,
    verify_words,
)
from .filecheck import (
    Directive,
    FileCheckError,
    FileCheckResult,
    filecheck,
    parse_check_file,
    run_filecheck,
)
from .ir import Finding, MachineModel, ProgramInterpreter, Severity
from .lint import LINT_CATALOG, LintError, LintFinding, lint_ids, run_lints
from .programs import (
    GridReport,
    ProgramReport,
    check_binding,
    iter_compilable_bindings,
    run_check_grid,
)

__all__ = [
    "CATALOG",
    "CheckSpec",
    "Directive",
    "FileCheckError",
    "FileCheckResult",
    "Finding",
    "GridReport",
    "LINT_CATALOG",
    "LintError",
    "LintFinding",
    "MachineModel",
    "ProgramInterpreter",
    "ProgramReport",
    "Severity",
    "check_binding",
    "check_ids",
    "filecheck",
    "iter_compilable_bindings",
    "lint_ids",
    "max_severity",
    "parse_check_file",
    "run_check_grid",
    "run_filecheck",
    "run_lints",
    "verify_program",
    "verify_words",
]
