"""A FileCheck-style matcher over stable textual disassembly.

Implements the LLVM idiom (``# RUN: ... | FileCheck %s``) in miniature so
golden-program tests can pin an emitted µop stream in a readable ``.chk`` file
instead of a Python literal.  Supported directives (``CHECK`` is the default
prefix; pass ``prefix=`` to use another)::

    CHECK: <pattern>          first line at/after the current position matching
    CHECK-NEXT: <pattern>     the line immediately after the previous match
    CHECK-DAG: <pattern>      group of consecutive DAG directives matches in
                              any order at/after the current position
    CHECK-COUNT-n: <pattern>  n consecutive lines each matching the pattern

Patterns are matched as substrings after whitespace normalisation; a
``{{regex}}`` segment embeds a raw regular expression.  Directives may appear
anywhere in a line (so ``.chk`` files can carry comments), and any line of the
check file without a directive is ignored.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ReproError


class FileCheckError(ReproError):
    """The input text does not satisfy the check file's directives."""


@dataclass(frozen=True)
class Directive:
    """One parsed check directive."""

    kind: str  # "check" | "next" | "dag" | "count"
    pattern: str
    count: int
    line: int  # 1-based line number in the check file


@dataclass(frozen=True)
class FileCheckResult:
    """Outcome of a :func:`run_filecheck` invocation."""

    ok: bool
    failures: Tuple[str, ...]
    matched: int  # directives satisfied before the first failure


def parse_check_file(text: str, prefix: str = "CHECK") -> List[Directive]:
    """Extract directives from a check file (non-directive lines are ignored)."""
    if not re.fullmatch(r"[A-Za-z0-9_-]+", prefix):
        raise FileCheckError(f"invalid check prefix '{prefix}'")
    directive_re = re.compile(
        rf"{re.escape(prefix)}(?P<kind>-NEXT|-DAG|-COUNT-(?P<count>\d+))?:\s?(?P<pattern>.*)$"
    )
    directives: List[Directive] = []
    for number, line in enumerate(text.splitlines(), start=1):
        match = directive_re.search(line)
        if not match:
            continue
        kind = match.group("kind") or ""
        pattern = match.group("pattern").strip()
        if not pattern:
            raise FileCheckError(f"check file line {number}: empty {prefix} pattern")
        if kind == "-NEXT":
            directives.append(Directive("next", pattern, 1, number))
        elif kind == "-DAG":
            directives.append(Directive("dag", pattern, 1, number))
        elif kind.startswith("-COUNT-"):
            count = int(match.group("count"))
            if count <= 0:
                raise FileCheckError(
                    f"check file line {number}: COUNT must be positive"
                )
            directives.append(Directive("count", pattern, count, number))
        else:
            directives.append(Directive("check", pattern, 1, number))
    if not directives:
        raise FileCheckError(f"check file contains no {prefix} directives")
    return directives


def _compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Substring match with ``{{...}}`` embedding raw regex segments."""
    parts: List[str] = []
    pos = 0
    for match in re.finditer(r"\{\{(.*?)\}\}", pattern):
        parts.append(_escape_fixed(pattern[pos : match.start()]))
        parts.append(match.group(1))
        pos = match.end()
    parts.append(_escape_fixed(pattern[pos:]))
    return re.compile("".join(parts))


def _escape_fixed(text: str) -> str:
    """Escape a literal segment, collapsing whitespace runs to single spaces
    (matching :func:`_normalise`) while preserving boundary spaces so a space
    next to a ``{{...}}`` segment still requires one in the input."""
    return re.escape(re.sub(r"\s+", " ", text))


def _normalise(text: str) -> str:
    return " ".join(text.split())


def _matches(compiled: "re.Pattern[str]", line: str) -> bool:
    return compiled.search(_normalise(line)) is not None


def _context(lines: Sequence[str], pos: int, window: int = 3) -> str:
    lo = max(0, pos - window)
    hi = min(len(lines), pos + window + 1)
    rendered = []
    for i in range(lo, hi):
        marker = ">>" if i == pos else "  "
        rendered.append(f"  {marker} {i + 1}: {lines[i]}")
    return "\n".join(rendered) if rendered else "  <empty input>"


def run_filecheck(
    input_text: str, check_text: str, prefix: str = "CHECK"
) -> FileCheckResult:
    """Match ``input_text`` against the directives of ``check_text``.

    Stops at the first unsatisfied directive and reports it with the check
    file line, the pattern, and the input context around the scan position.
    """
    directives = parse_check_file(check_text, prefix)
    lines = input_text.splitlines()
    pos = 0  # index of the next input line eligible for matching
    matched = 0
    i = 0
    while i < len(directives):
        directive = directives[i]
        if directive.kind == "dag":
            group = []
            while i < len(directives) and directives[i].kind == "dag":
                group.append(directives[i])
                i += 1
            claimed: List[int] = []
            for member in group:
                compiled = _compile_pattern(member.pattern)
                found: Optional[int] = None
                for j in range(pos, len(lines)):
                    if j in claimed:
                        continue
                    if _matches(compiled, lines[j]):
                        found = j
                        break
                if found is None:
                    return FileCheckResult(
                        ok=False,
                        failures=(
                            f"{prefix}-DAG (check file line {member.line}): "
                            f"pattern '{member.pattern}' not found at or after "
                            f"input line {pos + 1}\n{_context(lines, pos)}",
                        ),
                        matched=matched,
                    )
                claimed.append(found)
                matched += 1
            pos = max(claimed) + 1
            continue

        compiled = _compile_pattern(directive.pattern)
        if directive.kind == "next" and matched > 0:
            if pos >= len(lines) or not _matches(compiled, lines[pos]):
                got = lines[pos] if pos < len(lines) else "<end of input>"
                return FileCheckResult(
                    ok=False,
                    failures=(
                        f"{prefix}-NEXT (check file line {directive.line}): "
                        f"expected '{directive.pattern}' on input line "
                        f"{pos + 1}, got '{got.strip()}'\n{_context(lines, pos)}",
                    ),
                    matched=matched,
                )
            pos += 1
            matched += 1
            i += 1
            continue

        # check / count (and a leading NEXT, which degrades to check):
        # forward-search for the first match, then require count-1 more
        # consecutive matching lines.
        found = None
        for j in range(pos, len(lines)):
            if _matches(compiled, lines[j]):
                found = j
                break
        if found is None:
            label = prefix if directive.kind != "count" else f"{prefix}-COUNT-{directive.count}"
            return FileCheckResult(
                ok=False,
                failures=(
                    f"{label} (check file line {directive.line}): pattern "
                    f"'{directive.pattern}' not found at or after input line "
                    f"{pos + 1}\n{_context(lines, pos)}",
                ),
                matched=matched,
            )
        for extra in range(1, directive.count):
            j = found + extra
            if j >= len(lines) or not _matches(compiled, lines[j]):
                got = lines[j] if j < len(lines) else "<end of input>"
                return FileCheckResult(
                    ok=False,
                    failures=(
                        f"{prefix}-COUNT-{directive.count} (check file line "
                        f"{directive.line}): occurrence {extra + 1} of "
                        f"'{directive.pattern}' expected on input line "
                        f"{j + 1}, got '{got.strip()}'\n{_context(lines, j if j < len(lines) else len(lines) - 1)}",
                    ),
                    matched=matched,
                )
        pos = found + directive.count
        matched += 1
        i += 1

    return FileCheckResult(ok=True, failures=(), matched=matched)


def filecheck(input_text: str, check_text: str, prefix: str = "CHECK") -> None:
    """Assert-style wrapper: raise :class:`FileCheckError` on mismatch."""
    result = run_filecheck(input_text, check_text, prefix)
    if not result.ok:
        raise FileCheckError(
            f"{result.matched} directive(s) matched, then:\n" + "\n".join(result.failures)
        )
