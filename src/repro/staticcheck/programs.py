"""Grid verification: compile and verify µop programs across the registry.

This is the driver behind ``repro check``: for every requested workload ×
accelerator × ``skip_zeros`` mode it compiles each compilable layer (conv /
transposed-conv) into representative-tile micro-programs via
:func:`~repro.core.compiler.compile_layer_programs` and runs the full
:mod:`repro.staticcheck.checks` catalog over each program, against the same
machine geometry the executor would instantiate for that layer.

Compilation is bounded to one wave of at most ``max_columns`` output columns
per layer — the µop *patterns* repeat across waves, so one tile exercises
every structural property the verifier can see while keeping the whole
six-workload grid a few-second CI step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..accelerators.registry import get_accelerator
from ..config import ArchitectureConfig
from ..core.compiler import compile_layer_programs
from ..errors import CompilationError
from ..nn.network import GANModel, LayerBinding
from ..schedule import ScheduleLike, resolve_schedule
from ..workloads.registry import get_workload, resolve_workload, workload_names
from .checks import verify_program
from .ir import Finding, MachineModel, Severity


@dataclass(frozen=True)
class ProgramReport:
    """Verification outcome for one layer × mode cell of the grid."""

    workload: str
    accelerator: str
    network: str  # "generator" | "discriminator"
    layer: str
    skip_zeros: bool
    programs: int
    global_uops: int
    findings: Tuple[Finding, ...]

    @property
    def ok(self) -> bool:
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def describe(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "accelerator": self.accelerator,
            "network": self.network,
            "layer": self.layer,
            "skip_zeros": self.skip_zeros,
            "programs": self.programs,
            "global_uops": self.global_uops,
            "findings": [f.describe() for f in self.findings],
        }


@dataclass(frozen=True)
class GridReport:
    """Aggregate of every cell checked by one :func:`run_check_grid` call."""

    entries: Tuple[ProgramReport, ...]

    @property
    def findings(self) -> Tuple[Finding, ...]:
        return tuple(f for entry in self.entries for f in entry.findings)

    @property
    def programs(self) -> int:
        return sum(entry.programs for entry in self.entries)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    def describe(self) -> Dict[str, object]:
        return {
            "cells": len(self.entries),
            "programs": self.programs,
            "findings": len(self.findings),
            "ok": self.ok,
            "entries": [entry.describe() for entry in self.entries],
        }


def iter_compilable_bindings(
    model: GANModel,
) -> Iterator[Tuple[str, LayerBinding]]:
    """Every (network, binding) of ``model`` the compiler can lower."""
    for network_name, network in (
        ("generator", model.generator),
        ("discriminator", model.discriminator),
    ):
        for binding in network.bindings:
            if binding.is_convolutional or binding.is_transposed:
                yield network_name, binding


def check_binding(
    binding: LayerBinding,
    *,
    config: ArchitectureConfig,
    skip_zeros: bool,
    max_waves: int = 1,
    max_columns: int = 8,
    select: Optional[Sequence[str]] = None,
    schedule: ScheduleLike = None,
) -> Tuple[int, int, List[Finding]]:
    """Compile one bound layer and verify its programs.

    Returns ``(programs, global_uops, findings)``.  The verification model
    mirrors :class:`~repro.core.compiler.GanaxLayerExecutor` buffer sizing
    for this layer's output width.  ``schedule`` selects the
    :class:`~repro.schedule.ScheduleSpec` lowering the layer; the verifier
    then sees exactly the µop stream that schedule would execute.
    """
    programs = compile_layer_programs(
        binding,
        num_pvs=config.num_pvs,
        pes_per_pv=config.pes_per_pv,
        skip_zeros=skip_zeros,
        max_waves=max_waves,
        max_columns=max_columns,
        schedule=schedule,
    )
    model = MachineModel.for_executor(
        config,
        num_pvs=config.num_pvs,
        pes_per_pv=config.pes_per_pv,
        output_columns=binding.output_shape.spatial[-1],
    )
    findings: List[Finding] = []
    uops = 0
    for program in programs:
        uops += len(program.global_uops)
        findings.extend(verify_program(program, model, select=select))
    return len(programs), uops, findings


def run_check_grid(
    workloads: Optional[Sequence[str]] = None,
    accelerators: Sequence[str] = ("ganax",),
    *,
    skip_zeros_modes: Sequence[bool] = (True, False),
    max_waves: int = 1,
    max_columns: int = 8,
    select: Optional[Sequence[str]] = None,
    layer: Optional[str] = None,
    schedule: ScheduleLike = None,
) -> GridReport:
    """Compile-and-verify every cell of a workload × accelerator × mode grid.

    ``workloads`` defaults to the six registered paper GANs.  Each
    accelerator name is resolved through the registry (validating it and
    adopting its architecture geometry).  ``layer`` restricts the sweep to
    bindings whose name contains the given substring.  ``schedule`` lowers
    every cell with the given :class:`~repro.schedule.ScheduleSpec` (resolved
    once up front so typos fail before any compilation).
    """
    spec_schedule = resolve_schedule(schedule)
    names = list(workloads) if workloads is not None else list(workload_names())
    entries: List[ProgramReport] = []
    for accelerator_name in accelerators:
        accelerator = get_accelerator(accelerator_name).create()
        config = getattr(accelerator, "config", None) or ArchitectureConfig.paper_default()
        for workload in names:
            spec = resolve_workload(workload)
            model = get_workload(spec)
            for network_name, binding in iter_compilable_bindings(model):
                if layer is not None and layer not in binding.name:
                    continue
                for skip_zeros in skip_zeros_modes:
                    try:
                        programs, uops, findings = check_binding(
                            binding,
                            config=config,
                            skip_zeros=skip_zeros,
                            max_waves=max_waves,
                            max_columns=max_columns,
                            select=select,
                            schedule=spec_schedule,
                        )
                    except CompilationError as exc:
                        # A layer the compiler rejects outright is not a
                        # verifier finding — surface it as a zero-program
                        # cell so the caller still sees the cell exists.
                        raise CompilationError(
                            f"{spec.name}/{binding.name} "
                            f"(skip_zeros={skip_zeros}): {exc}"
                        ) from exc
                    entries.append(
                        ProgramReport(
                            workload=spec.name,
                            accelerator=accelerator.name,
                            network=network_name,
                            layer=binding.name,
                            skip_zeros=skip_zeros,
                            programs=programs,
                            global_uops=uops,
                            findings=tuple(findings),
                        )
                    )
    return GridReport(entries=tuple(entries))
