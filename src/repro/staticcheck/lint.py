"""AST lints encoding standing project invariants over the repo's own source.

These are not style checks — each lint guards a correctness property that has
to hold for caching, concurrency or the wire protocol to stay sound:

``wallclock-in-fingerprint``
    Fingerprint / cache-key modules must be deterministic: no
    ``time.time``/``datetime.now``-style wall-clock reads (monotonic clocks
    for *measuring* are fine and are not flagged).
``unlocked-state-write``
    In a class that guards state with ``self._lock``, an attribute that is
    written inside a ``with self._lock`` block somewhere must be written
    under the lock everywhere (outside ``__init__``; methods whose name ends
    in ``_locked`` are assumed to run with the lock held by their caller).
``record-schema-version``
    Every wire/JSONL record constructor (functions ending in ``_record`` and
    ``describe`` methods returning typed records) must produce records that
    carry ``schema_version`` — either literally or by routing through
    ``stamp(...)``.
``unfrozen-isa-dataclass``
    µop dataclasses in ``isa/`` modules must be ``frozen=True``; program
    containers rely on value semantics and hashability.

A finding can be waived inline with a justification::

    self._total += 1  # lint: allow(unlocked-state-write) single-threaded by contract

The waiver comment may sit on the flagged line or the line above and only
silences the ids it names.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError


class LintError(ReproError):
    """A lint target could not be read or parsed."""


@dataclass(frozen=True)
class LintFinding:
    """One lint violation, anchored to a source line."""

    path: str
    line: int
    check_id: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.check_id}: {self.message}"


#: Lint ids and what they guard (the README's lint catalog renders this).
LINT_CATALOG: Dict[str, str] = {
    "wallclock-in-fingerprint": (
        "no wall-clock reads (time.time / datetime.now / ...) in fingerprint "
        "or cache-key code"
    ),
    "unlocked-state-write": (
        "attributes a class writes under `with self._lock` must be written "
        "under the lock everywhere outside __init__"
    ),
    "record-schema-version": (
        "wire/JSONL record constructors must emit schema_version (literally "
        "or via stamp(...))"
    ),
    "unfrozen-isa-dataclass": "dataclasses in isa/ modules must be frozen=True",
}

_WAIVER_RE = re.compile(r"#\s*lint:\s*allow\(([A-Za-z0-9_,\s-]+)\)")

_WALLCLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)
_FINGERPRINT_FILE_HINTS = ("serialization", "cache", "fingerprint")
_FINGERPRINT_FUNC_HINTS = ("fingerprint", "cache_key")


def lint_ids() -> Tuple[str, ...]:
    return tuple(sorted(LINT_CATALOG))


@dataclass
class _Module:
    path: Path
    display: str
    tree: ast.AST
    waivers: Dict[int, Set[str]]


def _load_module(path: Path, root: Optional[Path]) -> _Module:
    try:
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError) as exc:
        raise LintError(f"cannot lint {path}: {exc}") from exc
    waivers: Dict[int, Set[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            waivers[number] = ids
    display = str(path)
    if root is not None:
        try:
            display = str(path.relative_to(root))
        except ValueError:
            pass
    return _Module(path=path, display=display, tree=tree, waivers=waivers)


def _iter_py_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def _dotted_name(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class _Emitter:
    def __init__(self, module: _Module, select: Optional[Set[str]]) -> None:
        self._module = module
        self._select = select
        self.findings: List[LintFinding] = []

    def emit(self, check_id: str, line: int, message: str) -> None:
        if self._select is not None and check_id not in self._select:
            return
        for waiver_line in (line, line - 1):
            if check_id in self._module.waivers.get(waiver_line, ()):
                return
        self.findings.append(
            LintFinding(
                path=self._module.display, line=line, check_id=check_id, message=message
            )
        )


# ----------------------------------------------------------------------
# wallclock-in-fingerprint
# ----------------------------------------------------------------------
def _lint_wallclock(module: _Module, emit: _Emitter) -> None:
    basename = module.path.name.lower()
    whole_file = any(hint in basename for hint in _FINGERPRINT_FILE_HINTS)

    # Resolve `from time import time`-style bare names to dotted forms.
    bare_names: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module in ("time", "datetime"):
            for alias in node.names:
                bare_names[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def flag_calls(root: ast.AST, where: str) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted in bare_names:
                dotted = bare_names[dotted]
            if dotted and any(
                dotted == suffix or dotted.endswith("." + suffix)
                for suffix in _WALLCLOCK_SUFFIXES
            ):
                emit.emit(
                    "wallclock-in-fingerprint", node.lineno,
                    f"wall-clock call {dotted}() in {where}; fingerprints and "
                    "cache keys must be deterministic",
                )

    if whole_file:
        flag_calls(module.tree, f"cache/fingerprint module {module.path.name}")
        return
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
            hint in node.name.lower() for hint in _FINGERPRINT_FUNC_HINTS
        ):
            flag_calls(node, f"{node.name}()")


# ----------------------------------------------------------------------
# unlocked-state-write
# ----------------------------------------------------------------------
def _self_attr_targets(node: ast.AST) -> List[Tuple[str, int]]:
    """Names of `self.<attr>` targets written by an assignment statement."""
    found: List[Tuple[str, int]] = []

    def visit_target(target: ast.AST) -> None:
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                found.append((target.attr, target.lineno))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                visit_target(element)

    if isinstance(node, ast.Assign):
        for target in node.targets:
            visit_target(target)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        visit_target(node.target)
    return found


def _is_lock_with(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        dotted = _dotted_name(expr)
        if dotted.split(".")[-1].endswith("_lock"):
            return True
    return False


def _lint_lock_discipline(module: _Module, emit: _Emitter) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = [
            child
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        has_lock = any(
            attr == "_lock"
            for method in methods
            for stmt in ast.walk(method)
            for attr, _ in _self_attr_targets(stmt)
        )
        if not has_lock:
            continue

        locked_writes: Dict[str, int] = {}
        unlocked_writes: List[Tuple[str, int, str]] = []

        def scan(root: ast.AST, method_name: str, under_lock: bool) -> None:
            for child in ast.iter_child_nodes(root):
                if isinstance(child, ast.With):
                    scan(child, method_name, under_lock or _is_lock_with(child))
                    continue
                for attr, line in _self_attr_targets(child):
                    if attr == "_lock":
                        continue
                    if under_lock:
                        locked_writes.setdefault(attr, line)
                    else:
                        unlocked_writes.append((attr, line, method_name))
                scan(child, method_name, under_lock)

        for method in methods:
            if method.name == "__init__":
                continue
            # `_locked`-suffixed helpers run with the lock already held by
            # their caller — the standing naming convention in this repo.
            scan(method, method.name, under_lock=method.name.endswith("_locked"))

        for attr, line, method_name in unlocked_writes:
            if attr in locked_writes:
                emit.emit(
                    "unlocked-state-write", line,
                    f"{node.name}.{method_name} writes self.{attr} outside "
                    f"`with self._lock` although the class writes it under "
                    f"the lock elsewhere (line {locked_writes[attr]})",
                )


# ----------------------------------------------------------------------
# record-schema-version
# ----------------------------------------------------------------------
def _dict_keys(node: ast.Dict) -> Set[str]:
    keys: Set[str] = set()
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
    return keys


def _lint_record_schema(module: _Module, emit: _Emitter) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        is_constructor = node.name.endswith("_record")
        is_describe = node.name == "describe"
        if not (is_constructor or is_describe):
            continue
        for child in ast.walk(node):
            if not isinstance(child, ast.Return) or child.value is None:
                continue
            value = child.value
            if isinstance(value, ast.Call):
                dotted = _dotted_name(value.func)
                if dotted.split(".")[-1] == "stamp":
                    continue
                if is_constructor:
                    emit.emit(
                        "record-schema-version", child.lineno,
                        f"{node.name} returns {dotted or 'a call'}(...) instead "
                        "of stamp(...) or a literal carrying schema_version",
                    )
                continue
            if isinstance(value, ast.Dict):
                keys = _dict_keys(value)
                if "schema_version" in keys:
                    continue
                if is_constructor or "type" in keys or "event" in keys:
                    emit.emit(
                        "record-schema-version", child.lineno,
                        f"{node.name} returns a record dict without "
                        "schema_version (wrap it in stamp(...) or add the key)",
                    )


# ----------------------------------------------------------------------
# unfrozen-isa-dataclass
# ----------------------------------------------------------------------
def _lint_frozen_dataclasses(module: _Module, emit: _Emitter) -> None:
    if "isa" not in module.path.parts:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if _dotted_name(target).split(".")[-1] != "dataclass":
                continue
            frozen = False
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        frozen = True
            if not frozen:
                emit.emit(
                    "unfrozen-isa-dataclass", node.lineno,
                    f"dataclass {node.name} in an isa/ module must be "
                    "declared @dataclass(frozen=True)",
                )


_LINTS = (
    _lint_wallclock,
    _lint_lock_discipline,
    _lint_record_schema,
    _lint_frozen_dataclasses,
)


def run_lints(
    paths: Sequence[Path | str],
    *,
    select: Optional[Sequence[str]] = None,
    root: Optional[Path | str] = None,
) -> List[LintFinding]:
    """Run every lint over the ``.py`` files under ``paths``.

    ``select`` restricts to a subset of lint ids; ``root`` makes reported
    paths relative (defaults to the common working directory behaviour of
    absolute/as-given paths).
    """
    selected = set(select) if select is not None else None
    if selected is not None:
        unknown = selected - set(LINT_CATALOG)
        if unknown:
            raise LintError(f"unknown lint id(s): {', '.join(sorted(unknown))}")
    root_path = Path(root) if root is not None else None
    findings: List[LintFinding] = []
    for file_path in _iter_py_files([Path(p) for p in paths]):
        module = _load_module(file_path, root_path)
        emitter = _Emitter(module, selected)
        for lint in _LINTS:
            lint(module, emitter)
        findings.extend(emitter.findings)
    return sorted(findings, key=lambda f: (f.path, f.line, f.check_id))
