"""The verifier's check registry and entry points.

Every check has a stable id and severity (the catalog below is the reference
the README documents and the mutation tests enumerate).  :func:`verify_program`
runs every pass over one compiled :class:`~repro.isa.program.MicroProgram`;
:func:`verify_words` runs the word-level passes over an already-encoded global
stream (which is how a flipped mode bit in a stored program image is caught).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import ArchitectureConfig
from ..isa.encoding import (
    decode_global_uop,
    decode_local_uop,
    encode_global_uop,
    encode_local_uop,
    is_mimd_word,
)
from ..isa.program import MicroProgram
from .ir import Finding, MachineModel, ProgramInterpreter, Severity


@dataclass(frozen=True)
class CheckSpec:
    """One registered verifier pass: id, severity and what it catches."""

    check_id: str
    severity: Severity
    description: str


#: The full check catalog, keyed by check id.  Severities are fixed per id.
CATALOG: Dict[str, CheckSpec] = {
    spec.check_id: spec
    for spec in (
        CheckSpec(
            "cfg-def-before-use", Severity.ERROR,
            "access.start fired with configuration registers never written "
            "since program start",
        ),
        CheckSpec(
            "cfg-invalid-at-start", Severity.ERROR,
            "generator configuration at access.start violates the hardware "
            "constraints (Step/End/Addr/Repeat ranges)",
        ),
        CheckSpec(
            "reconfigure-running", Severity.ERROR,
            "access.cfg/access.start addressed to a generator whose previous "
            "pattern still has unconsumed addresses",
        ),
        CheckSpec(
            "stop-without-start", Severity.ERROR,
            "access.stop addressed to a generator that was never started",
        ),
        CheckSpec(
            "addr-range-overflow", Severity.ERROR,
            "strided pattern reaches past the PE operand buffer capacity",
        ),
        CheckSpec(
            "pv-index-range", Severity.ERROR,
            "µop addresses a PV outside the program's PV count",
        ),
        CheckSpec(
            "local-index-range", Severity.ERROR,
            "mimd.exe index outside the preloaded local buffer or the "
            "4-bit index field range",
        ),
        CheckSpec(
            "local-buffer-overflow", Severity.ERROR,
            "preloaded local µop buffer exceeds the hardware entry count",
        ),
        CheckSpec(
            "repeat-count", Severity.ERROR,
            "repeat count of zero loaded via mimd.ld, or a count too large "
            "for the 12-bit encoding",
        ),
        CheckSpec(
            "repeat-default", Severity.WARNING,
            "count-0 repeat dispatched without a prior mimd.ld of the repeat "
            "register (silently repeats once)",
        ),
        CheckSpec(
            "repeat-pairing", Severity.ERROR,
            "repeat prefix not followed by a plain execute µop",
        ),
        CheckSpec(
            "execute-starved", Severity.ERROR,
            "execute µop consumes more addresses than its generators produce",
        ),
        CheckSpec(
            "unconsumed-addresses", Severity.ERROR,
            "program ends with produced addresses never consumed",
        ),
        CheckSpec(
            "dead-uop", Severity.WARNING,
            "preloaded local µop never dispatched by any mimd.exe",
        ),
        CheckSpec(
            "roundtrip-divergence", Severity.ERROR,
            "encode→decode of a µop diverges from the original or fails",
        ),
        CheckSpec(
            "mode-flag", Severity.ERROR,
            "encoded word's SIMD/MIMD mode bit contradicts its opcode group",
        ),
    )
}


def check_ids() -> Tuple[str, ...]:
    """All registered check ids (stable, sorted)."""
    return tuple(sorted(CATALOG))


class _Collector:
    def __init__(self, program_name: str, select: Optional[Sequence[str]]) -> None:
        self._program = program_name
        self._select = set(select) if select is not None else None
        self.findings: List[Finding] = []

    def __call__(self, check_id: str, index: int, mnemonic: str, message: str) -> None:
        if check_id not in CATALOG:  # pragma: no cover - registry discipline
            raise KeyError(f"unregistered check id '{check_id}'")
        if self._select is not None and check_id not in self._select:
            return
        self.findings.append(
            Finding(
                check_id=check_id,
                severity=CATALOG[check_id].severity,
                index=index,
                mnemonic=mnemonic,
                message=message,
                program=self._program,
            )
        )


# ----------------------------------------------------------------------
# Individual passes
# ----------------------------------------------------------------------
def _pass_structure(program: MicroProgram, model: MachineModel, emit) -> None:
    for pv, buffer in enumerate(program.local_uops):
        if len(buffer) > model.local_uop_entries:
            emit(
                "local-buffer-overflow", -1, f"local[pv{pv}]",
                f"PV {pv} preloads {len(buffer)} local µops but the hardware "
                f"provides {model.local_uop_entries} entries",
            )


def _pass_interpret(program: MicroProgram, model: MachineModel, emit) -> set:
    interpreter = ProgramInterpreter(program, model, emit)
    interpreter.run()
    return interpreter.dispatched_local_indices


def _pass_dead_uops(program: MicroProgram, dispatched: set, emit) -> None:
    for pv, buffer in enumerate(program.local_uops):
        for index, uop in enumerate(buffer):
            if (pv, index) not in dispatched:
                emit(
                    "dead-uop", -1, f"local[pv{pv}][{index}]",
                    f"PV {pv} local µop {index} ({uop.mnemonic}) is preloaded "
                    "but never dispatched by any mimd.exe",
                )


def _pass_roundtrip(program: MicroProgram, emit) -> None:
    for index, uop in enumerate(program.global_uops):
        try:
            word = encode_global_uop(uop, num_pvs=program.num_pvs)
            decoded = decode_global_uop(word, num_pvs=program.num_pvs)
        except Exception as exc:
            emit(
                "roundtrip-divergence", index, uop.mnemonic,
                f"encode→decode failed: {exc}",
            )
            continue
        if decoded != uop:
            emit(
                "roundtrip-divergence", index, uop.mnemonic,
                f"decode({{encode}}) returned {decoded!r} instead of {uop!r}",
            )
    for pv, buffer in enumerate(program.local_uops):
        for index, uop in enumerate(buffer):
            try:
                decoded = decode_local_uop(encode_local_uop(uop))
            except Exception as exc:
                emit(
                    "roundtrip-divergence", -1, f"local[pv{pv}][{index}]",
                    f"encode→decode failed: {exc}",
                )
                continue
            if decoded != uop:
                emit(
                    "roundtrip-divergence", -1, f"local[pv{pv}][{index}]",
                    f"decode({{encode}}) returned {decoded!r} instead of {uop!r}",
                )


def _pass_mode_flags(words: Sequence[int], num_pvs: int, emit) -> None:
    for index, word in enumerate(words):
        try:
            decoded = decode_global_uop(word, num_pvs=num_pvs)
        except Exception as exc:
            emit(
                "roundtrip-divergence", index, f"word {word:#x}",
                f"encoded word does not decode: {exc}",
            )
            continue
        if is_mimd_word(word) != decoded.is_mimd:
            emit(
                "mode-flag", index, decoded.mnemonic,
                f"word {word:#x} has mode bit {int(is_mimd_word(word))} but "
                f"opcode group "
                f"{'MIMD' if decoded.is_mimd else 'SIMD/access'}",
            )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def verify_program(
    program: MicroProgram,
    model: Optional[MachineModel] = None,
    *,
    config: Optional[ArchitectureConfig] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run every registered pass over one micro-program.

    ``model`` defaults to the paper-default geometry (via ``config``).
    ``select`` restricts the returned findings to a subset of check ids.
    Findings come back ordered by global µop index (program-level findings
    first carry index -1).
    """
    if model is None:
        model = MachineModel.from_config(config, num_pvs=program.num_pvs)
    collect = _Collector(program.name, select)
    _pass_structure(program, model, collect)
    dispatched = _pass_interpret(program, model, collect)
    _pass_dead_uops(program, dispatched, collect)
    _pass_roundtrip(program, collect)
    try:
        words = program.encoded_global_words()
    except Exception:
        words = None  # already reported by the round-trip pass
    if words is not None:
        _pass_mode_flags(words, program.num_pvs, collect)
    return sorted(collect.findings, key=lambda f: (f.index, f.check_id))


def verify_words(
    words: Sequence[int],
    *,
    num_pvs: int,
    program_name: str = "<words>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Word-level verification of an encoded global stream.

    Catches corrupted stored program images: undecodable words and
    SIMD/MIMD mode bits inconsistent with the word's opcode group.
    """
    collect = _Collector(program_name, select)
    _pass_mode_flags(words, num_pvs, collect)
    return collect.findings


def max_severity(findings: Sequence[Finding]) -> Optional[Severity]:
    """The worst severity present, or None for an empty list."""
    if any(f.severity is Severity.ERROR for f in findings):
        return Severity.ERROR
    if findings:
        return Severity.WARNING
    return None
