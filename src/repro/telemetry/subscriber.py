"""The RunnerEvent -> metrics bridge: job outcome counters and latencies.

:class:`MetricsSubscriber` is an event listener (the
``Callable[[RunnerEvent], None]`` shape of
:meth:`repro.runner.SimulationRunner.subscribe`) that turns the runner's
typed event stream into registry metrics:

* ``runner.jobs.scheduled`` and ``runner.jobs.<terminal-kind>`` counters
  (``completed`` / ``cache-hit`` / ``failed`` / ``cancelled``), so outcome
  mix is readable without replaying any stream;
* ``runner.job.latency_seconds`` — a histogram of scheduled-to-terminal
  latency per job, correlated through the event's ``job_uid`` and computed
  from the events' own monotonic timestamps (so it is exact regardless of
  which thread delivers which event).

Every :class:`~repro.runner.SimulationRunner` installs one automatically, so
job metrics exist wherever a runner runs — CLI, service, library — without
any consumer wiring.  The subscriber resolves the registry per event and is
a no-op when metrics are disabled.

This module deliberately imports nothing from :mod:`repro.runner` (the
runner imports *us*); events are duck-typed on the attributes the
``RunnerEvent`` grammar guarantees.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from .metrics import get_metrics


class MetricsSubscriber:
    """Feed job life-cycle events into the process metrics registry.

    Thread-safe: backends deliver terminal events from worker/callback
    threads while ``scheduled`` events arrive on the submitting thread.  The
    per-job start times are keyed by ``job_uid`` and dropped at the job's
    terminal event — the event grammar guarantees exactly one per job, so
    the table never grows past the number of in-flight jobs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._scheduled_at: Dict[str, float] = {}

    def __call__(self, event: Any) -> None:
        registry = get_metrics()
        if registry is None:
            return
        uid = getattr(event, "job_uid", None)
        if event.kind == "scheduled":
            registry.counter("runner.jobs.scheduled").inc()
            if uid is not None:
                with self._lock:
                    self._scheduled_at[uid] = event.timestamp
            return
        if not event.is_terminal:
            return
        registry.counter(f"runner.jobs.{event.kind}").inc()
        if uid is None:
            return
        with self._lock:
            start = self._scheduled_at.pop(uid, None)
        if start is not None:
            registry.histogram("runner.job.latency_seconds").observe(
                event.timestamp - start
            )
