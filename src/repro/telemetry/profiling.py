"""Profiling hooks: timed regions into histograms, cProfile around blocks.

Two small, composable tools — deliberately thin wrappers so any layer can
adopt them without new dependencies:

* :func:`timed` — a context manager observing the block's wall time into a
  registry histogram (no-op when metrics are disabled).  This is how the
  service feeds ``service.request_latency_seconds`` without hand-rolled
  clock arithmetic at every call site.
* :func:`profile_to` — a context manager running the block under
  :mod:`cProfile` and dumping pstats to a path; load the dump with
  ``python -m pstats`` or ``snakeviz``.  Profiling is always explicit and
  scoped — there is no ambient profiler to forget running.
"""

from __future__ import annotations

import cProfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from .metrics import Histogram, get_metrics

PathLike = Union[str, Path]


@contextmanager
def timed(name: str, **labels: Any) -> Iterator[None]:
    """Observe the block's duration (seconds) into histogram ``name``.

    Resolves the registry at entry, so a block running while metrics are
    disabled costs one ``None`` check and nothing else.
    """
    registry = get_metrics()
    if registry is None:
        yield
        return
    histogram: Histogram = registry.histogram(name, **labels)
    start = time.perf_counter()
    try:
        yield
    finally:
        histogram.observe(time.perf_counter() - start)


@contextmanager
def profile_to(path: PathLike, enabled: bool = True) -> Iterator[Optional[cProfile.Profile]]:
    """Run the block under cProfile, dumping pstats to ``path`` on exit.

    ``enabled=False`` turns the whole thing into a no-op yield, so call
    sites can thread a flag through without branching themselves.  The
    profile object is yielded for in-process inspection before the dump.
    """
    if not enabled:
        yield None
        return
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        profile.dump_stats(str(path))
