"""Process-local metrics: counters, gauges and histograms behind one registry.

A :class:`MetricsRegistry` owns every instrument in a process.  Instruments
are addressed by name plus optional labels (``registry.counter(
"service.admission.accepted", client="worker-3")``); the same (name, labels)
pair always returns the same instrument, so call sites never need to hold
references across layers.  One registry-wide lock serializes every update
and makes :meth:`MetricsRegistry.snapshot` an **atomic** cut across all
instruments — a snapshot taken while backend threads complete jobs never
shows a counter torn against its sibling (pinned by
``tests/test_telemetry.py``).

The module-level registry follows the same configure/get pattern as the
layer memo (:func:`repro.runner.cache.configure_layer_memo`):

* :func:`get_metrics` — the process registry, created lazily (metrics are
  **on by default**; instruments are a dict lookup plus an integer add, far
  below simulation cost).
* :func:`configure_metrics` — swap in a fresh registry, or disable metrics
  entirely (``enabled=False``), after which :func:`get_metrics` returns
  ``None`` and every instrumented call site degrades to a no-op check.

Naming convention: dotted lowercase paths, ``<layer>.<subsystem>.<what>``
(``runner.cache.hits``, ``service.queue_depth``, ``backend.jobs.inflight``).
Durations are histograms in seconds with a ``_seconds`` suffix.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

#: Samples a histogram keeps for percentile estimation; lifetime count/sum/
#: min/max are exact regardless (the window only bounds memory).
DEFAULT_HISTOGRAM_WINDOW = 4096


def _key(name: str, labels: Mapping[str, Any]) -> str:
    """The registry key of one instrument: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer (events, hits, rejects)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level (queue depth, in-flight jobs, resident entries)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A distribution (latencies): exact count/sum/min/max, windowed percentiles.

    The percentile estimate nearest-ranks over the most recent
    ``window`` observations; lifetime ``count``/``sum``/``min``/``max`` are
    exact however many samples passed through.
    """

    __slots__ = ("_lock", "_samples", "count", "total", "min", "max")

    def __init__(
        self, lock: threading.RLock, window: int = DEFAULT_HISTOGRAM_WINDOW
    ) -> None:
        self._lock = lock
        self._samples: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the sample window (0 when empty)."""
        with self._lock:
            return self._percentile_locked(p)

    def _percentile_locked(self, p: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(p / 100 * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count,
                "p50": self._percentile_locked(50),
                "p90": self._percentile_locked(90),
                "p99": self._percentile_locked(99),
            }


class MetricsRegistry:
    """Every instrument of one process, behind one lock.

    ``counter``/``gauge``/``histogram`` get-or-create by (name, labels);
    asking for an existing name with a different instrument kind raises —
    that is always a naming bug, not a runtime condition.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get_or_create(
        self, table: Dict[str, Any], name: str, labels: Mapping[str, Any], factory
    ):
        key = _key(name, labels)
        with self._lock:
            instrument = table.get(key)
            if instrument is None:
                for other in (self._counters, self._gauges, self._histograms):
                    if other is not table and key in other:
                        raise ValueError(
                            f"metric '{key}' already registered as a different "
                            "instrument kind"
                        )
                instrument = factory(self._lock)
                table[key] = instrument
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(self._counters, name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(self._gauges, name, labels, Gauge)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create(self._histograms, name, labels, Histogram)

    def snapshot(self) -> Dict[str, Any]:
        """An atomic, JSON-friendly cut across every instrument.

        Taken under the registry lock, so no concurrent update can tear one
        instrument's value against another's: a completed job's latency
        observation and its outcome counter appear together or not at all.
        """
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.summary() for k, h in sorted(self._histograms.items())
                },
            }

    def counter_value(self, name: str, **labels: Any) -> int:
        """Read one counter without creating it (0 when absent)."""
        key = _key(name, labels)
        with self._lock:
            counter = self._counters.get(key)
            return counter.value if counter is not None else 0

    def reset(self) -> None:
        """Drop every instrument (tests; a fresh CLI run keeps its own story)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# Process-wide registry (configure/get, mirroring the layer memo pattern)
# ----------------------------------------------------------------------
_registry_lock = threading.Lock()
_registry: Optional[MetricsRegistry] = None
_metrics_enabled = True


def configure_metrics(enabled: bool = True) -> Optional[MetricsRegistry]:
    """(Re)configure process metrics; returns the fresh registry (or None).

    ``enabled=True`` installs a **new, empty** registry — existing counters
    are discarded, so a run's accounting always starts from zero.
    ``enabled=False`` removes the registry entirely: every instrumented call
    site sees :func:`get_metrics` return ``None`` and skips its update (the
    "telemetry disabled" overhead budget of ``bench_telemetry.py``).
    """
    global _registry, _metrics_enabled
    with _registry_lock:
        _metrics_enabled = enabled
        _registry = MetricsRegistry() if enabled else None
        return _registry


def get_metrics() -> Optional[MetricsRegistry]:
    """The process registry, or None when metrics are disabled.

    Metrics are on by default: the first call after process start (or after
    ``configure_metrics(enabled=True)``) lazily creates the registry.
    """
    global _registry
    if _registry is not None or not _metrics_enabled:
        return _registry
    with _registry_lock:
        if _registry is None and _metrics_enabled:
            _registry = MetricsRegistry()
        return _registry
