"""Hierarchical tracing spans over the execution layers.

A :class:`Span` is one timed region — ``batch``, ``job``,
``simulate_layers``, ``layer-memo`` on the runner side; ``request``,
``admission``, ``dispatch`` on the service side — with a monotonic start/end
timestamp, a parent id, and free-form attributes.  A :class:`Tracer` collects
them thread-safely and exports the finished tree either as JSONL (one span
per line) or as Chrome trace-event JSON, which Perfetto / ``chrome://tracing``
open directly.

Tracing is **off by default**: :func:`get_tracer` returns ``None`` until
:func:`configure_tracing` installs a tracer, and every instrumented call site
guards with one ``is None`` check — the near-zero-overhead no-op path the
``bench_telemetry.py`` budget pins.

Parentage works two ways:

* **Explicit** — ``begin(name, parent_id=...)``, used where the parent is
  known across threads (the runner parents every ``job`` span under its
  ``batch`` span).
* **Implicit** — the :meth:`Tracer.span` context manager keeps a per-thread
  stack of open spans; a span begun without an explicit parent nests under
  the innermost open span *of its thread* (how a ``layer-memo`` span lands
  under its ``simulate_layers`` span).

Execution-side spans need a parent that was opened on a *different* thread
(the submitting thread opens the ``job`` span; a backend worker thread runs
the simulation).  :meth:`Tracer.register_job` bridges the gap: the runner
registers ``cache_key -> job-span id`` at dispatch, and
:func:`~repro.runner.job.execute_job` looks the parent up with
:meth:`Tracer.parent_for`.  Process-pool workers are separate processes with
their own (unconfigured, hence disabled) tracer, so worker-side spans are not
recorded there — the runner-side ``batch``/``job`` tree is backend-invariant
(pinned by ``tests/test_telemetry.py``), execution-side detail is only
observable on in-process backends.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]


class Span:
    """One timed, attributed region of work inside a trace."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attrs",
        "thread_id",
    )

    def __init__(
        self,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        thread_id: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.thread_id = thread_id

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open (or closed) span; returns self."""
        self.attrs.update(attrs)
        return self

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly record of the span (the JSONL export grammar)."""
        record: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "thread_id": self.thread_id,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class Tracer:
    """Thread-safe span collector with JSONL and Chrome trace-event export.

    Timestamps are :func:`time.monotonic` seconds relative to the tracer's
    construction, so spans from every thread share one clock and the Chrome
    export's microsecond timeline starts at zero.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.monotonic()
        self._ids = itertools.count(1)
        self._finished: List[Span] = []
        self._open: Dict[str, Span] = {}
        self._job_parents: Dict[str, str] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._epoch

    def begin(
        self, name: str, parent_id: Optional[str] = None, **attrs: Any
    ) -> Span:
        """Open a span.  Without an explicit parent, the innermost span this
        thread opened via :meth:`span` becomes the parent (None at top level).
        """
        if parent_id is None:
            stack = getattr(self._local, "stack", None)
            if stack:
                parent_id = stack[-1]
        span = Span(
            span_id=f"s{next(self._ids)}",
            parent_id=parent_id,
            name=name,
            start=self._now(),
            thread_id=threading.get_ident(),
            attrs=dict(attrs),
        )
        with self._lock:
            self._open[span.span_id] = span
        return span

    def end(self, span: Span, **attrs: Any) -> bool:
        """Close a span (exactly once); repeated ends are ignored (False)."""
        with self._lock:
            if span.span_id not in self._open:
                return False
            del self._open[span.span_id]
            span.end = self._now()
            if attrs:
                span.attrs.update(attrs)
            self._finished.append(span)
        return True

    @contextmanager
    def span(
        self, name: str, parent_id: Optional[str] = None, **attrs: Any
    ) -> Iterator[Span]:
        """Context manager: begin/end around the block, with implicit nesting
        for spans begun inside it on the same thread."""
        opened = self.begin(name, parent_id=parent_id, **attrs)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(opened.span_id)
        try:
            yield opened
        finally:
            stack.pop()
            self.end(opened)

    # -- cross-thread job parentage -------------------------------------
    def register_job(self, cache_key: str, span_id: str) -> None:
        """Remember the open job span executing ``cache_key`` (dispatch time)."""
        with self._lock:
            self._job_parents[cache_key] = span_id

    def parent_for(self, cache_key: str) -> Optional[str]:
        """The job-span id registered for ``cache_key`` (execution time)."""
        with self._lock:
            return self._job_parents.get(cache_key)

    def unregister_job(self, cache_key: str) -> None:
        with self._lock:
            self._job_parents.pop(cache_key, None)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Every closed span, in close order (a snapshot copy)."""
        with self._lock:
            return list(self._finished)

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (a snapshot copy)."""
        with self._lock:
            return list(self._open.values())

    def chrome_trace(self) -> Dict[str, Any]:
        """The finished spans as a Chrome trace-event JSON object.

        Complete (``"ph": "X"``) events with microsecond timestamps; opens
        directly in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
        """
        pid = os.getpid()
        events = []
        for span in self.finished_spans():
            assert span.end is not None
            args = dict(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": (span.end - span.start) * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: PathLike) -> None:
        """Write the Chrome trace-event JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, sort_keys=True)

    def export_jsonl(self, path: PathLike) -> None:
        """Write one JSON span record per line to ``path`` (close order)."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.finished_spans():
                handle.write(json.dumps(span.describe(), sort_keys=True) + "\n")

    def export(self, path: PathLike) -> None:
        """Write the trace to ``path``: JSONL when it ends in ``.jsonl``,
        Chrome trace-event JSON otherwise (the CLI's ``--trace`` contract)."""
        if str(path).endswith(".jsonl"):
            self.export_jsonl(path)
        else:
            self.export_chrome(path)


# ----------------------------------------------------------------------
# Process-wide tracer (off by default)
# ----------------------------------------------------------------------
_tracer_lock = threading.Lock()
_tracer: Optional[Tracer] = None


def configure_tracing(enabled: bool = True) -> Optional[Tracer]:
    """Install a fresh process tracer (or remove it with ``enabled=False``).

    Returns the new tracer (None when disabling).  Unlike metrics, tracing
    defaults to **off** — spans allocate per region of work, so they are
    opt-in (``--trace`` on the CLI, or this call in library use).
    """
    global _tracer
    with _tracer_lock:
        _tracer = Tracer() if enabled else None
        return _tracer


def get_tracer() -> Optional[Tracer]:
    """The process tracer, or None when tracing is disabled (the default)."""
    return _tracer
