"""Unified telemetry: tracing spans, a metrics registry, profiling hooks.

See ``README.md`` in this directory for the architecture and usage guide.
The three pieces compose but are independently switchable:

* :mod:`~repro.telemetry.tracing` — hierarchical spans with monotonic
  timestamps and parent ids, exportable as JSONL or Chrome trace-event JSON
  (Perfetto).  Off by default; :func:`configure_tracing` opts in.
* :mod:`~repro.telemetry.metrics` — process-local counters/gauges/histograms
  behind one registry with an atomic :meth:`~MetricsRegistry.snapshot`.  On
  by default; :func:`configure_metrics` resets or disables.
* :mod:`~repro.telemetry.profiling` — :func:`timed` regions into histograms
  and scoped :func:`profile_to` cProfile dumps.

Quick start::

    from repro.telemetry import configure_tracing, get_metrics

    tracer = configure_tracing()            # start recording spans
    session.compare("DCGAN")                # any runner traffic
    tracer.export("trace.json")             # open in Perfetto
    print(get_metrics().snapshot()["counters"])
"""

from .metrics import (
    DEFAULT_HISTOGRAM_WINDOW,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    get_metrics,
)
from .profiling import profile_to, timed
from .subscriber import MetricsSubscriber
from .tracing import (
    Span,
    Tracer,
    configure_tracing,
    get_tracer,
)

__all__ = [
    "DEFAULT_HISTOGRAM_WINDOW",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSubscriber",
    "Span",
    "Tracer",
    "configure_metrics",
    "configure_tracing",
    "get_metrics",
    "get_tracer",
    "profile_to",
    "timed",
]
