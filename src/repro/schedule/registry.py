"""Registry of named schedules and schedule families.

Mirrors the accelerator and workload registries: builtin specs register
lazily on first use, user code adds more with :func:`register_schedule`, and
spec strings resolve through :func:`resolve_schedule`.  Two kinds of entry
exist:

* **named schedules** — a fixed :class:`~repro.schedule.spec.ScheduleSpec`
  under its canonical name (``default``, ``hoisted``, ...);
* **schedule families** — parameterised generators addressed as
  ``<family>@<args>`` with a compact ``key<int>`` grammar, e.g.
  ``colmajor@tile64`` (column-major traversal over 64-wide column tiles) or
  ``unroll@u2`` (two repeat-dispatch groups per column).  ``<family>`` alone
  resolves the family's default point.

Resolution is total over ``None`` (the default schedule), canonical spec
strings, and :class:`ScheduleSpec` instances, so every schedule-taking API
accepts any of the three.  Unknown strings raise
:class:`~repro.errors.UnknownScheduleError` listing everything registered.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple, Union

from ..errors import ScheduleError, UnknownScheduleError
from .spec import DEFAULT_SCHEDULE, ScheduleSpec, schedule_fingerprint

#: Anything a schedule-taking API accepts.
ScheduleLike = Union[None, str, ScheduleSpec]

_COMPACT = re.compile(r"([a-z]+)(\d+)")


@dataclass(frozen=True)
class ScheduleFamily:
    """A parameterised schedule generator addressed as ``name@args``."""

    name: str
    grammar: str
    description: str
    resolver: Callable[[str], ScheduleSpec]

    def describe(self) -> Dict[str, str]:
        return {
            "family": self.name,
            "grammar": self.grammar,
            "description": self.description,
        }


_REGISTRY: Dict[str, ScheduleSpec] = {}
_FAMILIES: Dict[str, ScheduleFamily] = {}
_builtins_loaded = False


def _normalize_name(name: str) -> str:
    if not isinstance(name, str) or not name.strip():
        raise ScheduleError("schedule name must be a non-empty string")
    return name.strip().lower()


def _load_builtin_schedules() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from . import builtins as _  # noqa: F401  (registers on import)


def register_schedule(spec: ScheduleSpec) -> ScheduleSpec:
    """Register a named schedule; returns the spec for chaining.

    The spec's own ``name`` is the registry key.  Registering a duplicate
    name raises (use :func:`unregister_schedule` first to replace one).
    """
    _load_builtin_schedules()
    if not isinstance(spec, ScheduleSpec):
        raise ScheduleError(
            f"register_schedule expects a ScheduleSpec, got {type(spec).__name__}"
        )
    name = _normalize_name(spec.name)
    if name in _REGISTRY:
        raise ScheduleError(f"schedule '{name}' is already registered")
    if name.partition("@")[0] in _FAMILIES:
        raise ScheduleError(
            f"schedule '{name}' collides with the registered family "
            f"'{name.partition('@')[0]}'"
        )
    if name != spec.name:
        spec = replace(spec, name=name)
    _REGISTRY[name] = spec
    return spec


def register_schedule_family(
    name: str,
    resolver: Callable[[str], ScheduleSpec],
    *,
    grammar: str,
    description: str = "",
) -> ScheduleFamily:
    """Register a schedule family reachable as ``<name>@<args>``."""
    _load_builtin_schedules()
    name = _normalize_name(name)
    if "@" in name:
        raise ScheduleError(f"family name '{name}' must not contain '@'")
    if name in _FAMILIES:
        raise ScheduleError(f"schedule family '{name}' is already registered")
    if any(existing.partition("@")[0] == name for existing in _REGISTRY):
        raise ScheduleError(
            f"schedule family '{name}' collides with a registered schedule"
        )
    family = ScheduleFamily(
        name=name, grammar=grammar, description=description, resolver=resolver
    )
    _FAMILIES[name] = family
    return family


def unregister_schedule(name: str) -> None:
    """Remove a named schedule (primarily for tests)."""
    _load_builtin_schedules()
    _REGISTRY.pop(_normalize_name(name), None)


def schedule_names() -> Tuple[str, ...]:
    """Sorted names of every registered (named) schedule."""
    _load_builtin_schedules()
    return tuple(sorted(_REGISTRY))


def schedule_families() -> Tuple[str, ...]:
    """Sorted names of every registered schedule family."""
    _load_builtin_schedules()
    return tuple(sorted(_FAMILIES))


def get_schedule(name: str) -> ScheduleSpec:
    """Exact-name lookup of a registered schedule."""
    _load_builtin_schedules()
    key = _normalize_name(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownScheduleError(
            key, schedule_names(), schedule_families()
        ) from None


def get_schedule_family(name: str) -> ScheduleFamily:
    """Lookup of a registered schedule family."""
    _load_builtin_schedules()
    key = _normalize_name(name)
    try:
        return _FAMILIES[key]
    except KeyError:
        raise UnknownScheduleError(
            key, schedule_names(), schedule_families()
        ) from None


def resolve_schedule(spec: ScheduleLike) -> ScheduleSpec:
    """Resolve anything schedule-like to a concrete :class:`ScheduleSpec`.

    ``None`` resolves to the builtin default; a :class:`ScheduleSpec` passes
    through unchanged; a string resolves by registered name first, then as
    ``<family>@<args>``.
    """
    if spec is None:
        return DEFAULT_SCHEDULE
    if isinstance(spec, ScheduleSpec):
        return spec
    _load_builtin_schedules()
    name = _normalize_name(spec)
    entry = _REGISTRY.get(name)
    if entry is not None:
        return entry
    family_name, sep, args = name.partition("@")
    family = _FAMILIES.get(family_name)
    if family is None:
        raise UnknownScheduleError(name, schedule_names(), schedule_families())
    return family.resolver(args if sep else "")


def canonical_schedule_name(spec: ScheduleLike) -> str:
    """The canonical spec string of anything schedule-like."""
    return resolve_schedule(spec).name


def describe_schedule(spec: ScheduleLike) -> Dict[str, object]:
    """JSON-friendly description of one schedule (knobs + fingerprint)."""
    resolved = resolve_schedule(spec)
    return {
        "name": resolved.name,
        "description": resolved.description,
        "fingerprint": schedule_fingerprint(resolved),
        "knobs": resolved.knob_mapping(),
    }


def describe_schedules() -> Dict[str, object]:
    """JSON-friendly description of the whole registry (CLI ``list-schedules``)."""
    return {
        "schedules": [describe_schedule(name) for name in schedule_names()],
        "families": [
            _FAMILIES[name].describe() for name in schedule_families()
        ],
    }


# ----------------------------------------------------------------------
# Family-grammar helper (the compact ``key<int>`` run)
# ----------------------------------------------------------------------
def parse_compact_args(
    family: str, args: str, *, keys: Dict[str, str], defaults: Dict[str, int]
) -> Dict[str, int]:
    """Parse a compact ``key<int>`` run (``"tile64"``, ``"u2"``) to knobs.

    ``keys`` maps grammar keys to knob names; ``defaults`` (knob-name keyed)
    fills anything unspecified.  Empty ``args`` yields the defaults — the
    family's default point.
    """
    values = dict(defaults)
    position = 0
    text = args.strip()
    while position < len(text):
        match = _COMPACT.match(text, position)
        if not match:
            raise ScheduleError(
                f"schedule family '{family}': cannot parse args at "
                f"'{text[position:]}' (grammar: {family}@"
                + "".join(f"{k}<int>" for k in keys)
                + ")"
            )
        key, number = match.group(1), int(match.group(2))
        knob = keys.get(key)
        if knob is None:
            accepted = ", ".join(sorted(keys))
            raise ScheduleError(
                f"schedule family '{family}': unknown key '{key}' "
                f"(accepted keys: {accepted})"
            )
        values[knob] = number
        position = match.end()
    return values
