"""Searchable schedule layer: algorithm–schedule separation over the GANAX ISA.

See :mod:`repro.schedule.spec` for the knob semantics, ``README.md`` in this
directory for the spec grammar and authoring guide, and
:mod:`repro.schedule.verify` for the verify-then-simulate contract that gates
schedules entering a design-space search.
"""

from .registry import (
    ScheduleFamily,
    ScheduleLike,
    canonical_schedule_name,
    describe_schedule,
    describe_schedules,
    get_schedule,
    get_schedule_family,
    register_schedule,
    register_schedule_family,
    resolve_schedule,
    schedule_families,
    schedule_names,
    unregister_schedule,
)
from .spec import DEFAULT_SCHEDULE, ScheduleSpec, schedule_fingerprint
from .verify import (
    ScheduleFeasibility,
    clear_feasibility_cache,
    schedule_is_feasible,
    verify_schedule,
)

__all__ = [
    "DEFAULT_SCHEDULE",
    "ScheduleFamily",
    "ScheduleFeasibility",
    "ScheduleLike",
    "ScheduleSpec",
    "clear_feasibility_cache",
    "canonical_schedule_name",
    "describe_schedule",
    "describe_schedules",
    "get_schedule",
    "get_schedule_family",
    "register_schedule",
    "register_schedule_family",
    "resolve_schedule",
    "schedule_families",
    "schedule_fingerprint",
    "schedule_is_feasible",
    "schedule_names",
    "unregister_schedule",
    "verify_schedule",
]
