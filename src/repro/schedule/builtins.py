"""Builtin schedules and families (registered on first registry use).

``default`` is the reference point: it reproduces the pre-schedule-subsystem
lowering byte-identically.  The remaining builtins each move exactly one knob
so their effect is attributable in ablations and DSE sweeps.
"""

from __future__ import annotations

from .registry import parse_compact_args, register_schedule, register_schedule_family
from .spec import DEFAULT_SCHEDULE, ScheduleSpec

register_schedule(DEFAULT_SCHEDULE)

register_schedule(
    ScheduleSpec(
        name="hoisted",
        description=(
            "tuned: elides access-engine configuration and repeat-register "
            "writes whose target already holds the value (fewer uops, "
            "identical addresses)"
        ),
        hoist_invariant_cfg=True,
    )
)

register_schedule(
    ScheduleSpec(
        name="raster",
        description=(
            "output rows in ascending raster order across row groups (each "
            "row keeps its group's consequential filter rows)"
        ),
        row_order="raster",
    )
)

register_schedule(
    ScheduleSpec(
        name="blocked",
        description=(
            "each PV owns a contiguous block of row tasks; waves interleave "
            "the blocks so every wave still fills distinct PVs"
        ),
        pv_policy="blocked",
    )
)


def _resolve_colmajor(args: str) -> ScheduleSpec:
    knobs = parse_compact_args(
        "colmajor", args, keys={"tile": "column_tile"}, defaults={"column_tile": 64}
    )
    tile = knobs["column_tile"]
    return ScheduleSpec(
        name=f"colmajor@tile{tile}",
        description=(
            f"column-major traversal over {tile}-wide output-column tiles"
        ),
        column_tile=tile,
    )


register_schedule_family(
    "colmajor",
    _resolve_colmajor,
    grammar="colmajor@tile<int>",
    description="column-major output-column traversal over fixed-width tiles",
)


def _resolve_unroll(args: str) -> ScheduleSpec:
    knobs = parse_compact_args(
        "unroll", args, keys={"u": "repeat_unroll"}, defaults={"repeat_unroll": 2}
    )
    factor = knobs["repeat_unroll"]
    return ScheduleSpec(
        name=f"unroll@u{factor}",
        description=(
            f"splits each column's accumulation into {factor} repeat-dispatch "
            "groups before the final act"
        ),
        repeat_unroll=factor,
    )


register_schedule_family(
    "unroll",
    _resolve_unroll,
    grammar="unroll@u<int>",
    description="repeat-chain unrolling into multiple dispatch groups",
)
