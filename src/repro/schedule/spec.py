"""The :class:`ScheduleSpec`: a frozen description of *how* a layer is lowered.

GANAX separates the layer **algorithm** — which output rows exist, which
filter rows are consequential for each row phase, which kernel taps each
output column touches (:mod:`repro.core.dataflow`) — from the **schedule**:
the order and packaging in which that fixed work is lowered to the µop ISA.
A :class:`ScheduleSpec` captures the schedule half as a small set of knobs:

``row_order``
    Order in which output rows become :class:`~repro.core.compiler.RowTask`\\ s.
    ``"grouped"`` (default) walks the reorganized row groups phase by phase,
    exactly as the paper's output-row reorganization emits them; ``"raster"``
    walks output rows in ascending row index across groups (each row keeps
    its group's consequential filter rows — the algorithm is untouched).

``pv_policy``
    PV ↔ row-task mapping. ``"roundrobin"`` (default) assigns task *i* to PV
    ``i % num_pvs`` in planning order; ``"blocked"`` gives each PV a
    contiguous block of tasks (PV ``p`` owns tasks ``p*ceil(T/P) ..``) while
    interleaving the emission order so every wave still holds distinct PVs.

``column_order`` / ``column_tile``
    Traversal of the output-column window inside one row task.
    ``column_order`` is ``"ascending"`` (default) or ``"descending"``;
    ``column_tile`` of ``N > 0`` re-walks the (ordered) columns column-major
    over tiles of width ``N`` — column 0 of every tile first, then column 1,
    and so on (``0`` keeps the flat row-major walk).

``repeat_unroll``
    Number of dispatch groups each column's accumulation chain is split
    into.  The default ``1`` emits one ``repeat``/``mac`` pair per column;
    ``u > 1`` splits the ``taps`` repeat count into ``u`` balanced parts,
    each with its own ``mimd.ld`` + ``repeat`` + ``mac`` dispatch, before the
    single final ``act``.  Numerically exact because the PE accumulator
    persists across dispatches and only ``act`` commits and clears it.

``hoist_invariant_cfg``
    When true, the emitter tracks the access-engine configuration registers
    and the per-PV repeat register across the program and elides writes whose
    target already holds the value.  Legal because both the machine
    (:mod:`repro.core.access`) and the static verifier model configuration
    registers as persistent until rewritten; the resulting program computes
    the same addresses with strictly fewer µops.

The builtin ``default`` spec (all knobs at their defaults) reproduces the
pre-schedule-subsystem lowering **byte-identically** — pinned by the parity
suite and the FileCheck goldens.  Specs are frozen and hashable;
:func:`schedule_fingerprint` gives a stable content hash used by the runner's
cache keys and the layer memo.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields as dataclass_fields
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple, TypeVar

from ..errors import ScheduleError

_T = TypeVar("_T")

#: Accepted values per categorical knob (also drives validation messages).
ROW_ORDERS = ("grouped", "raster")
PV_POLICIES = ("roundrobin", "blocked")
COLUMN_ORDERS = ("ascending", "descending")

#: Sanity bound on ``repeat_unroll``: beyond this the per-column dispatch
#: stream dwarfs the compute it controls and no real schedule wants it.
MAX_REPEAT_UNROLL = 8

#: Sanity bound on ``column_tile`` (0 disables tiling).
MAX_COLUMN_TILE = 4096


@dataclass(frozen=True)
class ScheduleSpec:
    """A frozen, hashable schedule: every knob of the µop lowering.

    ``name`` is the canonical spec string (``"default"``,
    ``"colmajor@tile64"``, ...) under which the spec is registered or was
    resolved; it identifies the spec in CLI output, wire records and DSE
    point labels but does **not** enter :func:`schedule_fingerprint` — two
    names with identical knobs produce identical programs and share cache
    entries.
    """

    name: str
    description: str = ""
    row_order: str = "grouped"
    pv_policy: str = "roundrobin"
    column_order: str = "ascending"
    column_tile: int = 0
    repeat_unroll: int = 1
    hoist_invariant_cfg: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ScheduleError("schedule name must be a non-empty string")
        if self.row_order not in ROW_ORDERS:
            raise ScheduleError(
                f"schedule '{self.name}': row_order must be one of "
                f"{ROW_ORDERS}, got {self.row_order!r}"
            )
        if self.pv_policy not in PV_POLICIES:
            raise ScheduleError(
                f"schedule '{self.name}': pv_policy must be one of "
                f"{PV_POLICIES}, got {self.pv_policy!r}"
            )
        if self.column_order not in COLUMN_ORDERS:
            raise ScheduleError(
                f"schedule '{self.name}': column_order must be one of "
                f"{COLUMN_ORDERS}, got {self.column_order!r}"
            )
        if not isinstance(self.column_tile, int) or isinstance(self.column_tile, bool):
            raise ScheduleError(
                f"schedule '{self.name}': column_tile must be an integer"
            )
        if not 0 <= self.column_tile <= MAX_COLUMN_TILE:
            raise ScheduleError(
                f"schedule '{self.name}': column_tile must be in "
                f"[0, {MAX_COLUMN_TILE}], got {self.column_tile}"
            )
        if not isinstance(self.repeat_unroll, int) or isinstance(self.repeat_unroll, bool):
            raise ScheduleError(
                f"schedule '{self.name}': repeat_unroll must be an integer"
            )
        if not 1 <= self.repeat_unroll <= MAX_REPEAT_UNROLL:
            raise ScheduleError(
                f"schedule '{self.name}': repeat_unroll must be in "
                f"[1, {MAX_REPEAT_UNROLL}], got {self.repeat_unroll}"
            )
        if not isinstance(self.hoist_invariant_cfg, bool):
            raise ScheduleError(
                f"schedule '{self.name}': hoist_invariant_cfg must be a bool"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def knob_mapping(self) -> Dict[str, object]:
        """The behavioural knobs only — the input to the fingerprint."""
        skip = {"name", "description"}
        return {
            f.name: getattr(self, f.name)
            for f in dataclass_fields(self)
            if f.name not in skip
        }

    def to_mapping(self) -> Dict[str, object]:
        """Full serializable form (name + description + knobs)."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @property
    def is_default_lowering(self) -> bool:
        """True when every knob is at its default — the legacy lowering."""
        return (
            self.row_order == "grouped"
            and self.pv_policy == "roundrobin"
            and self.column_order == "ascending"
            and self.column_tile == 0
            and self.repeat_unroll == 1
            and not self.hoist_invariant_cfg
        )

    # ------------------------------------------------------------------
    # Planning-time application
    # ------------------------------------------------------------------
    def permute_columns(self, columns: Sequence[_T]) -> Tuple[_T, ...]:
        """Apply ``column_order`` and ``column_tile`` to one task's columns."""
        ordered: List[_T] = list(columns)
        if self.column_order == "descending":
            ordered.reverse()
        tile = self.column_tile
        if tile > 0 and len(ordered) > tile:
            ordered = [
                ordered[i]
                for phase in range(tile)
                for i in range(phase, len(ordered), tile)
            ]
        return tuple(ordered)

    def task_emission(self, count: int, num_pvs: int) -> Tuple[Tuple[int, int], ...]:
        """``(planned_index, pv_index)`` pairs in program-emission order.

        ``roundrobin`` keeps planning order and strides PVs; ``blocked``
        hands PV ``p`` the contiguous block of tasks ``[p*chunk, (p+1)*chunk)``
        and interleaves the emission so each wave still holds ``num_pvs``
        distinct PVs (the wave chunker splits on the first repeated PV).
        """
        if num_pvs <= 0:
            raise ScheduleError("num_pvs must be positive")
        if self.pv_policy == "roundrobin":
            return tuple((i, i % num_pvs) for i in range(count))
        chunk = -(-count // num_pvs) if count else 0  # ceil division
        order: List[Tuple[int, int]] = []
        for wave in range(chunk):
            for pv in range(num_pvs):
                index = pv * chunk + wave
                if index < count:
                    order.append((index, pv))
        return tuple(order)

    def split_repeat(self, taps: int) -> Tuple[int, ...]:
        """Split one column's ``taps`` repeat count into unroll parts.

        Balanced split, largest parts first, so part 0 is never empty for
        ``taps >= 1``; parts beyond ``taps`` come out zero and are skipped by
        the emitter.
        """
        parts = self.repeat_unroll
        base, remainder = divmod(taps, parts)
        return tuple(base + 1 if j < remainder else base for j in range(parts))

    # ------------------------------------------------------------------
    # Analytical-model hooks (pure integers: the vectorized and scalar
    # estimators apply them identically)
    # ------------------------------------------------------------------
    def dispatch_event_multiplier(self) -> int:
        """Scaling of MIMD dispatch events relative to the default schedule.

        Each unroll part re-dispatches the repeat/mac pair, so the dispatch
        stream scales with ``repeat_unroll``.
        """
        return max(1, self.repeat_unroll)

    def uop_fetches_per_event(self, num_pvs: int) -> int:
        """µop-buffer fetches per dispatch event (one global + local fans).

        Hoisting invariant configuration writes removes roughly half of the
        per-event configuration traffic on the grids the model covers, so the
        hoisted fan-out is credited at ``ceil(num_pvs / 2)`` local fetches.
        """
        if self.hoist_invariant_cfg:
            return 1 + (num_pvs + 1) // 2
        return 1 + num_pvs


def _canonical_json(data: object) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=1024)
def schedule_fingerprint(spec: ScheduleSpec) -> str:
    """Stable content hash of a spec's behavioural knobs.

    Name and description are excluded: two registered names with identical
    knobs lower every layer identically, so they may share cache entries
    (mirroring how ``canonical_options`` collapses ignored option values).
    """
    payload = _canonical_json(spec.knob_mapping())
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: The spec every other schedule is measured against: the legacy lowering.
DEFAULT_SCHEDULE = ScheduleSpec(
    name="default",
    description=(
        "the paper's lowering: grouped row order, round-robin PVs, ascending "
        "untiled columns, one repeat/mac pair per column"
    ),
)
