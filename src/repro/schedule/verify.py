"""Feasibility gate: verify a schedule's lowering before it is simulated.

The design-space explorer treats schedules as just another axis, but unlike a
geometry knob a schedule changes the *µop streams* the machine executes — a
buggy or ill-fitting spec could emit programs that overflow a local µop
buffer, dispatch to idle PVs, or leave an access engine unconfigured.  The
contract of the schedule subsystem is therefore **verify-then-simulate**:
every candidate schedule is compiled over pinned probe layers and run through
the static verifier (:func:`repro.staticcheck.verify_program`); only
schedules whose programs carry zero ERROR findings reach a simulator.

The probe pair exercises both lowering paths at small, geometry-independent
sizes:

* a stride-2 5×5 transposed convolution (three active filter rows per phase
  after the output-row reorganization — the paper's conv1-style shape), and
* a unit-stride 3×3 convolution (the dense row-stationary path).

Feasibility is cached per ``(schedule fingerprint, num_pvs, pes_per_pv)``:
the DSE sweeps (geometry × schedule) grids, and re-verifying an unchanged
spec for every repeated geometry point would dominate small searches.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from .registry import ScheduleLike, resolve_schedule
from .spec import ScheduleSpec, schedule_fingerprint


@dataclass(frozen=True)
class ScheduleFeasibility:
    """Outcome of one verify-then-simulate gate evaluation."""

    schedule: str
    num_pvs: int
    pes_per_pv: int
    feasible: bool
    reason: str = ""
    programs: int = 0
    findings: int = 0

    def __bool__(self) -> bool:
        return self.feasible


def _probe_bindings():
    """The pinned probe layers every candidate schedule must lower cleanly."""
    from ..nn.layers import ConvLayer, TransposedConvLayer
    from ..nn.network import Network
    from ..nn.shapes import FeatureMapShape

    network = Network(
        name="schedule-probe",
        input_shape=FeatureMapShape.image(4, 8, 8),
        layers=[
            TransposedConvLayer(
                name="tconv_probe", out_channels=4, kernel=5, stride=2, padding=2,
                output_padding=1,
            ),
            ConvLayer(name="conv_probe", out_channels=4, kernel=3, stride=1, padding=1),
        ],
    )
    return network.bindings


@lru_cache(maxsize=256)
def _verify_fingerprint(
    fingerprint: str, spec: ScheduleSpec, num_pvs: int, pes_per_pv: int
) -> ScheduleFeasibility:
    # Late imports: this module must stay importable from the registry layer,
    # which only depends on repro.errors; the compiler/staticcheck machinery
    # is pulled in only when a gate actually runs.
    from ..config import ArchitectureConfig
    from ..core.compiler import compile_layer_programs
    from ..errors import CompilationError, ConfigurationError
    from ..staticcheck.checks import verify_program
    from ..staticcheck.ir import MachineModel, Severity

    try:
        config = ArchitectureConfig(num_pvs=num_pvs, pes_per_pv=pes_per_pv)
    except ConfigurationError as exc:
        return ScheduleFeasibility(
            schedule=spec.name, num_pvs=num_pvs, pes_per_pv=pes_per_pv,
            feasible=False, reason=f"invalid geometry: {exc}",
        )
    programs_checked = 0
    error_findings = 0
    first_reason = ""
    for binding in _probe_bindings():
        for skip_zeros in (True, False):
            try:
                programs = compile_layer_programs(
                    binding,
                    num_pvs=num_pvs,
                    pes_per_pv=pes_per_pv,
                    skip_zeros=skip_zeros,
                    max_waves=1,
                    max_columns=4,
                    schedule=spec,
                )
            except CompilationError as exc:
                return ScheduleFeasibility(
                    schedule=spec.name, num_pvs=num_pvs, pes_per_pv=pes_per_pv,
                    feasible=False, programs=programs_checked,
                    reason=f"{binding.name} (skip_zeros={skip_zeros}): {exc}",
                )
            model = MachineModel.for_executor(
                config,
                num_pvs=num_pvs,
                pes_per_pv=pes_per_pv,
                output_columns=binding.output_shape.spatial[-1],
            )
            for program in programs:
                programs_checked += 1
                for finding in verify_program(program, model):
                    if finding.severity is Severity.ERROR:
                        error_findings += 1
                        if not first_reason:
                            first_reason = (
                                f"{binding.name} (skip_zeros={skip_zeros}): "
                                f"{finding.message}"
                            )
    return ScheduleFeasibility(
        schedule=spec.name,
        num_pvs=num_pvs,
        pes_per_pv=pes_per_pv,
        feasible=error_findings == 0,
        reason=first_reason,
        programs=programs_checked,
        findings=error_findings,
    )


def verify_schedule(
    schedule: ScheduleLike = None, *, num_pvs: int = 16, pes_per_pv: int = 16
) -> ScheduleFeasibility:
    """Gate one schedule at one geometry: compile probes, verify, report.

    Results are cached on the spec's knob *fingerprint* (not its name), so
    aliases of the same knobs — and repeated DSE evaluations — share one
    verification run per geometry.
    """
    spec = resolve_schedule(schedule)
    return _verify_fingerprint(
        schedule_fingerprint(spec), spec, int(num_pvs), int(pes_per_pv)
    )


def schedule_is_feasible(
    schedule: ScheduleLike = None, *, num_pvs: int = 16, pes_per_pv: int = 16
) -> bool:
    """True when :func:`verify_schedule` reports a clean lowering."""
    return verify_schedule(schedule, num_pvs=num_pvs, pes_per_pv=pes_per_pv).feasible


def clear_feasibility_cache() -> None:
    """Drop memoized gate results (tests re-register schedules under a name)."""
    _verify_fingerprint.cache_clear()
