"""Export experiment results and simulation results to JSON / CSV, plus
content fingerprints for the simulation cache.

Downstream users typically want the regenerated figure data in a form their
own plotting pipeline can ingest.  This module flattens the nested result
structures produced by the simulators and the experiment harness into rows and
writes them as CSV (stdlib ``csv``) or JSON, without adding any plotting
dependencies to the library.

It also defines the **canonical serialization** of the simulation inputs —
:class:`~repro.config.ArchitectureConfig`, :class:`~repro.config.
SimulationOptions` and the workload structure — and deterministic SHA-256
fingerprints over them (:func:`config_fingerprint`, :func:`options_fingerprint`,
:func:`workload_fingerprint`).  The runner subsystem
(:mod:`repro.runner`) keys its content-addressed result cache on these
fingerprints, so they must be stable across processes, field ordering and
Python versions.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Union

from ..config import ArchitectureConfig, SimulationOptions
from ..errors import AnalysisError
from ..nn.layers import LayerSpec
from ..nn.network import GANModel, LayerBinding, Network
from ..nn.shapes import FeatureMapShape
from ..schedule import resolve_schedule, schedule_fingerprint
from .results import ComparisonResult, GanResult, MultiComparison, NetworkResult

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Canonical serialization and content fingerprints
# ----------------------------------------------------------------------
def canonical_json(data: Any) -> str:
    """Serialize ``data`` as canonical JSON (sorted keys, no whitespace).

    Two structurally equal values produce byte-identical JSON regardless of
    insertion order, which is the property the cache fingerprints rely on.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def fingerprint_data(data: Any) -> str:
    """SHA-256 hex digest of the canonical JSON serialization of ``data``."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


@lru_cache(maxsize=1024)
def config_fingerprint(config: ArchitectureConfig) -> str:
    """Deterministic content hash of an :class:`ArchitectureConfig`.

    Stable across field ordering of the source mapping (the canonical
    serialization sorts keys) and across processes; changes whenever any
    configuration field — in particular every swept field reachable through
    ``with_updates`` — changes.  Memoized: configs are frozen dataclasses, so
    equal configs share one computed hash.
    """
    return fingerprint_data(config.to_mapping())


@lru_cache(maxsize=1024)
def options_fingerprint(options: SimulationOptions) -> str:
    """Deterministic content hash of a :class:`SimulationOptions` (memoized)."""
    return fingerprint_data(options.to_mapping())


def _network_structure(network: Network) -> Dict[str, Any]:
    return {
        "name": network.name,
        "input_shape": {
            "channels": network.input_shape.channels,
            "spatial": list(network.input_shape.spatial),
        },
        "layers": [
            {"kind": type(layer).__name__, **dataclasses.asdict(layer)}
            for layer in network.layers
        ],
    }


def workload_structure(model: GANModel) -> Dict[str, Any]:
    """JSON-friendly structural description of a GAN workload.

    Captures everything that influences a simulation result: the model name,
    the discriminator accounting rule, and both networks' layer stacks with
    their input shapes.
    """
    return {
        "name": model.name,
        "discriminator_conv_only": model.discriminator_conv_only,
        "generator": _network_structure(model.generator),
        "discriminator": _network_structure(model.discriminator),
    }


@lru_cache(maxsize=4096)
def _layer_structure_fingerprint(layer: LayerSpec, input_shape: FeatureMapShape) -> str:
    """Content hash of one layer's shape-relevant structure.

    Deliberately excludes the layer *name*: two layers with identical
    parameters and input shapes produce identical simulation activity, so the
    layer-grain memo shares one entry between them (the runner rewrites the
    name on a hit).  Memoized per (layer, input_shape) — both are frozen
    dataclasses, so repeated sweeps over the same network pay the JSON walk
    once.
    """
    structure = {"kind": type(layer).__name__, **dataclasses.asdict(layer)}
    structure.pop("name", None)
    structure["input_shape"] = {
        "channels": input_shape.channels,
        "spatial": list(input_shape.spatial),
    }
    return fingerprint_data(structure)


@lru_cache(maxsize=1024)
def _simulation_context_fingerprint(
    accelerator_name: str,
    accelerator_version: str,
    config: ArchitectureConfig,
    options: SimulationOptions,
) -> str:
    """Content hash of everything about a simulation *except* the layer.

    The schedule enters twice, deliberately: the canonical spec string rides
    in ``options.to_mapping()``, and the resolved spec's knob fingerprint is
    folded in explicitly so a re-registered schedule name with *different*
    knobs can never collide with results computed under the old knobs.
    """
    return fingerprint_data(
        {
            "accelerator": {"name": accelerator_name, "version": accelerator_version},
            "config": config.to_mapping(),
            "options": options.to_mapping(),
            "schedule": schedule_fingerprint(resolve_schedule(options.schedule)),
        }
    )


@lru_cache(maxsize=16384)
def layer_fingerprint(
    binding: LayerBinding,
    accelerator_name: str,
    accelerator_version: str,
    config: ArchitectureConfig,
    options: SimulationOptions,
) -> str:
    """Deterministic content hash identifying one layer-grain simulation.

    Combines the layer's structural fingerprint (parameters + input shape,
    name excluded) with the simulation context (accelerator identity and
    version, architecture configuration, canonicalized options).  Two bindings
    from *different* workloads that share a layer shape under the same context
    fingerprint identically — the property the runner's layer memo exploits.
    Callers must pass options already canonicalized for the accelerator
    (``spec.canonical_options``) so ignored option fields collapse.
    Memoized end-to-end (every argument is hashable), so warm layer-memo
    lookups pay a dict probe instead of a JSON walk and a SHA-256.
    """
    return fingerprint_data(
        {
            "layer": _layer_structure_fingerprint(binding.layer, binding.input_shape),
            "context": _simulation_context_fingerprint(
                accelerator_name, accelerator_version, config, options
            ),
        }
    )


@lru_cache(maxsize=256)
def workload_fingerprint(model: GANModel) -> str:
    """Deterministic content hash of a GAN workload's structure.

    Two models with the same layers and shapes fingerprint identically even
    if they are distinct Python objects, so cached results survive model
    rebuilds (and registry cache clears) across processes.  Memoized per
    model object (hashing a whole layer stack costs ~0.5 ms, which would
    otherwise dominate warm-cache sweeps).
    """
    return fingerprint_data(workload_structure(model))


# ----------------------------------------------------------------------
# Flattening helpers
# ----------------------------------------------------------------------
def flatten_mapping(data: Mapping, prefix: str = "", separator: str = ".") -> Dict[str, object]:
    """Flatten a nested mapping into dotted keys (lists are JSON-encoded)."""
    flat: Dict[str, object] = {}
    for key, value in data.items():
        full_key = f"{prefix}{separator}{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten_mapping(value, prefix=full_key, separator=separator))
        elif isinstance(value, (list, tuple)):
            flat[full_key] = json.dumps(list(value))
        else:
            flat[full_key] = value
    return flat


def network_result_rows(result: NetworkResult) -> List[Dict[str, object]]:
    """One row per layer of a simulated network."""
    rows: List[Dict[str, object]] = []
    for layer in result.layer_results:
        row: Dict[str, object] = {
            "network": result.network_name,
            "accelerator": result.accelerator,
            "layer": layer.layer_name,
            "is_transposed": layer.is_transposed,
            "cycles": layer.cycles,
            "macs_total": layer.macs_total,
            "macs_consequential": layer.macs_consequential,
            "pe_utilization": layer.pe_utilization,
            "energy_total_pj": layer.energy.total_pj,
        }
        for component, value in layer.energy.as_dict().items():
            row[f"energy_{component}_pj"] = value
        rows.append(row)
    return rows


def gan_result_rows(result: GanResult) -> List[Dict[str, object]]:
    """Layer rows for both networks of a simulated GAN."""
    rows = network_result_rows(result.generator)
    if result.discriminator is not None:
        rows.extend(network_result_rows(result.discriminator))
    for row in rows:
        row["model"] = result.model_name
    return rows


def comparison_rows(comparisons: Mapping[str, ComparisonResult]) -> List[Dict[str, object]]:
    """One summary row per GAN with the Figure 8 / Figure 11 quantities."""
    if not comparisons:
        raise AnalysisError("no comparisons to serialise")
    rows = []
    for name, comparison in comparisons.items():
        rows.append(
            {
                "model": name,
                "speedup": comparison.generator_speedup,
                "energy_reduction": comparison.generator_energy_reduction,
                "eyeriss_utilization": comparison.eyeriss_generator_utilization,
                "ganax_utilization": comparison.ganax_generator_utilization,
                "eyeriss_generator_cycles": comparison.eyeriss.generator.cycles,
                "ganax_generator_cycles": comparison.ganax.generator.cycles,
                "eyeriss_generator_energy_pj": comparison.eyeriss.generator.energy_pj,
                "ganax_generator_energy_pj": comparison.ganax.generator.energy_pj,
            }
        )
    return rows


def multi_comparison_rows(
    comparisons: Mapping[str, MultiComparison]
) -> List[Dict[str, object]]:
    """One row per (model, accelerator) with the baseline-relative metrics."""
    if not comparisons:
        raise AnalysisError("no comparisons to serialise")
    rows: List[Dict[str, object]] = []
    for name, comparison in comparisons.items():
        for accelerator in comparison.accelerators:
            result = comparison.result(accelerator)
            rows.append(
                {
                    "model": name,
                    "accelerator": accelerator,
                    "baseline": comparison.baseline,
                    "speedup": comparison.generator_speedup(accelerator),
                    "energy_reduction": comparison.generator_energy_reduction(
                        accelerator
                    ),
                    "pe_utilization": comparison.generator_utilization(accelerator),
                    "generator_cycles": result.generator.cycles,
                    "generator_energy_pj": result.generator.energy_pj,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------
def write_csv(rows: Sequence[Mapping[str, object]], path: PathLike) -> Path:
    """Write a list of flat row mappings as CSV; returns the written path."""
    rows = list(rows)
    if not rows:
        raise AnalysisError("cannot write an empty row set")
    path = Path(path)
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def write_json(data: Mapping, path: PathLike, indent: int = 2) -> Path:
    """Write a nested mapping as JSON; returns the written path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=indent, sort_keys=True)
    return path


def read_csv(path: PathLike) -> List[Dict[str, str]]:
    """Read back a CSV written by :func:`write_csv` (values are strings)."""
    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"CSV file {path} does not exist")
    with path.open("r", newline="", encoding="utf-8") as handle:
        return [dict(row) for row in csv.DictReader(handle)]


def export_comparisons(
    comparisons: Mapping[str, ComparisonResult],
    directory: PathLike,
    prefix: str = "ganax",
) -> Dict[str, Path]:
    """Export a full comparison set: summary CSV plus per-layer CSVs.

    Returns a mapping of artefact name to written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    written["summary"] = write_csv(
        comparison_rows(comparisons), directory / f"{prefix}_summary.csv"
    )
    layer_rows: List[Dict[str, object]] = []
    for comparison in comparisons.values():
        layer_rows.extend(gan_result_rows(comparison.eyeriss))
        layer_rows.extend(gan_result_rows(comparison.ganax))
    written["layers"] = write_csv(layer_rows, directory / f"{prefix}_layers.csv")
    return written
