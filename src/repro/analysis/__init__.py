"""Result containers, metrics, breakdowns, reports and sweeps."""

from .breakdown import (
    FIGURE9_SEGMENTS,
    average_breakdown,
    energy_breakdown,
    runtime_breakdown,
    stacked_rows,
    unit_energy_breakdown,
)
from .metrics import (
    arithmetic_mean,
    fraction_summary,
    geometric_mean,
    normalize,
    percent,
    ratio_summary,
    reduction,
    speedup,
    utilization,
)
from .report import (
    bullet_list,
    format_fraction_series,
    format_key_values,
    format_ratio_series,
    format_stacked_breakdown,
    format_table,
)
from .charts import fraction_chart, horizontal_bar_chart, ratio_chart, stacked_chart
from .results import ComparisonResult, GanResult, LayerResult, NetworkResult
from .serialization import export_comparisons, read_csv, write_csv, write_json
from .sweep import ParameterSweep, SweepPoint, compare_model, compare_models

__all__ = [
    "FIGURE9_SEGMENTS",
    "average_breakdown",
    "energy_breakdown",
    "runtime_breakdown",
    "stacked_rows",
    "unit_energy_breakdown",
    "arithmetic_mean",
    "fraction_summary",
    "geometric_mean",
    "normalize",
    "percent",
    "ratio_summary",
    "reduction",
    "speedup",
    "utilization",
    "bullet_list",
    "format_fraction_series",
    "format_key_values",
    "format_ratio_series",
    "format_stacked_breakdown",
    "format_table",
    "fraction_chart",
    "horizontal_bar_chart",
    "ratio_chart",
    "stacked_chart",
    "ComparisonResult",
    "GanResult",
    "LayerResult",
    "NetworkResult",
    "export_comparisons",
    "read_csv",
    "write_csv",
    "write_json",
    "ParameterSweep",
    "SweepPoint",
    "compare_model",
    "compare_models",
]
