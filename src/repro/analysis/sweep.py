"""Parameter-sweep utilities for ablation studies.

The ablation benchmarks sweep architectural parameters (DRAM bandwidth, PE
array shape, zero-gating energy, MIMD dispatch overhead) and dataflow choices
(output-row reorganization on/off, filter-row reorganization on/off) and ask
how the headline metrics move.  :class:`ParameterSweep` runs a comparison for
every parameter value and collects the per-model speedup / energy-reduction
series in a structure the report renderer understands.

All simulation work routes through a :class:`~repro.runner.SimulationRunner`:
a sweep submits its entire (config x model x accelerator) grid as **one
batch**, so identical jobs deduplicate, cached results are reused across
sweeps and experiments, and a parallel backend fans out over the whole grid.
The module-level :func:`compare_model` / :func:`compare_models` helpers (the
legacy EYERISS-vs-GANAX pair) and :func:`compare_accelerators` (N-way over
any registered accelerators) use the process-wide default runner unless one
is passed explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from ..config import ArchitectureConfig, SimulationOptions
from ..errors import AnalysisError
from ..nn.network import GANModel
from ..runner import COMPARISON_PAIR, SimulationRunner, get_default_runner
from .metrics import geometric_mean
from .results import ComparisonResult, MultiComparison


def build_labelled_configs(
    parameter: str,
    values: Sequence[Any],
    base_config: ArchitectureConfig,
    label_format: str = "{parameter}={value}",
) -> Dict[str, ArchitectureConfig]:
    """Label -> config for a sweep over one configuration field.

    Shared by :meth:`ParameterSweep.run` and :meth:`repro.Session.sweep`;
    rejects empty value lists and label formats that collapse distinct
    values onto one label.
    """
    if not values:
        raise AnalysisError("a sweep needs at least one parameter value")
    labelled_configs = {
        label_format.format(parameter=parameter, value=value):
            base_config.with_updates(**{parameter: value})
        for value in values
    }
    if len(labelled_configs) != len(values):
        raise AnalysisError(
            f"sweep over '{parameter}' produced duplicate labels; "
            "use a label_format that distinguishes the values"
        )
    return labelled_configs


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    label: str
    config: ArchitectureConfig
    speedups: Dict[str, float]
    energy_reductions: Dict[str, float]

    @property
    def geomean_speedup(self) -> float:
        return geometric_mean(list(self.speedups.values()))

    @property
    def geomean_energy_reduction(self) -> float:
        return geometric_mean(list(self.energy_reductions.values()))

    @classmethod
    def from_comparisons(
        cls,
        label: str,
        config: ArchitectureConfig,
        comparisons: Mapping[str, ComparisonResult],
    ) -> "SweepPoint":
        """Build a point from one config's per-model comparison results."""
        return cls(
            label=label,
            config=config,
            speedups={
                name: c.generator_speedup for name, c in comparisons.items()
            },
            energy_reductions={
                name: c.generator_energy_reduction
                for name, c in comparisons.items()
            },
        )


def compare_model(
    model: GANModel,
    config: Optional[ArchitectureConfig] = None,
    options: Optional[SimulationOptions] = None,
    runner: Optional[SimulationRunner] = None,
) -> ComparisonResult:
    """Run one GAN on both accelerators with a shared configuration."""
    runner = runner or get_default_runner()
    return runner.compare_model(model, config, options)


def compare_models(
    models: Sequence[GANModel],
    config: Optional[ArchitectureConfig] = None,
    options: Optional[SimulationOptions] = None,
    runner: Optional[SimulationRunner] = None,
) -> Dict[str, ComparisonResult]:
    """Run every GAN on both accelerators; returns name -> comparison."""
    if not models:
        raise AnalysisError("no models provided")
    runner = runner or get_default_runner()
    return runner.compare_models(models, config, options)


def compare_accelerators(
    models: Sequence[GANModel],
    accelerators: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
    config: Optional[ArchitectureConfig] = None,
    options: Optional[SimulationOptions] = None,
    runner: Optional[SimulationRunner] = None,
) -> Dict[str, MultiComparison]:
    """Run every GAN on every named registered accelerator (N-way).

    The N-way counterpart of :func:`compare_models`: returns
    ``{model_name: MultiComparison}`` against the declared ``baseline``
    (``"eyeriss"`` when present).  :class:`repro.Session` is the stateful
    facade over this entry point.
    """
    if not models:
        raise AnalysisError("no models provided")
    runner = runner or get_default_runner()
    return runner.compare_accelerators(models, accelerators, baseline, config, options)


class ParameterSweep:
    """Sweep one architectural parameter over a set of values."""

    def __init__(
        self,
        models: Sequence[GANModel],
        base_config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
        runner: Optional[SimulationRunner] = None,
    ) -> None:
        if not models:
            raise AnalysisError("a sweep needs at least one model")
        self._models = list(models)
        self._base_config = base_config or ArchitectureConfig.paper_default()
        self._options = options
        self._runner = runner

    def run(
        self,
        parameter: str,
        values: Sequence[Any],
        label_format: str = "{parameter}={value}",
    ) -> List[SweepPoint]:
        """Run the sweep over ``values`` of the named configuration field."""
        return self._build_points(
            build_labelled_configs(parameter, values, self._base_config, label_format)
        )

    def run_configs(
        self, labelled_configs: Mapping[str, ArchitectureConfig]
    ) -> List[SweepPoint]:
        """Run the sweep over explicit, pre-built configurations."""
        if not labelled_configs:
            raise AnalysisError("a sweep needs at least one configuration")
        return self._build_points(labelled_configs)

    def iter_points(
        self,
        parameter: str,
        values: Sequence[Any],
        label_format: str = "{parameter}={value}",
    ) -> Iterator[SweepPoint]:
        """Yield each :class:`SweepPoint` as soon as its config completes.

        The streaming counterpart of :meth:`run`: the whole grid still joins
        one runner submission (same deduplication, same cache entries), but
        a sweep point is yielded the moment every model of *its* configuration
        has finished, instead of after the slowest point of the whole sweep.
        Points arrive in completion order — equal to value order with the
        serial backend — and abandoning the iterator cancels unstarted jobs.
        """
        yield from self.iter_configs(
            build_labelled_configs(parameter, values, self._base_config, label_format)
        )

    def iter_configs(
        self, labelled_configs: Mapping[str, ArchitectureConfig]
    ) -> Iterator[SweepPoint]:
        """Streaming counterpart of :meth:`run_configs`; see :meth:`iter_points`."""
        if not labelled_configs:
            raise AnalysisError("a sweep needs at least one configuration")
        runner = self._runner or get_default_runner()
        # Unique names: the stream collapses equivalent workload spellings
        # (e.g. "DCGAN" and "dcgan@64x64") to one group, exactly as the
        # batch path's per-name comparison dict does.
        expected = list(dict.fromkeys(model.name for model in self._models))
        pending: Dict[str, Dict[str, ComparisonResult]] = {}
        for label, model_name, multi in runner.stream_accelerators_over_configs(
            self._models,
            labelled_configs,
            COMPARISON_PAIR,
            baseline="eyeriss",
            options=self._options,
        ):
            per_label = pending.setdefault(label, {})
            per_label[model_name] = multi.as_comparison()
            if len(per_label) == len(expected):
                yield SweepPoint.from_comparisons(
                    label,
                    labelled_configs[label],
                    {name: per_label.pop(name) for name in expected},
                )

    def _build_points(
        self, labelled_configs: Mapping[str, ArchitectureConfig]
    ) -> List[SweepPoint]:
        """Submit the whole grid as one batch and assemble sweep points."""
        runner = self._runner or get_default_runner()
        grid = runner.compare_models_over_configs(
            self._models, labelled_configs, self._options
        )
        return [
            SweepPoint.from_comparisons(label, config, grid[label])
            for label, config in labelled_configs.items()
        ]
