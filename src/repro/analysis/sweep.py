"""Parameter-sweep utilities for ablation studies.

The ablation benchmarks sweep architectural parameters (DRAM bandwidth, PE
array shape, zero-gating energy, MIMD dispatch overhead) and dataflow choices
(output-row reorganization on/off, filter-row reorganization on/off) and ask
how the headline metrics move.  :class:`ParameterSweep` runs a comparison for
every parameter value and collects the per-model speedup / energy-reduction
series in a structure the report renderer understands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..baseline.simulator import EyerissSimulator
from ..config import ArchitectureConfig, SimulationOptions
from ..core.simulator import GanaxSimulator
from ..errors import AnalysisError
from ..nn.network import GANModel
from .metrics import geometric_mean
from .results import ComparisonResult


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    label: str
    config: ArchitectureConfig
    speedups: Dict[str, float]
    energy_reductions: Dict[str, float]

    @property
    def geomean_speedup(self) -> float:
        return geometric_mean(list(self.speedups.values()))

    @property
    def geomean_energy_reduction(self) -> float:
        return geometric_mean(list(self.energy_reductions.values()))


def compare_model(
    model: GANModel,
    config: Optional[ArchitectureConfig] = None,
    options: Optional[SimulationOptions] = None,
) -> ComparisonResult:
    """Run one GAN on both accelerators with a shared configuration."""
    config = config or ArchitectureConfig.paper_default()
    eyeriss = EyerissSimulator(config=config, options=options)
    ganax = GanaxSimulator(config=config, options=options)
    return ComparisonResult(
        model_name=model.name,
        eyeriss=eyeriss.simulate_gan(model),
        ganax=ganax.simulate_gan(model),
    )


def compare_models(
    models: Sequence[GANModel],
    config: Optional[ArchitectureConfig] = None,
    options: Optional[SimulationOptions] = None,
) -> Dict[str, ComparisonResult]:
    """Run every GAN on both accelerators; returns name -> comparison."""
    if not models:
        raise AnalysisError("no models provided")
    return {model.name: compare_model(model, config, options) for model in models}


class ParameterSweep:
    """Sweep one architectural parameter over a set of values."""

    def __init__(
        self,
        models: Sequence[GANModel],
        base_config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        if not models:
            raise AnalysisError("a sweep needs at least one model")
        self._models = list(models)
        self._base_config = base_config or ArchitectureConfig.paper_default()
        self._options = options

    def run(
        self,
        parameter: str,
        values: Sequence[Any],
        label_format: str = "{parameter}={value}",
    ) -> List[SweepPoint]:
        """Run the sweep over ``values`` of the named configuration field."""
        if not values:
            raise AnalysisError("a sweep needs at least one parameter value")
        points: List[SweepPoint] = []
        for value in values:
            config = self._base_config.with_updates(**{parameter: value})
            comparisons = compare_models(self._models, config, self._options)
            points.append(
                SweepPoint(
                    label=label_format.format(parameter=parameter, value=value),
                    config=config,
                    speedups={
                        name: c.generator_speedup for name, c in comparisons.items()
                    },
                    energy_reductions={
                        name: c.generator_energy_reduction
                        for name, c in comparisons.items()
                    },
                )
            )
        return points

    def run_configs(
        self, labelled_configs: Mapping[str, ArchitectureConfig]
    ) -> List[SweepPoint]:
        """Run the sweep over explicit, pre-built configurations."""
        if not labelled_configs:
            raise AnalysisError("a sweep needs at least one configuration")
        points: List[SweepPoint] = []
        for label, config in labelled_configs.items():
            comparisons = compare_models(self._models, config, self._options)
            points.append(
                SweepPoint(
                    label=label,
                    config=config,
                    speedups={
                        name: c.generator_speedup for name, c in comparisons.items()
                    },
                    energy_reductions={
                        name: c.generator_energy_reduction
                        for name, c in comparisons.items()
                    },
                )
            )
        return points
