"""Breakdown helpers for Figures 9 and 10.

Figure 9 splits each GAN's runtime and energy between the discriminative and
generative models, normalised to the EYERISS total; Figure 10 splits the
generative models' energy between the microarchitectural units (PE, register
file, NoC, global buffer, DRAM), again normalised to EYERISS.  The helpers
here turn :class:`~repro.analysis.results.ComparisonResult` objects into the
plain nested dictionaries the report renderer and the benchmarks print.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..errors import AnalysisError
from ..hw.energy import ENERGY_COMPONENTS
from .results import ComparisonResult

#: Ordering of the stacked-bar segments in Figure 9.
FIGURE9_SEGMENTS = ("discriminative", "generative")


def runtime_breakdown(comparison: ComparisonResult) -> Dict[str, Dict[str, float]]:
    """Figure 9(a) rows for one GAN: normalised runtime per accelerator."""
    return comparison.normalized_runtime()


def energy_breakdown(comparison: ComparisonResult) -> Dict[str, Dict[str, float]]:
    """Figure 9(b) rows for one GAN: normalised energy per accelerator."""
    return comparison.normalized_energy()


def unit_energy_breakdown(comparison: ComparisonResult) -> Dict[str, Dict[str, float]]:
    """Figure 10 rows for one GAN: per-unit generator energy, normalised."""
    return comparison.normalized_unit_energy()


def average_breakdown(
    per_model: Mapping[str, Mapping[str, Mapping[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Arithmetic average of per-model breakdowns (the figures' Average bars).

    ``per_model`` maps model name -> accelerator -> segment -> value.
    """
    if not per_model:
        raise AnalysisError("no per-model breakdowns provided")
    accumulator: Dict[str, Dict[str, float]] = {}
    count = len(per_model)
    for breakdown in per_model.values():
        for accelerator, segments in breakdown.items():
            acc = accumulator.setdefault(accelerator, {})
            for segment, value in segments.items():
                acc[segment] = acc.get(segment, 0.0) + value
    return {
        accelerator: {segment: value / count for segment, value in segments.items()}
        for accelerator, segments in accumulator.items()
    }


def total_of(breakdown: Mapping[str, float]) -> float:
    """Sum of all segments of one stacked bar."""
    return sum(breakdown.values())


def check_components(breakdown: Mapping[str, float]) -> None:
    """Validate that a unit-energy breakdown uses the Figure 10 components."""
    unknown = set(breakdown) - set(ENERGY_COMPONENTS)
    if unknown:
        raise AnalysisError(f"unknown energy components: {sorted(unknown)}")


def stacked_rows(
    per_model: Mapping[str, Mapping[str, Mapping[str, float]]],
    segments: Sequence[str],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Restrict breakdowns to the requested segments, preserving order.

    Raises when a segment is missing so that report tables never silently
    drop a bar segment.
    """
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model, breakdown in per_model.items():
        rows[model] = {}
        for accelerator, values in breakdown.items():
            missing = [s for s in segments if s not in values]
            if missing:
                raise AnalysisError(
                    f"{model}/{accelerator}: missing breakdown segments {missing}"
                )
            rows[model][accelerator] = {s: values[s] for s in segments}
    return rows
