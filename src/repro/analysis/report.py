"""Plain-text rendering of tables and figure data.

The experiments produce dictionaries; this module renders them as aligned
ASCII tables so the benchmark harness and the CLI can print the same rows and
series the paper's tables and figures report.  Rendering is deliberately
dependency-free (no plotting) because the reproduction targets textual
regeneration of every table/figure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import AnalysisError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    if not headers:
        raise AnalysisError("a table needs at least one column")
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        rendered_rows.append([_format_cell(cell, float_format) for cell in row])

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object, float_format: str) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def format_ratio_series(
    title: str,
    per_model: Mapping[str, float],
    unit: str = "x",
    reference: Optional[Mapping[str, float]] = None,
    reference_label: str = "paper",
) -> str:
    """Render a per-model ratio series (Figure 8 style) as a table."""
    headers = ["Model", f"Measured ({unit})"]
    if reference is not None:
        headers.append(f"{reference_label.capitalize()} ({unit})")
    rows = []
    for model, value in per_model.items():
        row: List[object] = [model, value]
        if reference is not None:
            row.append(reference.get(model, float("nan")))
        rows.append(row)
    return format_table(headers, rows, title=title, float_format="{:.2f}")


def format_fraction_series(
    title: str,
    per_model: Mapping[str, float],
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a per-model fraction series (Figure 1 / 11 style) as a table."""
    headers = ["Model", "Measured (%)"]
    if reference is not None:
        headers.append("Paper (%)")
    rows = []
    for model, value in per_model.items():
        row: List[object] = [model, 100.0 * value]
        if reference is not None:
            ref = reference.get(model)
            row.append(100.0 * ref if ref is not None else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title, float_format="{:.1f}")


def format_stacked_breakdown(
    title: str,
    per_model: Mapping[str, Mapping[str, Mapping[str, float]]],
    segments: Sequence[str],
) -> str:
    """Render Figure 9/10-style stacked bars as a table.

    Each model contributes one row per accelerator with one column per
    segment plus a total column, all normalised to the EYERISS total (1.0).
    """
    headers = ["Model", "Accelerator", *[s.capitalize() for s in segments], "Total"]
    rows: List[List[object]] = []
    for model, breakdown in per_model.items():
        for accelerator, values in breakdown.items():
            missing = [s for s in segments if s not in values]
            if missing:
                raise AnalysisError(
                    f"{model}/{accelerator}: missing segments {missing}"
                )
            segment_values = [values[s] for s in segments]
            rows.append([model, accelerator, *segment_values, sum(segment_values)])
    return format_table(headers, rows, title=title, float_format="{:.3f}")


def format_frontier(
    title: str,
    points: Sequence[Mapping[str, object]],
    objectives: Sequence[Sequence[str]],
) -> str:
    """Render a design-space exploration's Pareto partition as a table.

    ``points`` rows are ``{"label", "objectives": {name: value}, "on_frontier"}``
    (already ordered — frontier first); ``objectives`` pairs each objective
    name with its sense (``"max"``/``"min"``), which becomes the column
    header's direction arrow.
    """
    if not objectives:
        raise AnalysisError("a frontier table needs at least one objective")
    headers = [
        "Design point",
        *[
            f"{name} ({'^' if sense == 'max' else 'v'})"
            for name, sense in objectives
        ],
        "Pareto",
    ]
    rows: List[List[object]] = []
    for entry in points:
        values = entry["objectives"]
        missing = [name for name, _ in objectives if name not in values]
        if missing:
            raise AnalysisError(
                f"{entry.get('label', '?')}: missing objective values {missing}"
            )
        rows.append(
            [
                entry["label"],
                *[values[name] for name, _ in objectives],
                "frontier" if entry.get("on_frontier") else "dominated",
            ]
        )
    return format_table(headers, rows, title=title, float_format="{:.4g}")


def format_key_values(title: str, values: Mapping[str, object]) -> str:
    """Render a flat mapping as a two-column table."""
    return format_table(["Quantity", "Value"], list(values.items()), title=title)


def bullet_list(items: Iterable[str]) -> str:
    """Render a simple bulleted list (used by the CLI summaries)."""
    return "\n".join(f"  - {item}" for item in items)
