"""Result containers shared by every registered accelerator model.

Each accelerator model (see :mod:`repro.accelerators`) produces, per layer, a
:class:`LayerResult` holding the cycle count, activity counters and energy
breakdown; whole-network results aggregate them into a :class:`NetworkResult`
and whole-GAN runs into a :class:`GanResult` with separate generator /
discriminator sections, which is the granularity the paper's Figures 8-11
report at.  Comparisons across accelerators come in two shapes:
:class:`MultiComparison` holds one model's results over any set of registered
accelerators against a declared baseline, and :class:`ComparisonResult` is the
legacy two-way ``("eyeriss", "ganax")`` special case the paper's figures are
phrased in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..errors import AnalysisError
from ..hw.counters import EventCounters
from ..hw.energy import EnergyBreakdown


@dataclass(frozen=True)
class LayerResult:
    """Simulation result for one layer on one accelerator.

    Attributes
    ----------
    layer_name:
        Name of the layer within its network.
    accelerator:
        Name of the accelerator model that produced this result — any entry
        of the :mod:`repro.accelerators` registry.
    cycles:
        Modelled execution cycles for the layer.
    active_pe_cycles:
        PE-cycles spent on consequential operations.
    busy_pe_cycles:
        PE-cycles during which a PE was occupied (consequential work, gated
        zero work, or accumulation); used for utilization accounting.
    total_pe_cycles:
        ``cycles * num_pes`` — the denominator of PE utilization.
    macs_total / macs_consequential:
        Dense and consequential MAC counts of the layer.
    counters:
        Raw activity counters feeding the energy model.
    energy:
        Energy breakdown in picojoules.
    is_transposed / is_convolutional:
        Layer classification flags copied from the binding for reporting.
    """

    layer_name: str
    accelerator: str
    cycles: int
    active_pe_cycles: int
    busy_pe_cycles: int
    total_pe_cycles: int
    macs_total: int
    macs_consequential: int
    counters: EventCounters
    energy: EnergyBreakdown
    is_transposed: bool = False
    is_convolutional: bool = False

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise AnalysisError(f"{self.layer_name}: cycles cannot be negative")
        if self.total_pe_cycles < 0:
            raise AnalysisError(f"{self.layer_name}: total PE-cycles cannot be negative")

    @property
    def pe_utilization(self) -> float:
        """Fraction of PE-cycles doing consequential work (Figure 11)."""
        if self.total_pe_cycles == 0:
            return 0.0
        return min(1.0, self.active_pe_cycles / self.total_pe_cycles)

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def seconds(self) -> float:
        """Placeholder: converted by callers that know the clock frequency."""
        raise AnalysisError(
            "LayerResult does not know the clock; use ArchitectureConfig.cycles_to_seconds"
        )


@dataclass(frozen=True)
class NetworkResult:
    """Aggregated result of running one network (generator or discriminator)."""

    network_name: str
    accelerator: str
    layer_results: Tuple[LayerResult, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "layer_results", tuple(self.layer_results))

    @property
    def cycles(self) -> int:
        return sum(r.cycles for r in self.layer_results)

    @property
    def energy(self) -> EnergyBreakdown:
        return EnergyBreakdown.sum(r.energy for r in self.layer_results)

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def macs_total(self) -> int:
        return sum(r.macs_total for r in self.layer_results)

    @property
    def macs_consequential(self) -> int:
        return sum(r.macs_consequential for r in self.layer_results)

    @property
    def counters(self) -> EventCounters:
        total = EventCounters()
        for r in self.layer_results:
            total.add(r.counters)
        return total

    @property
    def pe_utilization(self) -> float:
        """Cycle-weighted PE utilization across the network's layers."""
        total = sum(r.total_pe_cycles for r in self.layer_results)
        if total == 0:
            return 0.0
        active = sum(r.active_pe_cycles for r in self.layer_results)
        return min(1.0, active / total)

    def layer(self, name: str) -> LayerResult:
        for result in self.layer_results:
            if result.layer_name == name:
                return result
        raise AnalysisError(f"no layer result named '{name}' in {self.network_name}")

    def transposed_results(self) -> Tuple[LayerResult, ...]:
        return tuple(r for r in self.layer_results if r.is_transposed)


@dataclass(frozen=True)
class GanResult:
    """Result of running a full GAN (generator + discriminator) on one accelerator."""

    model_name: str
    accelerator: str
    generator: NetworkResult
    discriminator: Optional[NetworkResult] = None

    @property
    def total_cycles(self) -> int:
        cycles = self.generator.cycles
        if self.discriminator is not None:
            cycles += self.discriminator.cycles
        return cycles

    @property
    def total_energy(self) -> EnergyBreakdown:
        energy = self.generator.energy
        if self.discriminator is not None:
            energy = energy + self.discriminator.energy
        return energy

    @property
    def total_energy_pj(self) -> float:
        return self.total_energy.total_pj

    def runtime_split(self) -> Dict[str, int]:
        """Cycles attributed to the generative and discriminative models."""
        return {
            "generative": self.generator.cycles,
            "discriminative": self.discriminator.cycles if self.discriminator else 0,
        }

    def energy_split(self) -> Dict[str, float]:
        """Energy attributed to the generative and discriminative models (pJ)."""
        return {
            "generative": self.generator.energy_pj,
            "discriminative": self.discriminator.energy_pj if self.discriminator else 0.0,
        }


@dataclass(frozen=True)
class MultiComparison:
    """One GAN model's results across N accelerators against a baseline.

    Attributes
    ----------
    model_name:
        The compared GAN workload.
    baseline:
        Accelerator name every speedup / energy-reduction ratio is taken
        against; must have a result in ``results``.
    results:
        Ordered mapping of accelerator name to that accelerator's
        :class:`GanResult` for the model.
    """

    model_name: str
    baseline: str
    results: Mapping[str, GanResult]

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", dict(self.results))
        if not self.results:
            raise AnalysisError(
                f"{self.model_name}: a comparison needs at least one result"
            )
        if self.baseline not in self.results:
            raise AnalysisError(
                f"{self.model_name}: baseline '{self.baseline}' has no result; "
                f"have: {', '.join(self.results)}"
            )
        for name, result in self.results.items():
            if result.accelerator != name:
                raise AnalysisError(
                    f"{self.model_name}: result under key '{name}' was "
                    f"produced by accelerator '{result.accelerator}'"
                )
            if result.model_name != self.model_name:
                raise AnalysisError(
                    f"comparison of '{self.model_name}' received a result "
                    f"for '{result.model_name}'"
                )

    @property
    def accelerators(self) -> Tuple[str, ...]:
        """Compared accelerator names, in submission order."""
        return tuple(self.results)

    @property
    def baseline_result(self) -> GanResult:
        return self.results[self.baseline]

    def result(self, accelerator: str) -> GanResult:
        """The named accelerator's result for this model."""
        try:
            return self.results[accelerator]
        except KeyError:
            raise AnalysisError(
                f"{self.model_name}: no result for accelerator "
                f"'{accelerator}'; have: {', '.join(self.results)}"
            ) from None

    # -- pairwise metrics against the declared baseline ---------------------
    def generator_speedup(self, accelerator: str) -> float:
        """Generator speedup of ``accelerator`` over the baseline."""
        cycles = self.result(accelerator).generator.cycles
        if cycles == 0:
            raise AnalysisError(
                f"{self.model_name}: {accelerator} generator cycles are zero"
            )
        return self.baseline_result.generator.cycles / cycles

    def generator_energy_reduction(self, accelerator: str) -> float:
        """Generator energy reduction of ``accelerator`` over the baseline."""
        energy = self.result(accelerator).generator.energy_pj
        if energy == 0:
            raise AnalysisError(
                f"{self.model_name}: {accelerator} generator energy is zero"
            )
        return self.baseline_result.generator.energy_pj / energy

    def generator_utilization(self, accelerator: str) -> float:
        return self.result(accelerator).generator.pe_utilization

    def generator_speedups(self) -> Dict[str, float]:
        """Speedup over the baseline per accelerator (baseline maps to 1.0)."""
        return {name: self.generator_speedup(name) for name in self.results}

    def generator_energy_reductions(self) -> Dict[str, float]:
        """Energy reduction over the baseline per accelerator."""
        return {
            name: self.generator_energy_reduction(name) for name in self.results
        }

    def summary(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly per-accelerator headline metrics."""
        return {
            name: {
                "speedup": self.generator_speedup(name),
                "energy_reduction": self.generator_energy_reduction(name),
                "pe_utilization": self.generator_utilization(name),
                "generator_cycles": self.result(name).generator.cycles,
                "generator_energy_pj": self.result(name).generator.energy_pj,
            }
            for name in self.results
        }

    def as_comparison(self) -> "ComparisonResult":
        """The legacy two-way view; needs both ``eyeriss`` and ``ganax``."""
        missing = {"eyeriss", "ganax"} - set(self.results)
        if missing:
            raise AnalysisError(
                f"{self.model_name}: the two-way view needs results for "
                f"eyeriss and ganax; missing: {', '.join(sorted(missing))}"
            )
        return ComparisonResult(
            model_name=self.model_name,
            eyeriss=self.results["eyeriss"],
            ganax=self.results["ganax"],
        )


@dataclass(frozen=True)
class ComparisonResult:
    """A GANAX-vs-EYERISS comparison for one GAN model.

    This is the ``("eyeriss", "ganax")`` special case of
    :class:`MultiComparison`, kept because the paper's figures (8-11) are all
    phrased as this exact pair; N-way studies should use
    :class:`repro.Session` / :class:`MultiComparison` instead.
    """

    model_name: str
    eyeriss: GanResult
    ganax: GanResult

    def __post_init__(self) -> None:
        if self.eyeriss.accelerator != "eyeriss" or self.ganax.accelerator != "ganax":
            raise AnalysisError(
                "ComparisonResult expects an EYERISS result and a GANAX result"
            )

    # -- generator-level metrics (Figures 8, 10, 11) -----------------------
    @property
    def generator_speedup(self) -> float:
        """Speedup of the generative model on GANAX over EYERISS (Figure 8a)."""
        ganax_cycles = self.ganax.generator.cycles
        if ganax_cycles == 0:
            raise AnalysisError(f"{self.model_name}: GANAX generator cycles are zero")
        return self.eyeriss.generator.cycles / ganax_cycles

    @property
    def generator_energy_reduction(self) -> float:
        """Energy reduction of the generative model (Figure 8b)."""
        ganax_energy = self.ganax.generator.energy_pj
        if ganax_energy == 0:
            raise AnalysisError(f"{self.model_name}: GANAX generator energy is zero")
        return self.eyeriss.generator.energy_pj / ganax_energy

    @property
    def eyeriss_generator_utilization(self) -> float:
        return self.eyeriss.generator.pe_utilization

    @property
    def ganax_generator_utilization(self) -> float:
        return self.ganax.generator.pe_utilization

    # -- whole-model metrics (Figure 9) -------------------------------------
    def normalized_runtime(self) -> Dict[str, Dict[str, float]]:
        """Runtime split, normalised to the EYERISS total (Figure 9a)."""
        baseline = self.eyeriss.total_cycles
        if baseline == 0:
            raise AnalysisError(f"{self.model_name}: EYERISS total cycles are zero")
        return {
            "eyeriss": {
                key: value / baseline for key, value in self.eyeriss.runtime_split().items()
            },
            "ganax": {
                key: value / baseline for key, value in self.ganax.runtime_split().items()
            },
        }

    def normalized_energy(self) -> Dict[str, Dict[str, float]]:
        """Energy split, normalised to the EYERISS total (Figure 9b)."""
        baseline = self.eyeriss.total_energy_pj
        if baseline == 0:
            raise AnalysisError(f"{self.model_name}: EYERISS total energy is zero")
        return {
            "eyeriss": {
                key: value / baseline for key, value in self.eyeriss.energy_split().items()
            },
            "ganax": {
                key: value / baseline for key, value in self.ganax.energy_split().items()
            },
        }

    def normalized_unit_energy(self) -> Dict[str, Dict[str, float]]:
        """Per-unit generator energy, normalised to EYERISS total (Figure 10)."""
        baseline = self.eyeriss.generator.energy_pj
        if baseline == 0:
            raise AnalysisError(f"{self.model_name}: EYERISS generator energy is zero")
        return {
            "eyeriss": {
                key: value / baseline
                for key, value in self.eyeriss.generator.energy.as_dict().items()
            },
            "ganax": {
                key: value / baseline
                for key, value in self.ganax.generator.energy.as_dict().items()
            },
        }
