"""Result containers shared by the EYERISS baseline and the GANAX simulator.

Both simulators produce, per layer, a :class:`LayerResult` holding the cycle
count, activity counters and energy breakdown; whole-network results aggregate
them into a :class:`NetworkResult` and whole-GAN runs into a
:class:`GanResult` with separate generator / discriminator sections, which is
the granularity the paper's Figures 8-11 report at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..errors import AnalysisError
from ..hw.counters import EventCounters
from ..hw.energy import EnergyBreakdown


@dataclass(frozen=True)
class LayerResult:
    """Simulation result for one layer on one accelerator.

    Attributes
    ----------
    layer_name:
        Name of the layer within its network.
    accelerator:
        ``"eyeriss"`` or ``"ganax"``.
    cycles:
        Modelled execution cycles for the layer.
    active_pe_cycles:
        PE-cycles spent on consequential operations.
    busy_pe_cycles:
        PE-cycles during which a PE was occupied (consequential work, gated
        zero work, or accumulation); used for utilization accounting.
    total_pe_cycles:
        ``cycles * num_pes`` — the denominator of PE utilization.
    macs_total / macs_consequential:
        Dense and consequential MAC counts of the layer.
    counters:
        Raw activity counters feeding the energy model.
    energy:
        Energy breakdown in picojoules.
    is_transposed / is_convolutional:
        Layer classification flags copied from the binding for reporting.
    """

    layer_name: str
    accelerator: str
    cycles: int
    active_pe_cycles: int
    busy_pe_cycles: int
    total_pe_cycles: int
    macs_total: int
    macs_consequential: int
    counters: EventCounters
    energy: EnergyBreakdown
    is_transposed: bool = False
    is_convolutional: bool = False

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise AnalysisError(f"{self.layer_name}: cycles cannot be negative")
        if self.total_pe_cycles < 0:
            raise AnalysisError(f"{self.layer_name}: total PE-cycles cannot be negative")

    @property
    def pe_utilization(self) -> float:
        """Fraction of PE-cycles doing consequential work (Figure 11)."""
        if self.total_pe_cycles == 0:
            return 0.0
        return min(1.0, self.active_pe_cycles / self.total_pe_cycles)

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def seconds(self) -> float:
        """Placeholder: converted by callers that know the clock frequency."""
        raise AnalysisError(
            "LayerResult does not know the clock; use ArchitectureConfig.cycles_to_seconds"
        )


@dataclass(frozen=True)
class NetworkResult:
    """Aggregated result of running one network (generator or discriminator)."""

    network_name: str
    accelerator: str
    layer_results: Tuple[LayerResult, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "layer_results", tuple(self.layer_results))

    @property
    def cycles(self) -> int:
        return sum(r.cycles for r in self.layer_results)

    @property
    def energy(self) -> EnergyBreakdown:
        return EnergyBreakdown.sum(r.energy for r in self.layer_results)

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def macs_total(self) -> int:
        return sum(r.macs_total for r in self.layer_results)

    @property
    def macs_consequential(self) -> int:
        return sum(r.macs_consequential for r in self.layer_results)

    @property
    def counters(self) -> EventCounters:
        total = EventCounters()
        for r in self.layer_results:
            total.add(r.counters)
        return total

    @property
    def pe_utilization(self) -> float:
        """Cycle-weighted PE utilization across the network's layers."""
        total = sum(r.total_pe_cycles for r in self.layer_results)
        if total == 0:
            return 0.0
        active = sum(r.active_pe_cycles for r in self.layer_results)
        return min(1.0, active / total)

    def layer(self, name: str) -> LayerResult:
        for result in self.layer_results:
            if result.layer_name == name:
                return result
        raise AnalysisError(f"no layer result named '{name}' in {self.network_name}")

    def transposed_results(self) -> Tuple[LayerResult, ...]:
        return tuple(r for r in self.layer_results if r.is_transposed)


@dataclass(frozen=True)
class GanResult:
    """Result of running a full GAN (generator + discriminator) on one accelerator."""

    model_name: str
    accelerator: str
    generator: NetworkResult
    discriminator: Optional[NetworkResult] = None

    @property
    def total_cycles(self) -> int:
        cycles = self.generator.cycles
        if self.discriminator is not None:
            cycles += self.discriminator.cycles
        return cycles

    @property
    def total_energy(self) -> EnergyBreakdown:
        energy = self.generator.energy
        if self.discriminator is not None:
            energy = energy + self.discriminator.energy
        return energy

    @property
    def total_energy_pj(self) -> float:
        return self.total_energy.total_pj

    def runtime_split(self) -> Dict[str, int]:
        """Cycles attributed to the generative and discriminative models."""
        return {
            "generative": self.generator.cycles,
            "discriminative": self.discriminator.cycles if self.discriminator else 0,
        }

    def energy_split(self) -> Dict[str, float]:
        """Energy attributed to the generative and discriminative models (pJ)."""
        return {
            "generative": self.generator.energy_pj,
            "discriminative": self.discriminator.energy_pj if self.discriminator else 0.0,
        }


@dataclass(frozen=True)
class ComparisonResult:
    """A GANAX-vs-EYERISS comparison for one GAN model."""

    model_name: str
    eyeriss: GanResult
    ganax: GanResult

    def __post_init__(self) -> None:
        if self.eyeriss.accelerator != "eyeriss" or self.ganax.accelerator != "ganax":
            raise AnalysisError(
                "ComparisonResult expects an EYERISS result and a GANAX result"
            )

    # -- generator-level metrics (Figures 8, 10, 11) -----------------------
    @property
    def generator_speedup(self) -> float:
        """Speedup of the generative model on GANAX over EYERISS (Figure 8a)."""
        ganax_cycles = self.ganax.generator.cycles
        if ganax_cycles == 0:
            raise AnalysisError(f"{self.model_name}: GANAX generator cycles are zero")
        return self.eyeriss.generator.cycles / ganax_cycles

    @property
    def generator_energy_reduction(self) -> float:
        """Energy reduction of the generative model (Figure 8b)."""
        ganax_energy = self.ganax.generator.energy_pj
        if ganax_energy == 0:
            raise AnalysisError(f"{self.model_name}: GANAX generator energy is zero")
        return self.eyeriss.generator.energy_pj / ganax_energy

    @property
    def eyeriss_generator_utilization(self) -> float:
        return self.eyeriss.generator.pe_utilization

    @property
    def ganax_generator_utilization(self) -> float:
        return self.ganax.generator.pe_utilization

    # -- whole-model metrics (Figure 9) -------------------------------------
    def normalized_runtime(self) -> Dict[str, Dict[str, float]]:
        """Runtime split, normalised to the EYERISS total (Figure 9a)."""
        baseline = self.eyeriss.total_cycles
        if baseline == 0:
            raise AnalysisError(f"{self.model_name}: EYERISS total cycles are zero")
        return {
            "eyeriss": {
                key: value / baseline for key, value in self.eyeriss.runtime_split().items()
            },
            "ganax": {
                key: value / baseline for key, value in self.ganax.runtime_split().items()
            },
        }

    def normalized_energy(self) -> Dict[str, Dict[str, float]]:
        """Energy split, normalised to the EYERISS total (Figure 9b)."""
        baseline = self.eyeriss.total_energy_pj
        if baseline == 0:
            raise AnalysisError(f"{self.model_name}: EYERISS total energy is zero")
        return {
            "eyeriss": {
                key: value / baseline for key, value in self.eyeriss.energy_split().items()
            },
            "ganax": {
                key: value / baseline for key, value in self.ganax.energy_split().items()
            },
        }

    def normalized_unit_energy(self) -> Dict[str, Dict[str, float]]:
        """Per-unit generator energy, normalised to EYERISS total (Figure 10)."""
        baseline = self.eyeriss.generator.energy_pj
        if baseline == 0:
            raise AnalysisError(f"{self.model_name}: EYERISS generator energy is zero")
        return {
            "eyeriss": {
                key: value / baseline
                for key, value in self.eyeriss.generator.energy.as_dict().items()
            },
            "ganax": {
                key: value / baseline
                for key, value in self.ganax.generator.energy.as_dict().items()
            },
        }
