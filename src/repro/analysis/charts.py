"""ASCII bar charts for figure-style data.

The paper's evaluation figures are bar charts.  The experiment harness renders
its data as tables (:mod:`repro.analysis.report`); this module adds simple
horizontal ASCII bar charts so the CLI output visually resembles the figures —
one bar per GAN, an explicit scale, and optional paper-reference markers.

Beyond the fixed-pair figure styles, two registry-aware renderers cover the
open grid: :func:`multi_comparison_chart` draws a
:class:`~repro.analysis.results.MultiComparison` set over *any* accelerator
list (one bar per model x accelerator, whatever is registered), and
:func:`frontier_chart` draws a :class:`~repro.dse.ParetoFrontier`, marking
which design points survived domination.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from ..errors import AnalysisError

if TYPE_CHECKING:  # imported only for annotations: dse imports analysis back
    from ..dse.pareto import ParetoFrontier
    from .results import MultiComparison

#: Character used for the filled portion of a bar.
BAR_CHAR = "#"
#: Character used for the paper-reference marker.
MARKER_CHAR = "|"


def horizontal_bar_chart(
    title: str,
    values: Mapping[str, float],
    *,
    width: int = 50,
    unit: str = "x",
    reference: Optional[Mapping[str, float]] = None,
    max_value: Optional[float] = None,
) -> str:
    """Render a labelled horizontal bar chart.

    Parameters
    ----------
    title:
        Chart heading.
    values:
        Label -> value mapping; insertion order is preserved.
    width:
        Width of the bar area in characters.
    unit:
        Unit suffix appended to the numeric value (``"x"`` or ``"%"``).
    reference:
        Optional label -> paper value mapping; a ``|`` marker is drawn at each
        reference position so measured bars can be compared at a glance.
    max_value:
        Scale maximum; defaults to the largest value/reference present.
    """
    if not values:
        raise AnalysisError("cannot chart an empty value mapping")
    if width < 10:
        raise AnalysisError("chart width must be at least 10 characters")
    if any(v < 0 for v in values.values()):
        raise AnalysisError("bar chart values must be non-negative")

    scale_candidates = list(values.values())
    if reference:
        scale_candidates.extend(v for v in reference.values() if v is not None)
    scale = max_value if max_value is not None else max(scale_candidates)
    if scale <= 0:
        scale = 1.0

    label_width = max(len(label) for label in values)
    lines = [title, "=" * len(title)]
    for label, value in values.items():
        filled = min(width, int(round(width * value / scale)))
        bar = list(BAR_CHAR * filled + " " * (width - filled))
        if reference and reference.get(label) is not None:
            marker = min(width - 1, int(round(width * reference[label] / scale)))
            bar[marker] = MARKER_CHAR
        rendered_value = _format_value(value, unit)
        lines.append(f"{label.ljust(label_width)} [{''.join(bar)}] {rendered_value}")
    lines.append(f"{' ' * label_width}  scale: 0 .. {_format_value(scale, unit)}"
                 + ("   (| = paper)" if reference else ""))
    return "\n".join(lines)


def ratio_chart(
    title: str,
    per_model: Mapping[str, float],
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Figure 8-style chart: one bar per GAN, values in 'x'."""
    return horizontal_bar_chart(title, per_model, unit="x", reference=reference)


def fraction_chart(
    title: str,
    per_model: Mapping[str, float],
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Figure 1/11-style chart: one bar per GAN, values in percent."""
    percentages = {label: 100.0 * value for label, value in per_model.items()}
    scaled_reference = None
    if reference is not None:
        scaled_reference = {
            label: 100.0 * value
            for label, value in reference.items()
            if value is not None
        }
    return horizontal_bar_chart(
        title, percentages, unit="%", reference=scaled_reference, max_value=100.0
    )


def stacked_chart(
    title: str,
    per_model: Mapping[str, Mapping[str, float]],
    segments: Sequence[str],
    *,
    width: int = 50,
) -> str:
    """Figure 9/10-style chart: one stacked bar per (model, accelerator) row.

    ``per_model`` maps a row label to segment -> value; values are assumed to
    be normalised so that 1.0 spans the full bar width.
    """
    if not per_model:
        raise AnalysisError("cannot chart an empty mapping")
    symbols = "#=+*o@"
    if len(segments) > len(symbols):
        raise AnalysisError(f"at most {len(symbols)} segments are supported")
    label_width = max(len(label) for label in per_model)
    lines = [title, "=" * len(title)]
    for label, parts in per_model.items():
        missing = [s for s in segments if s not in parts]
        if missing:
            raise AnalysisError(f"{label}: missing segments {missing}")
        bar = ""
        for symbol, segment in zip(symbols, segments):
            bar += symbol * int(round(width * max(0.0, parts[segment])))
        bar = bar[:width].ljust(width)
        total = sum(parts[s] for s in segments)
        lines.append(f"{label.ljust(label_width)} [{bar}] {total:.2f}")
    legend = ", ".join(f"{symbol}={segment}" for symbol, segment in zip(symbols, segments))
    lines.append(f"{' ' * label_width}  legend: {legend}")
    return "\n".join(lines)


#: Metric extractors for multi_comparison_chart: name -> (getter, unit).
_COMPARISON_METRICS = {
    "speedup": (lambda multi, name: multi.generator_speedup(name), "x"),
    "energy_reduction": (
        lambda multi, name: multi.generator_energy_reduction(name),
        "x",
    ),
    "pe_utilization": (
        lambda multi, name: 100.0 * multi.generator_utilization(name),
        "%",
    ),
}


def multi_comparison_chart(
    title: str,
    comparisons: Mapping[str, "MultiComparison"],
    *,
    metric: str = "speedup",
    include_baseline: bool = False,
    width: int = 50,
) -> str:
    """One bar per (model, accelerator) over an arbitrary accelerator set.

    The registry-aware counterpart of :func:`ratio_chart`: rather than
    assuming the paper's EYERISS/GANAX pair, it renders whatever accelerators
    each :class:`~repro.analysis.results.MultiComparison` holds, labelled
    ``model/accelerator``.  ``metric`` is one of ``"speedup"``,
    ``"energy_reduction"`` or ``"pe_utilization"``; baseline bars (always 1x
    for the ratio metrics) are skipped unless ``include_baseline``.
    """
    if not comparisons:
        raise AnalysisError("cannot chart an empty comparison set")
    if metric not in _COMPARISON_METRICS:
        raise AnalysisError(
            f"unknown comparison metric '{metric}'; "
            f"choose from: {', '.join(sorted(_COMPARISON_METRICS))}"
        )
    getter, unit = _COMPARISON_METRICS[metric]
    values = {}
    for model_name, multi in comparisons.items():
        for accelerator in multi.accelerators:
            if accelerator == multi.baseline and not include_baseline:
                continue
            values[f"{model_name}/{accelerator}"] = getter(multi, accelerator)
    if not values:
        raise AnalysisError(
            "nothing to chart: every compared accelerator is the baseline "
            "(pass include_baseline=True)"
        )
    return horizontal_bar_chart(
        title,
        values,
        width=width,
        unit=unit,
        max_value=100.0 if unit == "%" else None,
    )


def frontier_chart(
    title: str,
    frontier: "ParetoFrontier",
    *,
    objective: Optional[str] = None,
    width: int = 50,
) -> str:
    """One bar per evaluated design point, frontier members marked with '*'.

    Renders one objective (the frontier's first by default) across the whole
    Pareto partition — frontier points first (labelled ``label *``), then the
    dominated ones — so a :meth:`repro.Session.explore` result reads like the
    paper's figure-style charts.
    """
    points = (*frontier.frontier, *frontier.dominated)
    if not points:
        raise AnalysisError("cannot chart an empty frontier")
    names = [o.name for o in frontier.objectives]
    chosen = objective if objective is not None else names[0]
    if chosen not in names:
        raise AnalysisError(
            f"unknown objective '{chosen}'; frontier has: {', '.join(names)}"
        )
    on_frontier = set(id(p) for p in frontier.frontier)
    values = {
        f"{point.label}{' *' if id(point) in on_frontier else ''}": point.objective(
            chosen
        )
        for point in points
    }
    chart = horizontal_bar_chart(f"{title} [{chosen}]", values, width=width)
    return chart + "\n(* = on the Pareto frontier)"


def _format_value(value: float, unit: str) -> str:
    if unit == "%":
        return f"{value:.1f}%"
    return f"{value:.2f}{unit}"
