"""ASCII bar charts for figure-style data.

The paper's evaluation figures are bar charts.  The experiment harness renders
its data as tables (:mod:`repro.analysis.report`); this module adds simple
horizontal ASCII bar charts so the CLI output visually resembles the figures —
one bar per GAN, an explicit scale, and optional paper-reference markers.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..errors import AnalysisError

#: Character used for the filled portion of a bar.
BAR_CHAR = "#"
#: Character used for the paper-reference marker.
MARKER_CHAR = "|"


def horizontal_bar_chart(
    title: str,
    values: Mapping[str, float],
    *,
    width: int = 50,
    unit: str = "x",
    reference: Optional[Mapping[str, float]] = None,
    max_value: Optional[float] = None,
) -> str:
    """Render a labelled horizontal bar chart.

    Parameters
    ----------
    title:
        Chart heading.
    values:
        Label -> value mapping; insertion order is preserved.
    width:
        Width of the bar area in characters.
    unit:
        Unit suffix appended to the numeric value (``"x"`` or ``"%"``).
    reference:
        Optional label -> paper value mapping; a ``|`` marker is drawn at each
        reference position so measured bars can be compared at a glance.
    max_value:
        Scale maximum; defaults to the largest value/reference present.
    """
    if not values:
        raise AnalysisError("cannot chart an empty value mapping")
    if width < 10:
        raise AnalysisError("chart width must be at least 10 characters")
    if any(v < 0 for v in values.values()):
        raise AnalysisError("bar chart values must be non-negative")

    scale_candidates = list(values.values())
    if reference:
        scale_candidates.extend(v for v in reference.values() if v is not None)
    scale = max_value if max_value is not None else max(scale_candidates)
    if scale <= 0:
        scale = 1.0

    label_width = max(len(label) for label in values)
    lines = [title, "=" * len(title)]
    for label, value in values.items():
        filled = min(width, int(round(width * value / scale)))
        bar = list(BAR_CHAR * filled + " " * (width - filled))
        if reference and reference.get(label) is not None:
            marker = min(width - 1, int(round(width * reference[label] / scale)))
            bar[marker] = MARKER_CHAR
        rendered_value = _format_value(value, unit)
        lines.append(f"{label.ljust(label_width)} [{''.join(bar)}] {rendered_value}")
    lines.append(f"{' ' * label_width}  scale: 0 .. {_format_value(scale, unit)}"
                 + ("   (| = paper)" if reference else ""))
    return "\n".join(lines)


def ratio_chart(
    title: str,
    per_model: Mapping[str, float],
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Figure 8-style chart: one bar per GAN, values in 'x'."""
    return horizontal_bar_chart(title, per_model, unit="x", reference=reference)


def fraction_chart(
    title: str,
    per_model: Mapping[str, float],
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Figure 1/11-style chart: one bar per GAN, values in percent."""
    percentages = {label: 100.0 * value for label, value in per_model.items()}
    scaled_reference = None
    if reference is not None:
        scaled_reference = {
            label: 100.0 * value
            for label, value in reference.items()
            if value is not None
        }
    return horizontal_bar_chart(
        title, percentages, unit="%", reference=scaled_reference, max_value=100.0
    )


def stacked_chart(
    title: str,
    per_model: Mapping[str, Mapping[str, float]],
    segments: Sequence[str],
    *,
    width: int = 50,
) -> str:
    """Figure 9/10-style chart: one stacked bar per (model, accelerator) row.

    ``per_model`` maps a row label to segment -> value; values are assumed to
    be normalised so that 1.0 spans the full bar width.
    """
    if not per_model:
        raise AnalysisError("cannot chart an empty mapping")
    symbols = "#=+*o@"
    if len(segments) > len(symbols):
        raise AnalysisError(f"at most {len(symbols)} segments are supported")
    label_width = max(len(label) for label in per_model)
    lines = [title, "=" * len(title)]
    for label, parts in per_model.items():
        missing = [s for s in segments if s not in parts]
        if missing:
            raise AnalysisError(f"{label}: missing segments {missing}")
        bar = ""
        for symbol, segment in zip(symbols, segments):
            bar += symbol * int(round(width * max(0.0, parts[segment])))
        bar = bar[:width].ljust(width)
        total = sum(parts[s] for s in segments)
        lines.append(f"{label.ljust(label_width)} [{bar}] {total:.2f}")
    legend = ", ".join(f"{symbol}={segment}" for symbol, segment in zip(symbols, segments))
    lines.append(f"{' ' * label_width}  legend: {legend}")
    return "\n".join(lines)


def _format_value(value: float, unit: str) -> str:
    if unit == "%":
        return f"{value:.1f}%"
    return f"{value:.2f}{unit}"
