"""Metric helpers: speedups, reductions, geometric means, utilizations.

These are small, well-tested numeric helpers shared by the experiment modules
and the report renderer.  The paper reports geometric means for speedup and
energy reduction (Figure 8) and arithmetic averages for the fraction plots
(Figures 1, 9, 10, 11); the helpers make that distinction explicit.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence

from ..errors import AnalysisError


def speedup(baseline_cycles: float, improved_cycles: float) -> float:
    """Speedup of ``improved`` over ``baseline`` (>1 means faster)."""
    if improved_cycles <= 0:
        raise AnalysisError("improved cycles must be positive")
    if baseline_cycles < 0:
        raise AnalysisError("baseline cycles cannot be negative")
    return baseline_cycles / improved_cycles


def reduction(baseline_value: float, improved_value: float) -> float:
    """Reduction factor of ``improved`` relative to ``baseline`` (>1 is better)."""
    if improved_value <= 0:
        raise AnalysisError("improved value must be positive")
    if baseline_value < 0:
        raise AnalysisError("baseline value cannot be negative")
    return baseline_value / improved_value


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of a sequence of positive values."""
    values = list(values)
    if not values:
        raise AnalysisError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise AnalysisError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a sequence."""
    values = list(values)
    if not values:
        raise AnalysisError("arithmetic mean of an empty sequence")
    return sum(values) / len(values)


def normalize(values: Mapping[str, float], reference: float) -> Dict[str, float]:
    """Divide every entry by ``reference`` (used for 'normalised to EYERISS')."""
    if reference <= 0:
        raise AnalysisError("normalisation reference must be positive")
    return {key: value / reference for key, value in values.items()}


def utilization(active: float, total: float) -> float:
    """Clamp ``active / total`` into [0, 1]; 0 when ``total`` is 0."""
    if total <= 0:
        return 0.0
    if active < 0:
        raise AnalysisError("active count cannot be negative")
    return min(1.0, active / total)


def percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string (for reports)."""
    return f"{100.0 * value:.{digits}f}%"


def ratio_summary(per_model: Mapping[str, float]) -> Dict[str, float]:
    """Attach the geometric mean to a per-model ratio mapping.

    Mirrors the paper's figures, which plot per-GAN bars plus a Geomean bar.
    """
    if not per_model:
        raise AnalysisError("no per-model values provided")
    summary = dict(per_model)
    summary["Geomean"] = geometric_mean(list(per_model.values()))
    return summary


def fraction_summary(per_model: Mapping[str, float]) -> Dict[str, float]:
    """Attach the arithmetic average to a per-model fraction mapping.

    Mirrors the fraction plots (Figures 1 and 11), which use an Average bar.
    """
    if not per_model:
        raise AnalysisError("no per-model values provided")
    summary = dict(per_model)
    summary["Average"] = arithmetic_mean(list(per_model.values()))
    return summary
