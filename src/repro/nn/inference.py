"""Functional (NumPy) inference over Network definitions.

The workloads in :mod:`repro.workloads` are *structural* descriptions used by
the performance models.  This module makes them executable: it materialises
random (or user-supplied) weights for every layer and runs an input through
the network with the reference operators of :mod:`repro.nn.functional`.

This serves three purposes:

* it validates end-to-end that every workload's shape chain is consistent not
  just symbolically but numerically (the generator really produces a
  64x64x3 image / 64^3 voxel grid),
* it gives examples a way to "generate" data with the DCGAN-style generators
  the paper studies, and
* it provides the reference path for datapath studies (e.g. quantising
  activations/weights with :mod:`repro.hw.fixed_point` and measuring the
  error a 16-bit accelerator datapath would introduce).

Weight layouts follow :mod:`repro.nn.functional`: convolutions use
``(M, C, k...)`` and transposed convolutions ``(C, M, k...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import NetworkError, ShapeError
from .functional import (
    conv2d,
    conv3d,
    leaky_relu,
    relu,
    sigmoid,
    tanh,
    transposed_conv2d,
    transposed_conv3d,
)
from .layers import (
    ActivationLayer,
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    LayerSpec,
    PoolingLayer,
    ReshapeLayer,
    TransposedConvLayer,
)
from .network import Network

_ACTIVATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "tanh": tanh,
    "sigmoid": sigmoid,
}


@dataclass
class LayerParameters:
    """Materialised parameters of one layer (empty for parameter-less layers)."""

    weight: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    scale: Optional[np.ndarray] = None
    shift: Optional[np.ndarray] = None

    @property
    def parameter_count(self) -> int:
        total = 0
        for array in (self.weight, self.bias, self.scale, self.shift):
            if array is not None:
                total += array.size
        return total


class NetworkRunner:
    """Executable view of a :class:`~repro.nn.network.Network`.

    Parameters
    ----------
    network:
        The network definition to execute.
    rng:
        Random generator used to initialise parameters (DCGAN-style
        ``N(0, 0.02)`` weights).  Pass a seeded generator for reproducibility.
    weight_scale:
        Standard deviation of the random weight initialisation.
    """

    def __init__(
        self,
        network: Network,
        rng: Optional[np.random.Generator] = None,
        weight_scale: float = 0.02,
    ) -> None:
        if weight_scale <= 0:
            raise NetworkError("weight_scale must be positive")
        self._network = network
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._weight_scale = weight_scale
        self._parameters: Dict[str, LayerParameters] = {}
        self._initialise_parameters()

    # ------------------------------------------------------------------
    # Parameter handling
    # ------------------------------------------------------------------
    def _initialise_parameters(self) -> None:
        for binding in self._network.bindings:
            layer = binding.layer
            params = LayerParameters()
            if isinstance(layer, ConvLayer):
                shape = (layer.out_channels, binding.input_shape.channels, *layer.kernel)
                params.weight = self._rng.normal(0.0, self._weight_scale, size=shape)
                params.bias = np.zeros(layer.out_channels)
            elif isinstance(layer, TransposedConvLayer):
                shape = (binding.input_shape.channels, layer.out_channels, *layer.kernel)
                params.weight = self._rng.normal(0.0, self._weight_scale, size=shape)
                params.bias = np.zeros(layer.out_channels)
            elif isinstance(layer, DenseLayer):
                shape = (layer.out_features, binding.input_shape.num_elements)
                params.weight = self._rng.normal(0.0, self._weight_scale, size=shape)
                params.bias = np.zeros(layer.out_features)
            elif isinstance(layer, BatchNormLayer):
                params.scale = np.ones(binding.input_shape.channels)
                params.shift = np.zeros(binding.input_shape.channels)
            self._parameters[layer.name] = params

    @property
    def network(self) -> Network:
        return self._network

    def parameters(self, layer_name: str) -> LayerParameters:
        """Parameters of the named layer (raises for unknown layers)."""
        if layer_name not in self._parameters:
            raise NetworkError(f"no parameters for layer '{layer_name}'")
        return self._parameters[layer_name]

    def set_weight(self, layer_name: str, weight: np.ndarray) -> None:
        """Override the weight tensor of one layer (shape-checked)."""
        params = self.parameters(layer_name)
        if params.weight is None:
            raise NetworkError(f"layer '{layer_name}' has no weight tensor")
        if params.weight.shape != weight.shape:
            raise ShapeError(
                f"layer '{layer_name}': expected weight shape {params.weight.shape}, "
                f"got {weight.shape}"
            )
        params.weight = np.asarray(weight, dtype=np.float64)

    def total_parameters(self) -> int:
        """Total number of materialised scalar parameters."""
        return sum(p.parameter_count for p in self._parameters.values())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        x: np.ndarray,
        collect_activations: bool = False,
    ) -> np.ndarray | tuple:
        """Run ``x`` (shaped like the network's input) through every layer.

        With ``collect_activations=True`` the per-layer outputs are returned
        alongside the final output as ``(output, {layer_name: activation})``.
        """
        x = np.asarray(x, dtype=np.float64)
        expected = self._network.input_shape.as_tuple()
        if tuple(x.shape) != expected:
            raise ShapeError(
                f"network '{self._network.name}' expects input shape {expected}, "
                f"got {tuple(x.shape)}"
            )
        activations: Dict[str, np.ndarray] = {}
        for binding in self._network.bindings:
            x = self._run_layer(binding.layer, x)
            expected_out = binding.output_shape.as_tuple()
            if tuple(x.shape) != expected_out:
                raise ShapeError(
                    f"layer '{binding.name}' produced shape {tuple(x.shape)}, "
                    f"expected {expected_out}"
                )
            if collect_activations:
                activations[binding.name] = x
        if collect_activations:
            return x, activations
        return x

    def _run_layer(self, layer: LayerSpec, x: np.ndarray) -> np.ndarray:
        params = self._parameters[layer.name]
        if isinstance(layer, ConvLayer):
            op = conv2d if layer.rank == 2 else conv3d
            out = op(x, params.weight, stride=layer.stride, padding=layer.padding)
            return out + params.bias.reshape((-1,) + (1,) * layer.rank)
        if isinstance(layer, TransposedConvLayer):
            if layer.rank == 2:
                out = transposed_conv2d(
                    x,
                    params.weight,
                    stride=layer.stride,
                    padding=layer.padding,
                    output_padding=layer.output_padding,
                )
            else:
                out = transposed_conv3d(
                    x, params.weight, stride=layer.stride, padding=layer.padding
                )
            return out + params.bias.reshape((-1,) + (1,) * layer.rank)
        if isinstance(layer, DenseLayer):
            flat = x.reshape(-1)
            return (params.weight @ flat + params.bias).reshape(layer.out_features, 1)
        if isinstance(layer, ReshapeLayer):
            assert layer.target is not None
            return x.reshape(layer.target.as_tuple())
        if isinstance(layer, BatchNormLayer):
            shape = (-1,) + (1,) * (x.ndim - 1)
            return x * params.scale.reshape(shape) + params.shift.reshape(shape)
        if isinstance(layer, ActivationLayer):
            return _ACTIVATIONS[layer.function](x)
        if isinstance(layer, PoolingLayer):
            return _max_pool(x, layer.kernel, layer.stride)
        raise NetworkError(f"layer '{layer.name}' ({type(layer).__name__}) is not executable")


def _max_pool(x: np.ndarray, kernel, stride) -> np.ndarray:
    """Max pooling over the trailing spatial dimensions of a (C, *spatial) array."""
    spatial = x.shape[1:]
    out_spatial = tuple(
        (extent - k) // s + 1 for extent, k, s in zip(spatial, kernel, stride)
    )
    out = np.empty((x.shape[0], *out_spatial), dtype=x.dtype)
    for index in np.ndindex(*out_spatial):
        window = x[
            (slice(None),)
            + tuple(slice(i * s, i * s + k) for i, k, s in zip(index, kernel, stride))
        ]
        out[(slice(None), *index)] = window.reshape(x.shape[0], -1).max(axis=1)
    return out


def run_generator(
    network: Network,
    latent: Optional[np.ndarray] = None,
    seed: int = 0,
) -> np.ndarray:
    """Convenience: run a generator network on a latent vector.

    When ``latent`` is omitted a standard-normal latent of the right size is
    drawn from ``seed``.
    """
    rng = np.random.default_rng(seed)
    runner = NetworkRunner(network, rng=rng)
    if latent is None:
        latent = rng.standard_normal(network.input_shape.as_tuple())
    return runner.run(latent)
