"""Layer specifications for the GAN workloads.

Each layer is a small frozen dataclass that knows how to:

* compute its output :class:`~repro.nn.shapes.FeatureMapShape`,
* report its weight footprint, and
* report its multiply-accumulate (MAC) work, both *total* (as executed by a
  conventional dense convolution dataflow over the zero-inserted input) and
  *consequential* (MACs whose operands are genuine, non-inserted values).

The consequential/inconsequential split is the quantity Figure 1 of the paper
plots and the quantity GANAX exploits; the detailed per-row pattern analysis
lives in :mod:`repro.nn.zero_analysis`, while the aggregate counts are exposed
here so that simulators and workload summaries can use them without pulling in
the pattern machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import LayerError, ShapeError
from .shapes import (
    FeatureMapShape,
    conv_geometry_tuple,
    conv_output_extent,
    transposed_conv_output_extent,
    zero_inserted_extent,
)


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer specifications.

    Attributes
    ----------
    name:
        Human readable layer name, unique within a network (e.g. ``"tconv2"``).
    """

    name: str

    # -- interface -----------------------------------------------------
    def output_shape(self, input_shape: FeatureMapShape) -> FeatureMapShape:
        """Shape of the feature map this layer produces for ``input_shape``."""
        raise NotImplementedError

    def weight_count(self, input_shape: FeatureMapShape) -> int:
        """Number of scalar weights (0 for weight-less layers)."""
        raise NotImplementedError

    def total_macs(self, input_shape: FeatureMapShape) -> int:
        """MACs executed by a dense dataflow (zeros included for tconv)."""
        raise NotImplementedError

    def consequential_macs(self, input_shape: FeatureMapShape) -> int:
        """MACs whose input operand is a genuine (non-inserted) value."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------
    @property
    def is_convolutional(self) -> bool:
        """True for convolution-family layers (conv / transposed conv)."""
        return isinstance(self, (ConvLayer, TransposedConvLayer))

    @property
    def is_transposed(self) -> bool:
        """True only for transposed-convolution layers."""
        return isinstance(self, TransposedConvLayer)

    def inconsequential_macs(self, input_shape: FeatureMapShape) -> int:
        """MACs wasted on inserted zeros under a dense dataflow."""
        return self.total_macs(input_shape) - self.consequential_macs(input_shape)

    def inconsequential_fraction(self, input_shape: FeatureMapShape) -> float:
        """Fraction of dense MACs that are inconsequential (Figure 1)."""
        total = self.total_macs(input_shape)
        if total == 0:
            return 0.0
        return self.inconsequential_macs(input_shape) / total


def _validate_conv_common(
    name: str,
    out_channels: int,
    kernel: Tuple[int, ...],
    stride: Tuple[int, ...],
    padding: Tuple[int, ...],
) -> None:
    if not name:
        raise LayerError("layer name must be non-empty")
    if out_channels <= 0:
        raise LayerError(f"{name}: out_channels must be positive, got {out_channels}")
    if any(k <= 0 for k in kernel):
        raise LayerError(f"{name}: kernel extents must be positive, got {kernel}")
    if any(s <= 0 for s in stride):
        raise LayerError(f"{name}: stride extents must be positive, got {stride}")
    if any(p < 0 for p in padding):
        raise LayerError(f"{name}: padding must be non-negative, got {padding}")


@lru_cache(maxsize=4096)
def consequential_taps_along_extent(
    in_extent: int, out_extent: int, kernel: int, stride: int, padding: int
) -> Tuple[int, ...]:
    """Per-output-coordinate consequential tap counts along one dimension.

    Vectorized over the (output coordinate, kernel tap) grid and memoized on
    the five geometry scalars: the same extents recur for every channel pair,
    every repeated block of a generator stack, and across workload variants
    that share layer geometry, so virtually all calls after the first are
    dictionary lookups.
    """
    border = kernel - 1 - padding
    zi_extent = (in_extent - 1) * stride + 1
    expanded = (
        np.arange(out_extent, dtype=np.int64)[:, None]
        + np.arange(kernel, dtype=np.int64)[None, :]
        - border
    )
    genuine = (expanded >= 0) & (expanded < zi_extent) & (expanded % stride == 0)
    return tuple(int(taps) for taps in genuine.sum(axis=1))


@dataclass(frozen=True)
class ConvLayer(LayerSpec):
    """A conventional (strided) convolution layer of arbitrary spatial rank.

    ``kernel``, ``stride`` and ``padding`` may be scalars (broadcast to every
    spatial dimension) or per-dimension tuples.
    """

    out_channels: int = 0
    kernel: Tuple[int, ...] = ()
    stride: Tuple[int, ...] = (1,)
    padding: Tuple[int, ...] = (0,)
    rank: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", conv_geometry_tuple(self.kernel, self.rank, "kernel"))
        object.__setattr__(self, "stride", conv_geometry_tuple(self.stride, self.rank, "stride"))
        object.__setattr__(self, "padding", conv_geometry_tuple(self.padding, self.rank, "padding"))
        _validate_conv_common(self.name, self.out_channels, self.kernel, self.stride, self.padding)

    # -- shapes ----------------------------------------------------------
    def output_shape(self, input_shape: FeatureMapShape) -> FeatureMapShape:
        if input_shape.rank != self.rank:
            raise ShapeError(
                f"{self.name}: expected rank-{self.rank} input, got rank "
                f"{input_shape.rank} ({input_shape})"
            )
        spatial = tuple(
            conv_output_extent(extent, k, s, p)
            for extent, k, s, p in zip(
                input_shape.spatial, self.kernel, self.stride, self.padding
            )
        )
        return FeatureMapShape(channels=self.out_channels, spatial=spatial)

    def weight_count(self, input_shape: FeatureMapShape) -> int:
        kernel_volume = math.prod(self.kernel)
        return self.out_channels * input_shape.channels * kernel_volume

    # -- work ------------------------------------------------------------
    def total_macs(self, input_shape: FeatureMapShape) -> int:
        out = self.output_shape(input_shape)
        kernel_volume = math.prod(self.kernel)
        return out.spatial_size * out.channels * input_shape.channels * kernel_volume

    def consequential_macs(self, input_shape: FeatureMapShape) -> int:
        # Conventional convolution has no structurally-inserted zeros: every
        # MAC is consequential (data-dependent sparsity is out of scope here,
        # matching the paper's structural analysis).
        return self.total_macs(input_shape)


@dataclass(frozen=True)
class TransposedConvLayer(LayerSpec):
    """A transposed (fractionally-strided) convolution layer.

    The layer is modelled through the zero-insertion formulation used by the
    paper: ``stride - 1`` zeros are inserted between neighbouring input
    elements along every spatial dimension, the expanded map is padded with
    ``kernel - 1 - padding`` on each border, and a unit-stride convolution is
    slid over the result.
    """

    out_channels: int = 0
    kernel: Tuple[int, ...] = ()
    stride: Tuple[int, ...] = (1,)
    padding: Tuple[int, ...] = (0,)
    output_padding: Tuple[int, ...] = (0,)
    rank: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", conv_geometry_tuple(self.kernel, self.rank, "kernel"))
        object.__setattr__(self, "stride", conv_geometry_tuple(self.stride, self.rank, "stride"))
        object.__setattr__(self, "padding", conv_geometry_tuple(self.padding, self.rank, "padding"))
        object.__setattr__(
            self,
            "output_padding",
            conv_geometry_tuple(self.output_padding, self.rank, "output_padding"),
        )
        _validate_conv_common(self.name, self.out_channels, self.kernel, self.stride, self.padding)
        for k, p in zip(self.kernel, self.padding):
            if k - 1 - p < 0:
                raise LayerError(
                    f"{self.name}: padding {p} exceeds kernel-1 ({k - 1}); the "
                    "zero-insertion formulation requires padding <= kernel - 1"
                )

    # -- shapes ----------------------------------------------------------
    def output_shape(self, input_shape: FeatureMapShape) -> FeatureMapShape:
        if input_shape.rank != self.rank:
            raise ShapeError(
                f"{self.name}: expected rank-{self.rank} input, got rank "
                f"{input_shape.rank} ({input_shape})"
            )
        spatial = tuple(
            transposed_conv_output_extent(extent, k, s, p, op)
            for extent, k, s, p, op in zip(
                input_shape.spatial,
                self.kernel,
                self.stride,
                self.padding,
                self.output_padding,
            )
        )
        return FeatureMapShape(channels=self.out_channels, spatial=spatial)

    def expanded_spatial(self, input_shape: FeatureMapShape) -> Tuple[int, ...]:
        """Spatial extents of the zero-inserted (and edge-padded) input.

        The expanded map is exactly the region the unit-stride convolution
        window slides over, i.e. ``output_extent + kernel - 1`` along every
        dimension, which equals the zero-inserted extent plus the implicit
        border padding of ``kernel - 1 - padding`` (+ output_padding on the
        trailing edge).
        """
        out = self.output_shape(input_shape)
        return tuple(o + k - 1 for o, k in zip(out.spatial, self.kernel))

    def zero_inserted_spatial(self, input_shape: FeatureMapShape) -> Tuple[int, ...]:
        """Spatial extents after zero insertion but before border padding."""
        return tuple(
            zero_inserted_extent(extent, s)
            for extent, s in zip(input_shape.spatial, self.stride)
        )

    def weight_count(self, input_shape: FeatureMapShape) -> int:
        kernel_volume = math.prod(self.kernel)
        return self.out_channels * input_shape.channels * kernel_volume

    # -- work ------------------------------------------------------------
    def total_macs(self, input_shape: FeatureMapShape) -> int:
        """Dense MACs when the zero-inserted input is convolved naively."""
        out = self.output_shape(input_shape)
        kernel_volume = math.prod(self.kernel)
        return out.spatial_size * out.channels * input_shape.channels * kernel_volume

    def consequential_macs(self, input_shape: FeatureMapShape) -> int:
        """MACs whose input operand is a genuine value.

        Each genuine input element at position ``x`` contributes to all output
        positions it overlaps under the kernel, which (ignoring borders) is the
        full kernel volume; the exact count is obtained by summing, per
        dimension, how many kernel taps keep the element inside the output.
        Equivalently (and how we compute it here): for each output position
        and kernel tap, the tap is consequential iff it lands on a genuine
        element of the expanded input.  The per-dimension counts factorise, so
        the exact total is the product over dimensions of the summed
        per-output-coordinate consequential tap counts.
        """
        out = self.output_shape(input_shape)
        per_dim_sums = []
        for dim in range(self.rank):
            per_dim_sums.append(
                self._consequential_taps_along_dim(
                    in_extent=input_shape.spatial[dim],
                    out_extent=out.spatial[dim],
                    kernel=self.kernel[dim],
                    stride=self.stride[dim],
                    padding=self.padding[dim],
                )
            )
        spatial_consequential = math.prod(sum(counts) for counts in per_dim_sums)
        return spatial_consequential * out.channels * input_shape.channels

    def consequential_taps_along_dim(self, input_shape: FeatureMapShape, dim: int) -> Tuple[int, ...]:
        """Per-output-coordinate consequential kernel-tap counts along ``dim``."""
        out = self.output_shape(input_shape)
        return self._consequential_taps_along_dim(
            in_extent=input_shape.spatial[dim],
            out_extent=out.spatial[dim],
            kernel=self.kernel[dim],
            stride=self.stride[dim],
            padding=self.padding[dim],
        )

    @staticmethod
    def _consequential_taps_along_dim(
        in_extent: int, out_extent: int, kernel: int, stride: int, padding: int
    ) -> Tuple[int, ...]:
        """Count consequential kernel taps for every output coordinate.

        In the zero-insertion formulation, output coordinate ``o`` is produced
        by a window covering expanded coordinates ``o .. o + kernel - 1`` where
        the expanded array has ``kernel - 1 - padding`` border zeros followed
        by the zero-inserted input.  Expanded coordinate ``e`` holds a genuine
        element iff ``e - (kernel - 1 - padding)`` is a non-negative multiple
        of ``stride`` smaller than ``(in_extent - 1) * stride + 1``.
        """
        return consequential_taps_along_extent(
            in_extent, out_extent, kernel, stride, padding
        )


@dataclass(frozen=True)
class DenseLayer(LayerSpec):
    """A fully connected layer (used for the projection layer of generators)."""

    out_features: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise LayerError("layer name must be non-empty")
        if self.out_features <= 0:
            raise LayerError(f"{self.name}: out_features must be positive")

    def output_shape(self, input_shape: FeatureMapShape) -> FeatureMapShape:
        return FeatureMapShape.vector(self.out_features)

    def weight_count(self, input_shape: FeatureMapShape) -> int:
        return input_shape.num_elements * self.out_features

    def total_macs(self, input_shape: FeatureMapShape) -> int:
        return input_shape.num_elements * self.out_features

    def consequential_macs(self, input_shape: FeatureMapShape) -> int:
        return self.total_macs(input_shape)


@dataclass(frozen=True)
class ReshapeLayer(LayerSpec):
    """Reinterpret a flat vector as a multi-channel feature map (no compute)."""

    target: Optional[FeatureMapShape] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise LayerError("layer name must be non-empty")
        if self.target is None:
            raise LayerError(f"{self.name}: target shape is required")

    def output_shape(self, input_shape: FeatureMapShape) -> FeatureMapShape:
        assert self.target is not None
        if input_shape.num_elements != self.target.num_elements:
            raise ShapeError(
                f"{self.name}: cannot reshape {input_shape.num_elements} elements "
                f"into {self.target.num_elements}"
            )
        return self.target

    def weight_count(self, input_shape: FeatureMapShape) -> int:
        return 0

    def total_macs(self, input_shape: FeatureMapShape) -> int:
        return 0

    def consequential_macs(self, input_shape: FeatureMapShape) -> int:
        return 0


@dataclass(frozen=True)
class PoolingLayer(LayerSpec):
    """Max/average pooling.  Counted as comparisons/adds, not MACs."""

    kernel: Tuple[int, ...] = (2,)
    stride: Tuple[int, ...] = (2,)
    rank: int = 2
    mode: str = "max"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", conv_geometry_tuple(self.kernel, self.rank, "kernel"))
        object.__setattr__(self, "stride", conv_geometry_tuple(self.stride, self.rank, "stride"))
        if not self.name:
            raise LayerError("layer name must be non-empty")
        if self.mode not in ("max", "avg"):
            raise LayerError(f"{self.name}: pooling mode must be 'max' or 'avg'")
        if any(k <= 0 for k in self.kernel) or any(s <= 0 for s in self.stride):
            raise LayerError(f"{self.name}: kernel and stride must be positive")

    def output_shape(self, input_shape: FeatureMapShape) -> FeatureMapShape:
        if input_shape.rank != self.rank:
            raise ShapeError(
                f"{self.name}: expected rank-{self.rank} input, got {input_shape.rank}"
            )
        spatial = tuple(
            conv_output_extent(extent, k, s, 0)
            for extent, k, s in zip(input_shape.spatial, self.kernel, self.stride)
        )
        return FeatureMapShape(channels=input_shape.channels, spatial=spatial)

    def weight_count(self, input_shape: FeatureMapShape) -> int:
        return 0

    def total_macs(self, input_shape: FeatureMapShape) -> int:
        # Pooling does not multiply; we count it as zero MACs.  Its runtime is
        # negligible relative to (t)conv layers and the paper does not report
        # it separately.
        return 0

    def consequential_macs(self, input_shape: FeatureMapShape) -> int:
        return 0


@dataclass(frozen=True)
class ActivationLayer(LayerSpec):
    """Element-wise activation (ReLU, leaky ReLU, tanh, sigmoid)."""

    function: str = "relu"

    _SUPPORTED = ("relu", "leaky_relu", "tanh", "sigmoid")

    def __post_init__(self) -> None:
        if not self.name:
            raise LayerError("layer name must be non-empty")
        if self.function not in self._SUPPORTED:
            raise LayerError(
                f"{self.name}: unsupported activation '{self.function}', "
                f"expected one of {self._SUPPORTED}"
            )

    def output_shape(self, input_shape: FeatureMapShape) -> FeatureMapShape:
        return input_shape

    def weight_count(self, input_shape: FeatureMapShape) -> int:
        return 0

    def total_macs(self, input_shape: FeatureMapShape) -> int:
        return 0

    def consequential_macs(self, input_shape: FeatureMapShape) -> int:
        return 0


@dataclass(frozen=True)
class BatchNormLayer(LayerSpec):
    """Batch normalisation folded into a per-channel scale and shift."""

    def __post_init__(self) -> None:
        if not self.name:
            raise LayerError("layer name must be non-empty")

    def output_shape(self, input_shape: FeatureMapShape) -> FeatureMapShape:
        return input_shape

    def weight_count(self, input_shape: FeatureMapShape) -> int:
        return 2 * input_shape.channels

    def total_macs(self, input_shape: FeatureMapShape) -> int:
        # One multiply-add per element for the folded scale/shift.
        return input_shape.num_elements

    def consequential_macs(self, input_shape: FeatureMapShape) -> int:
        return self.total_macs(input_shape)
