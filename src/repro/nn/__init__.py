"""Neural-network substrate: shapes, layers, functional reference, analysis."""

from .shapes import (
    FeatureMapShape,
    conv_output_extent,
    transposed_conv_output_extent,
    zero_inserted_extent,
)
from .layers import (
    ActivationLayer,
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    LayerSpec,
    PoolingLayer,
    ReshapeLayer,
    TransposedConvLayer,
)
from .inference import LayerParameters, NetworkRunner, run_generator
from .network import GANModel, LayerBinding, Network
from .zero_analysis import (
    LayerZeroStats,
    RowPattern,
    TransposedConvAnalysis,
    analyze_transposed_conv,
    count_consequential_macs_bruteforce,
    distinct_row_patterns,
    layer_zero_stats,
    transposed_conv_inconsequential_fraction,
)

__all__ = [
    "FeatureMapShape",
    "conv_output_extent",
    "transposed_conv_output_extent",
    "zero_inserted_extent",
    "ActivationLayer",
    "BatchNormLayer",
    "ConvLayer",
    "DenseLayer",
    "LayerSpec",
    "PoolingLayer",
    "ReshapeLayer",
    "TransposedConvLayer",
    "LayerParameters",
    "NetworkRunner",
    "run_generator",
    "GANModel",
    "LayerBinding",
    "Network",
    "LayerZeroStats",
    "RowPattern",
    "TransposedConvAnalysis",
    "analyze_transposed_conv",
    "count_consequential_macs_bruteforce",
    "distinct_row_patterns",
    "layer_zero_stats",
    "transposed_conv_inconsequential_fraction",
]
