"""Tensor shape helpers for feature maps used by the layer algebra.

The GAN workloads in the paper mix 2-D feature maps (images) and 3-D feature
maps (3D-GAN voxel grids).  :class:`FeatureMapShape` represents a single
feature map of arbitrary spatial rank with a channel count, and provides the
arithmetic used throughout the layer definitions: element counts, byte sizes,
and the standard convolution / transposed-convolution output-size formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from ..errors import ShapeError


def _as_tuple(value: int | Sequence[int], rank: int, name: str) -> Tuple[int, ...]:
    """Broadcast a scalar (or 1-tuple) to ``rank`` dimensions or validate a sequence."""
    if isinstance(value, int):
        return (value,) * rank
    result = tuple(int(v) for v in value)
    if len(result) == 1 and rank > 1:
        return result * rank
    if len(result) != rank:
        raise ShapeError(
            f"{name} must have {rank} entries, got {len(result)}: {result}"
        )
    return result


@dataclass(frozen=True)
class FeatureMapShape:
    """Shape of a multi-channel feature map.

    Attributes
    ----------
    channels:
        Number of channels (depth of the feature map).
    spatial:
        Spatial extents, e.g. ``(height, width)`` for images or
        ``(depth, height, width)`` for voxel grids.
    """

    channels: int
    spatial: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ShapeError(f"channels must be positive, got {self.channels}")
        if not self.spatial:
            raise ShapeError("spatial extents must be non-empty")
        if any(s <= 0 for s in self.spatial):
            raise ShapeError(f"spatial extents must be positive, got {self.spatial}")
        object.__setattr__(self, "spatial", tuple(int(s) for s in self.spatial))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def image(cls, channels: int, height: int, width: int) -> "FeatureMapShape":
        """A 2-D feature map of ``channels x height x width``."""
        return cls(channels=channels, spatial=(height, width))

    @classmethod
    def volume(cls, channels: int, depth: int, height: int, width: int) -> "FeatureMapShape":
        """A 3-D feature map of ``channels x depth x height x width``."""
        return cls(channels=channels, spatial=(depth, height, width))

    @classmethod
    def vector(cls, length: int) -> "FeatureMapShape":
        """A flat vector, modelled as ``length`` channels of a 1x1 map."""
        return cls(channels=length, spatial=(1,))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of spatial dimensions (1, 2 or 3)."""
        return len(self.spatial)

    @property
    def height(self) -> int:
        """Height (second-to-last spatial dim) for rank >= 2 shapes."""
        if self.rank < 2:
            raise ShapeError(f"shape {self} has no height")
        return self.spatial[-2]

    @property
    def width(self) -> int:
        """Width (last spatial dim)."""
        return self.spatial[-1]

    @property
    def spatial_size(self) -> int:
        """Product of the spatial extents."""
        size = 1
        for s in self.spatial:
            size *= s
        return size

    @property
    def num_elements(self) -> int:
        """Total number of scalar elements (channels * spatial size)."""
        return self.channels * self.spatial_size

    def size_bytes(self, data_bits: int = 16) -> int:
        """Storage footprint in bytes for ``data_bits``-wide elements."""
        if data_bits <= 0:
            raise ShapeError("data_bits must be positive")
        return self.num_elements * ((data_bits + 7) // 8)

    def as_tuple(self) -> Tuple[int, ...]:
        """Full shape tuple ``(channels, *spatial)``."""
        return (self.channels, *self.spatial)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(s) for s in self.spatial)
        return f"{self.channels}x{dims}"


# ----------------------------------------------------------------------
# Convolution shape arithmetic
# ----------------------------------------------------------------------
def conv_output_extent(in_extent: int, kernel: int, stride: int, padding: int) -> int:
    """Output extent of a conventional convolution along one dimension."""
    if kernel <= 0 or stride <= 0 or padding < 0:
        raise ShapeError(
            f"invalid conv geometry: kernel={kernel} stride={stride} padding={padding}"
        )
    numerator = in_extent + 2 * padding - kernel
    if numerator < 0:
        raise ShapeError(
            f"kernel {kernel} larger than padded input {in_extent + 2 * padding}"
        )
    return numerator // stride + 1


def transposed_conv_output_extent(
    in_extent: int,
    kernel: int,
    stride: int,
    padding: int,
    output_padding: int = 0,
) -> int:
    """Output extent of a transposed convolution along one dimension.

    Uses the standard relationship
    ``out = (in - 1) * stride - 2 * padding + kernel + output_padding``.
    """
    if kernel <= 0 or stride <= 0 or padding < 0 or output_padding < 0:
        raise ShapeError(
            "invalid transposed conv geometry: "
            f"kernel={kernel} stride={stride} padding={padding} "
            f"output_padding={output_padding}"
        )
    if output_padding >= stride and output_padding >= kernel:
        raise ShapeError(
            f"output_padding {output_padding} must be smaller than stride "
            f"{stride} or kernel {kernel}"
        )
    out = (in_extent - 1) * stride - 2 * padding + kernel + output_padding
    if out <= 0:
        raise ShapeError(
            f"transposed conv produces non-positive extent {out} for input "
            f"{in_extent} (kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def zero_inserted_extent(in_extent: int, stride: int) -> int:
    """Extent after inserting ``stride - 1`` zeros between elements."""
    if in_extent <= 0 or stride <= 0:
        raise ShapeError(
            f"invalid zero-insertion geometry: extent={in_extent} stride={stride}"
        )
    return (in_extent - 1) * stride + 1


def conv_geometry_tuple(
    value: int | Sequence[int], rank: int, name: str
) -> Tuple[int, ...]:
    """Public wrapper over :func:`_as_tuple` for layer constructors."""
    return _as_tuple(value, rank, name)


def validate_same_rank(shapes: Iterable[FeatureMapShape]) -> int:
    """Check that all shapes share the same spatial rank and return it."""
    ranks = {shape.rank for shape in shapes}
    if not ranks:
        raise ShapeError("no shapes provided")
    if len(ranks) != 1:
        raise ShapeError(f"mixed spatial ranks: {sorted(ranks)}")
    return ranks.pop()
