"""Network and GAN-model containers.

A :class:`Network` is an ordered stack of :class:`~repro.nn.layers.LayerSpec`
objects together with its input shape.  It resolves the shape chain once at
construction time and exposes per-layer views (:class:`LayerBinding`) that
pair each layer with its concrete input/output shapes — exactly what the
performance and energy models need.

A :class:`GANModel` is simply a named pair of networks: the generator and the
discriminator, mirroring Figure 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import NetworkError
from .layers import ConvLayer, LayerSpec, TransposedConvLayer
from .shapes import FeatureMapShape
from .zero_analysis import LayerZeroStats, layer_zero_stats


@dataclass(frozen=True)
class LayerBinding:
    """A layer bound to its concrete input and output shapes."""

    index: int
    layer: LayerSpec
    input_shape: FeatureMapShape
    output_shape: FeatureMapShape

    @property
    def name(self) -> str:
        return self.layer.name

    def __hash__(self) -> int:
        # Cached: the layer-memo fingerprint cache hashes bindings on every
        # warm lookup, and the generated dataclass hash re-walks the nested
        # layer/shape tuples each time.  Bindings are immutable, so the value
        # is computed once (cached_property stores it on the instance
        # __dict__, bypassing the frozen __setattr__).
        return self._cached_hash

    @cached_property
    def _cached_hash(self) -> int:
        return hash((self.index, self.layer, self.input_shape, self.output_shape))

    # The work properties are cached per binding: the performance models read
    # them several times per estimate and bindings are immutable.
    @cached_property
    def total_macs(self) -> int:
        return self.layer.total_macs(self.input_shape)

    @cached_property
    def consequential_macs(self) -> int:
        return self.layer.consequential_macs(self.input_shape)

    @cached_property
    def weight_count(self) -> int:
        return self.layer.weight_count(self.input_shape)

    @property
    def is_transposed(self) -> bool:
        return self.layer.is_transposed

    @property
    def is_convolutional(self) -> bool:
        return self.layer.is_convolutional

    def zero_stats(self) -> LayerZeroStats:
        return layer_zero_stats(self.layer, self.input_shape)


class Network:
    """An ordered stack of layers with a resolved shape chain."""

    def __init__(
        self,
        name: str,
        input_shape: FeatureMapShape,
        layers: Sequence[LayerSpec],
    ) -> None:
        if not name:
            raise NetworkError("network name must be non-empty")
        if not layers:
            raise NetworkError(f"network '{name}' has no layers")
        names = [layer.name for layer in layers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise NetworkError(
                f"network '{name}' has duplicate layer names: {sorted(duplicates)}"
            )
        self._name = name
        self._input_shape = input_shape
        self._layers = tuple(layers)
        self._bindings = self._resolve_shapes()

    def _resolve_shapes(self) -> Tuple[LayerBinding, ...]:
        bindings: List[LayerBinding] = []
        shape = self._input_shape
        for index, layer in enumerate(self._layers):
            try:
                out = layer.output_shape(shape)
            except Exception as exc:  # re-raise with context
                raise NetworkError(
                    f"network '{self._name}': layer {index} ('{layer.name}') "
                    f"rejected input shape {shape}: {exc}"
                ) from exc
            bindings.append(
                LayerBinding(index=index, layer=layer, input_shape=shape, output_shape=out)
            )
            shape = out
        return tuple(bindings)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def input_shape(self) -> FeatureMapShape:
        return self._input_shape

    @property
    def output_shape(self) -> FeatureMapShape:
        return self._bindings[-1].output_shape

    @property
    def layers(self) -> Tuple[LayerSpec, ...]:
        return self._layers

    @property
    def bindings(self) -> Tuple[LayerBinding, ...]:
        return self._bindings

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[LayerBinding]:
        return iter(self._bindings)

    def binding(self, layer_name: str) -> LayerBinding:
        """Look up a layer binding by layer name."""
        for binding in self._bindings:
            if binding.name == layer_name:
                return binding
        raise NetworkError(f"network '{self._name}' has no layer '{layer_name}'")

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def conv_layer_count(self) -> int:
        """Number of conventional convolution layers."""
        return sum(1 for b in self._bindings if isinstance(b.layer, ConvLayer))

    def transposed_conv_layer_count(self) -> int:
        """Number of transposed-convolution layers."""
        return sum(1 for b in self._bindings if isinstance(b.layer, TransposedConvLayer))

    def total_macs(self) -> int:
        """Dense MACs across the whole network."""
        return sum(b.total_macs for b in self._bindings)

    def consequential_macs(self) -> int:
        """Consequential MACs across the whole network."""
        return sum(b.consequential_macs for b in self._bindings)

    def total_weights(self) -> int:
        """Total weight footprint (scalar count) across the network."""
        return sum(b.weight_count for b in self._bindings)

    def convolutional_bindings(self) -> Tuple[LayerBinding, ...]:
        """Bindings of conv/tconv layers only (the compute-dominant layers)."""
        return tuple(b for b in self._bindings if b.is_convolutional)

    def transposed_bindings(self) -> Tuple[LayerBinding, ...]:
        """Bindings of transposed-convolution layers only."""
        return tuple(b for b in self._bindings if b.is_transposed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(name={self._name!r}, layers={len(self._layers)}, "
            f"input={self._input_shape}, output={self.output_shape})"
        )


@dataclass(frozen=True)
class GANModel:
    """A GAN: a generative network and a discriminative network.

    Attributes
    ----------
    name:
        Model name as used in the paper (e.g. ``"DCGAN"``).
    generator / discriminator:
        The two constituent networks.
    year:
        Publication year of the GAN (Table I).
    description:
        One-line description of the application domain (Table I).
    discriminator_conv_only:
        If True, only the discriminator's conventional-convolution layers are
        counted in whole-model runtime/energy (the paper applies this rule to
        MAGAN, whose discriminator is an autoencoder containing TConv layers).
    """

    name: str
    generator: Network
    discriminator: Network
    year: int = 0
    description: str = ""
    discriminator_conv_only: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("GAN model name must be non-empty")

    # ------------------------------------------------------------------
    # Table I style summaries
    # ------------------------------------------------------------------
    def layer_counts(self) -> dict:
        """Conv/TConv counts per sub-model, as reported in Table I."""
        return {
            "generator_conv": self.generator.conv_layer_count(),
            "generator_tconv": self.generator.transposed_conv_layer_count(),
            "discriminator_conv": self.discriminator.conv_layer_count(),
            "discriminator_tconv": self.discriminator.transposed_conv_layer_count(),
        }

    def generator_tconv_inconsequential_fraction(self) -> float:
        """Figure 1 quantity: inconsequential fraction over generator TConvs."""
        total = 0
        consequential = 0
        for binding in self.generator.transposed_bindings():
            total += binding.total_macs
            consequential += binding.consequential_macs
        if total == 0:
            return 0.0
        return (total - consequential) / total

    def discriminator_bindings_for_accounting(self) -> Tuple[LayerBinding, ...]:
        """Discriminator bindings included in runtime/energy accounting."""
        bindings = self.discriminator.convolutional_bindings()
        if self.discriminator_conv_only:
            bindings = tuple(b for b in bindings if not b.is_transposed)
        return bindings

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = self.layer_counts()
        return (
            f"GANModel(name={self.name!r}, "
            f"gen={counts['generator_conv']}c/{counts['generator_tconv']}t, "
            f"disc={counts['discriminator_conv']}c/{counts['discriminator_tconv']}t)"
        )
