"""NumPy functional reference for convolution and transposed convolution.

These routines are the "ground truth" the cycle-level GANAX machine and the
dataflow transformations are validated against.  Two independent formulations
of the transposed convolution are provided:

* :func:`transposed_conv2d` — the direct scatter-add ("fractionally strided")
  definition, and
* :func:`transposed_conv2d_via_zero_insertion` — the paper's formulation:
  insert zeros, pad the border, then run a unit-stride convolution with the
  spatially flipped kernel.

Property-based tests assert the two agree, which pins down the zero-insertion
geometry used throughout the performance models.

Layouts: activations are ``(C, H, W)`` or ``(C, D, H, W)``, weights are
``(M, C, kH, kW)`` / ``(M, C, kD, kH, kW)`` where ``M`` is the number of
output channels and ``C`` the number of input channels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError


def _pair(value: int | Tuple[int, int]) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    if len(value) != 2:
        raise ShapeError(f"expected a scalar or a pair, got {value!r}")
    return (int(value[0]), int(value[1]))


# ----------------------------------------------------------------------
# Zero insertion
# ----------------------------------------------------------------------
def insert_zeros_2d(x: np.ndarray, stride: int | Tuple[int, int]) -> np.ndarray:
    """Insert ``stride - 1`` zeros between rows/columns of ``(C, H, W)`` input."""
    if x.ndim != 3:
        raise ShapeError(f"insert_zeros_2d expects (C, H, W), got shape {x.shape}")
    sh, sw = _pair(stride)
    if sh <= 0 or sw <= 0:
        raise ShapeError(f"stride must be positive, got {(sh, sw)}")
    c, h, w = x.shape
    out = np.zeros((c, (h - 1) * sh + 1, (w - 1) * sw + 1), dtype=x.dtype)
    out[:, ::sh, ::sw] = x
    return out


def insert_zeros_nd(x: np.ndarray, stride: Tuple[int, ...]) -> np.ndarray:
    """Insert zeros along every spatial dimension of a ``(C, *spatial)`` array."""
    if x.ndim < 2:
        raise ShapeError(f"expected (C, *spatial), got shape {x.shape}")
    spatial = x.shape[1:]
    if len(stride) != len(spatial):
        raise ShapeError(
            f"stride rank {len(stride)} does not match spatial rank {len(spatial)}"
        )
    if any(s <= 0 for s in stride):
        raise ShapeError(f"stride must be positive, got {stride}")
    out_spatial = tuple((e - 1) * s + 1 for e, s in zip(spatial, stride))
    out = np.zeros((x.shape[0], *out_spatial), dtype=x.dtype)
    slices = (slice(None),) + tuple(slice(None, None, s) for s in stride)
    out[slices] = x
    return out


def genuine_mask_2d(
    input_spatial: Tuple[int, int],
    stride: int | Tuple[int, int],
    kernel: int | Tuple[int, int],
    padding: int | Tuple[int, int],
) -> np.ndarray:
    """Boolean mask of genuine positions over the expanded (padded) input.

    The expanded input is what the unit-stride convolution window slides over
    during a transposed convolution: border zeros of ``kernel - 1 - padding``
    on the leading edges, the zero-inserted input, and border zeros on the
    trailing edges sized so that the output matches the standard formula.
    """
    h, w = input_spatial
    sh, sw = _pair(stride)
    kh, kw = _pair(kernel)
    ph, pw = _pair(padding)
    border_h, border_w = kh - 1 - ph, kw - 1 - pw
    if border_h < 0 or border_w < 0:
        raise ShapeError("padding must not exceed kernel - 1")
    out_h = (h - 1) * sh - 2 * ph + kh
    out_w = (w - 1) * sw - 2 * pw + kw
    exp_h, exp_w = out_h + kh - 1, out_w + kw - 1
    mask = np.zeros((exp_h, exp_w), dtype=bool)
    rows = border_h + sh * np.arange(h)
    cols = border_w + sw * np.arange(w)
    rows = rows[rows < exp_h]
    cols = cols[cols < exp_w]
    mask[np.ix_(rows, cols)] = True
    return mask


# ----------------------------------------------------------------------
# Conventional convolution
# ----------------------------------------------------------------------
def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int | Tuple[int, int] = 1,
    padding: int | Tuple[int, int] = 0,
) -> np.ndarray:
    """Dense 2-D convolution (cross-correlation) reference.

    Parameters mirror the usual deep-learning convention: no kernel flip is
    applied (cross-correlation), which matches how the workloads and the
    accelerator treat weights.
    """
    if x.ndim != 3:
        raise ShapeError(f"conv2d expects input (C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ShapeError(f"conv2d expects weight (M, C, kH, kW), got {weight.shape}")
    c, h, w = x.shape
    m, wc, kh, kw = weight.shape
    if wc != c:
        raise ShapeError(f"channel mismatch: input has {c}, weight expects {wc}")
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    if h + 2 * ph < kh or w + 2 * pw < kw:
        raise ShapeError("kernel larger than padded input")
    padded = np.pad(x, ((0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((m, out_h, out_w), dtype=np.result_type(x, weight))
    for oy in range(out_h):
        iy = oy * sh
        for ox in range(out_w):
            ix = ox * sw
            window = padded[:, iy : iy + kh, ix : ix + kw]
            out[:, oy, ox] = np.tensordot(weight, window, axes=([1, 2, 3], [0, 1, 2]))
    return out


def conv3d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int | Tuple[int, int, int] = 1,
    padding: int | Tuple[int, int, int] = 0,
) -> np.ndarray:
    """Dense 3-D convolution reference for voxel workloads (3D-GAN)."""
    if x.ndim != 4:
        raise ShapeError(f"conv3d expects input (C, D, H, W), got {x.shape}")
    if weight.ndim != 5:
        raise ShapeError(f"conv3d expects weight (M, C, kD, kH, kW), got {weight.shape}")
    c = x.shape[0]
    m, wc = weight.shape[0], weight.shape[1]
    if wc != c:
        raise ShapeError(f"channel mismatch: input has {c}, weight expects {wc}")
    if isinstance(stride, int):
        stride = (stride, stride, stride)
    if isinstance(padding, int):
        padding = (padding, padding, padding)
    kd, kh, kw = weight.shape[2:]
    padded = np.pad(
        x,
        ((0, 0), (padding[0],) * 2, (padding[1],) * 2, (padding[2],) * 2),
    )
    out_d = (x.shape[1] + 2 * padding[0] - kd) // stride[0] + 1
    out_h = (x.shape[2] + 2 * padding[1] - kh) // stride[1] + 1
    out_w = (x.shape[3] + 2 * padding[2] - kw) // stride[2] + 1
    if out_d <= 0 or out_h <= 0 or out_w <= 0:
        raise ShapeError("kernel larger than padded input")
    out = np.zeros((m, out_d, out_h, out_w), dtype=np.result_type(x, weight))
    for od in range(out_d):
        for oy in range(out_h):
            for ox in range(out_w):
                window = padded[
                    :,
                    od * stride[0] : od * stride[0] + kd,
                    oy * stride[1] : oy * stride[1] + kh,
                    ox * stride[2] : ox * stride[2] + kw,
                ]
                out[:, od, oy, ox] = np.tensordot(
                    weight, window, axes=([1, 2, 3, 4], [0, 1, 2, 3])
                )
    return out


# ----------------------------------------------------------------------
# Transposed convolution
# ----------------------------------------------------------------------
def transposed_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int | Tuple[int, int] = 1,
    padding: int | Tuple[int, int] = 0,
    output_padding: int | Tuple[int, int] = 0,
) -> np.ndarray:
    """Direct scatter-add 2-D transposed convolution reference.

    ``weight`` has layout ``(C_in, M_out, kH, kW)`` following the usual
    transposed-convolution convention (the transpose of the conv weight).
    """
    if x.ndim != 3:
        raise ShapeError(f"transposed_conv2d expects (C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ShapeError(
            f"transposed_conv2d expects weight (C, M, kH, kW), got {weight.shape}"
        )
    c, h, w = x.shape
    wc, m, kh, kw = weight.shape
    if wc != c:
        raise ShapeError(f"channel mismatch: input has {c}, weight expects {wc}")
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    oph, opw = _pair(output_padding)
    out_h = (h - 1) * sh - 2 * ph + kh + oph
    out_w = (w - 1) * sw - 2 * pw + kw + opw
    if out_h <= 0 or out_w <= 0:
        raise ShapeError("transposed convolution output has non-positive extent")
    full = np.zeros((m, out_h + 2 * ph, out_w + 2 * pw), dtype=np.result_type(x, weight))
    for iy in range(h):
        for ix in range(w):
            contrib = np.tensordot(x[:, iy, ix], weight, axes=([0], [0]))
            full[:, iy * sh : iy * sh + kh, ix * sw : ix * sw + kw] += contrib
    return full[:, ph : ph + out_h, pw : pw + out_w]


def transposed_conv2d_via_zero_insertion(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int | Tuple[int, int] = 1,
    padding: int | Tuple[int, int] = 0,
    output_padding: int | Tuple[int, int] = 0,
) -> np.ndarray:
    """Transposed convolution by zero-insertion + unit-stride convolution.

    This is the formulation the GANAX paper analyses: the input is expanded by
    inserting zeros, the border is padded, and a stride-1 convolution with the
    spatially *flipped* kernel is applied.  The result is identical to
    :func:`transposed_conv2d`.
    """
    if x.ndim != 3 or weight.ndim != 4:
        raise ShapeError("expected input (C, H, W) and weight (C, M, kH, kW)")
    c, h, w = x.shape
    wc, m, kh, kw = weight.shape
    if wc != c:
        raise ShapeError(f"channel mismatch: input has {c}, weight expects {wc}")
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    oph, opw = _pair(output_padding)
    if kh - 1 - ph < 0 or kw - 1 - pw < 0:
        raise ShapeError("padding must not exceed kernel - 1")
    expanded = insert_zeros_2d(x, (sh, sw))
    pad_top, pad_left = kh - 1 - ph, kw - 1 - pw
    pad_bottom, pad_right = kh - 1 - ph + oph, kw - 1 - pw + opw
    expanded = np.pad(expanded, ((0, 0), (pad_top, pad_bottom), (pad_left, pad_right)))
    # Convert (C, M, kH, kW) transposed weights into flipped conv weights of
    # layout (M, C, kH, kW).
    conv_weight = np.flip(np.flip(weight, axis=2), axis=3).transpose(1, 0, 2, 3)
    return conv2d(expanded, conv_weight, stride=1, padding=0)


def transposed_conv3d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int | Tuple[int, int, int] = 1,
    padding: int | Tuple[int, int, int] = 0,
) -> np.ndarray:
    """Direct scatter-add 3-D transposed convolution reference (3D-GAN)."""
    if x.ndim != 4:
        raise ShapeError(f"transposed_conv3d expects (C, D, H, W), got {x.shape}")
    if weight.ndim != 5:
        raise ShapeError(
            f"transposed_conv3d expects weight (C, M, kD, kH, kW), got {weight.shape}"
        )
    c = x.shape[0]
    wc, m = weight.shape[0], weight.shape[1]
    if wc != c:
        raise ShapeError(f"channel mismatch: input has {c}, weight expects {wc}")
    if isinstance(stride, int):
        stride = (stride, stride, stride)
    if isinstance(padding, int):
        padding = (padding, padding, padding)
    kd, kh, kw = weight.shape[2:]
    d, h, w = x.shape[1:]
    out_d = (d - 1) * stride[0] - 2 * padding[0] + kd
    out_h = (h - 1) * stride[1] - 2 * padding[1] + kh
    out_w = (w - 1) * stride[2] - 2 * padding[2] + kw
    if out_d <= 0 or out_h <= 0 or out_w <= 0:
        raise ShapeError("transposed convolution output has non-positive extent")
    full = np.zeros(
        (m, out_d + 2 * padding[0], out_h + 2 * padding[1], out_w + 2 * padding[2]),
        dtype=np.result_type(x, weight),
    )
    for iz in range(d):
        for iy in range(h):
            for ix in range(w):
                contrib = np.tensordot(x[:, iz, iy, ix], weight, axes=([0], [0]))
                full[
                    :,
                    iz * stride[0] : iz * stride[0] + kd,
                    iy * stride[1] : iy * stride[1] + kh,
                    ix * stride[2] : ix * stride[2] + kw,
                ] += contrib
    return full[
        :,
        padding[0] : padding[0] + out_d,
        padding[1] : padding[1] + out_h,
        padding[2] : padding[2] + out_w,
    ]


# ----------------------------------------------------------------------
# Misc reference ops
# ----------------------------------------------------------------------
def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
    """Leaky ReLU with the slope used by DCGAN-style discriminators."""
    return np.where(x >= 0, x, negative_slope * x)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent, the canonical generator output activation."""
    return np.tanh(x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid, the canonical discriminator output activation."""
    return 1.0 / (1.0 + np.exp(-x))
