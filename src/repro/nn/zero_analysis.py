"""Structural analysis of zero-insertion in transposed convolution layers.

This module answers, for a given transposed-convolution layer, the questions
that drive both the paper's motivation (Figure 1) and the GANAX dataflow
(Section II):

* how many multiply-adds of the dense (zero-inserted) convolution are
  *inconsequential* because one operand is an inserted zero,
* which filter rows are consequential for which output rows (the *row
  patterns*), and
* how many distinct row patterns exist (equal to the vertical stride), which
  determines how many distinct µop sequences — and thus how much MIMD-ness —
  the layer needs.

Two implementations are provided: an exact arithmetic one used by the models
and an explicit mask-based one used to cross-check it in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import LayerError
from .layers import ConvLayer, LayerSpec, TransposedConvLayer
from .shapes import FeatureMapShape


@dataclass(frozen=True)
class RowPattern:
    """The computation pattern of one output row of a transposed convolution.

    Attributes
    ----------
    phase:
        Row phase, i.e. the output row index modulo the vertical stride after
        accounting for the border offset.  Rows with equal phase share the
        same pattern.
    consequential_filter_rows:
        Indices of filter rows that touch genuine input values for rows of
        this phase (interior rows; border rows may see a truncated subset).
    taps_per_output_column:
        For each output-column phase, the number of consequential kernel
        columns, i.e. the fine-grain work per output element.
    """

    phase: int
    consequential_filter_rows: Tuple[int, ...]
    taps_per_output_column: Tuple[int, ...]

    @property
    def filter_rows_used(self) -> int:
        """Number of filter rows contributing to rows of this phase."""
        return len(self.consequential_filter_rows)

    @property
    def mean_column_taps(self) -> float:
        """Average consequential kernel columns per output element."""
        if not self.taps_per_output_column:
            return 0.0
        return sum(self.taps_per_output_column) / len(self.taps_per_output_column)


@dataclass(frozen=True)
class TransposedConvAnalysis:
    """Aggregate structural statistics for one transposed-convolution layer."""

    layer_name: str
    input_shape: FeatureMapShape
    output_shape: FeatureMapShape
    total_macs: int
    consequential_macs: int
    row_patterns: Tuple[RowPattern, ...]
    rows_per_pattern: Tuple[int, ...]

    @property
    def inconsequential_macs(self) -> int:
        return self.total_macs - self.consequential_macs

    @property
    def inconsequential_fraction(self) -> float:
        if self.total_macs == 0:
            return 0.0
        return self.inconsequential_macs / self.total_macs

    @property
    def num_patterns(self) -> int:
        """Number of distinct row computation patterns (== vertical stride)."""
        return len(self.row_patterns)


# ----------------------------------------------------------------------
# Exact arithmetic analysis
# ----------------------------------------------------------------------
def analyze_transposed_conv(
    layer: TransposedConvLayer, input_shape: FeatureMapShape
) -> TransposedConvAnalysis:
    """Exact structural analysis of a transposed-convolution layer."""
    if not isinstance(layer, TransposedConvLayer):
        raise LayerError(f"{layer.name} is not a transposed convolution")
    out = layer.output_shape(input_shape)

    # Row patterns are defined along the second-to-last spatial dimension for
    # rank >= 2 layers (the "height"); rank-1 layers use their only dimension.
    row_dim = max(layer.rank - 2, 0)
    col_dim = layer.rank - 1

    stride_rows = layer.stride[row_dim]
    kernel_rows = layer.kernel[row_dim]
    padding_rows = layer.padding[row_dim]
    border_rows = kernel_rows - 1 - padding_rows

    col_taps = layer.consequential_taps_along_dim(input_shape, col_dim)
    col_phase_taps = _phase_taps(col_taps, layer.stride[col_dim])

    out_rows = out.spatial[row_dim]
    patterns: List[RowPattern] = []
    rows_counts: List[int] = []
    # Only phases that actually occur in the output contribute a pattern (for
    # very small outputs the number of patterns is bounded by the row count).
    for phase in range(min(stride_rows, out_rows)):
        filter_rows = tuple(
            k
            for k in range(kernel_rows)
            if (phase + k - border_rows) % stride_rows == 0
        )
        patterns.append(
            RowPattern(
                phase=phase,
                consequential_filter_rows=filter_rows,
                taps_per_output_column=col_phase_taps,
            )
        )
        rows_counts.append(_count_rows_with_phase(out_rows, stride_rows, phase))
    rows_per_pattern = tuple(rows_counts)

    return TransposedConvAnalysis(
        layer_name=layer.name,
        input_shape=input_shape,
        output_shape=out,
        total_macs=layer.total_macs(input_shape),
        consequential_macs=layer.consequential_macs(input_shape),
        row_patterns=tuple(patterns),
        rows_per_pattern=rows_per_pattern,
    )


@lru_cache(maxsize=4096)
def _phase_taps(taps: Tuple[int, ...], stride: int) -> Tuple[int, ...]:
    """Representative (interior) tap count per output-column phase.

    Interior columns of one phase all share the same count; borders may be
    truncated, so the per-phase maximum is the interior value.  Vectorized
    (one grouped-maximum over the whole tap row) and memoized per
    (taps, stride): distinct layers of the same geometry share one entry.
    """
    counts = np.asarray(taps, dtype=np.int64)
    maxima = np.zeros(stride, dtype=np.int64)  # phases with no columns stay 0
    np.maximum.at(maxima, np.arange(len(taps), dtype=np.int64) % stride, counts)
    return tuple(int(value) for value in maxima)


def _count_rows_with_phase(extent: int, stride: int, phase: int) -> int:
    """Number of output rows in [0, extent) whose index % stride == phase."""
    if phase >= extent:
        return 0
    return (extent - 1 - phase) // stride + 1


# ----------------------------------------------------------------------
# Mask-based (brute force) counting used for validation
# ----------------------------------------------------------------------
def count_consequential_macs_bruteforce(
    layer: TransposedConvLayer, input_shape: FeatureMapShape
) -> int:
    """Count consequential MACs by materialising the genuine-value mask.

    This is O(output volume * kernel volume) and intended for small layers in
    tests; the exact arithmetic in :meth:`TransposedConvLayer.consequential_macs`
    must agree with it.
    """
    if layer.rank not in (1, 2, 3):
        raise LayerError("brute-force counting supports ranks 1-3 only")
    out = layer.output_shape(input_shape)
    expanded = layer.expanded_spatial(input_shape)

    mask = np.zeros(expanded, dtype=bool)
    genuine_coords = []
    for dim in range(layer.rank):
        border = layer.kernel[dim] - 1 - layer.padding[dim]
        coords = border + layer.stride[dim] * np.arange(input_shape.spatial[dim])
        coords = coords[coords < expanded[dim]]
        genuine_coords.append(coords)
    mask[np.ix_(*genuine_coords)] = True

    count = 0
    for out_index in np.ndindex(*out.spatial):
        window = mask[
            tuple(
                slice(o, o + k) for o, k in zip(out_index, layer.kernel)
            )
        ]
        count += int(window.sum())
    return count * out.channels * input_shape.channels


# ----------------------------------------------------------------------
# Network-level aggregation (Figure 1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayerZeroStats:
    """Per-layer structural statistics used in Figure 1 style summaries."""

    layer_name: str
    is_transposed: bool
    total_macs: int
    consequential_macs: int

    @property
    def inconsequential_macs(self) -> int:
        return self.total_macs - self.consequential_macs

    @property
    def inconsequential_fraction(self) -> float:
        if self.total_macs == 0:
            return 0.0
        return self.inconsequential_macs / self.total_macs


def layer_zero_stats(layer: LayerSpec, input_shape: FeatureMapShape) -> LayerZeroStats:
    """Structural zero statistics for any layer type."""
    return LayerZeroStats(
        layer_name=layer.name,
        is_transposed=layer.is_transposed,
        total_macs=layer.total_macs(input_shape),
        consequential_macs=layer.consequential_macs(input_shape),
    )


def transposed_conv_inconsequential_fraction(
    layers_with_shapes: Sequence[Tuple[LayerSpec, FeatureMapShape]],
) -> float:
    """Fraction of dense MACs in TConv layers that are inconsequential.

    This is the quantity plotted per GAN model in Figure 1 of the paper: the
    numerator and denominator are summed over the transposed-convolution
    layers only.
    """
    total = 0
    consequential = 0
    for layer, input_shape in layers_with_shapes:
        if not layer.is_transposed:
            continue
        total += layer.total_macs(input_shape)
        consequential += layer.consequential_macs(input_shape)
    if total == 0:
        return 0.0
    return (total - consequential) / total


def distinct_row_patterns(
    layer: TransposedConvLayer, input_shape: FeatureMapShape
) -> Dict[Tuple[int, ...], int]:
    """Map from (consequential filter rows) pattern -> number of output rows.

    The key observation of Section II is that the number of distinct patterns
    equals the vertical stride, independent of the feature-map size.
    """
    analysis = analyze_transposed_conv(layer, input_shape)
    result: Dict[Tuple[int, ...], int] = {}
    for pattern, count in zip(analysis.row_patterns, analysis.rows_per_pattern):
        key = pattern.consequential_filter_rows
        result[key] = result.get(key, 0) + count
    return result
