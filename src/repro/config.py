"""Architecture configuration for the GANAX and EYERISS simulators.

The paper evaluates a GANAX configuration of 16 Processing Vectors (PVs), each
with 16 Processing Engines (PEs), clocked at 500 MHz, and compares it against
an EYERISS baseline with the same number of PEs and the same on-chip memory
sizes (paper Section V, "Architecture configurations").

:class:`ArchitectureConfig` captures every architectural parameter that the
performance and energy models consume.  The default instance reproduces the
paper's configuration; tests and ablation benchmarks construct variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping

from .errors import ConfigurationError

#: Clock frequency used for both accelerators in the paper (Hz).
DEFAULT_FREQUENCY_HZ: float = 500e6

#: Data width of activations, weights and partial sums (bits).
DEFAULT_DATA_BITS: int = 16


def _canonical_value(value: Any) -> Any:
    """Normalize a field value for canonical serialization.

    Python compares ``64 == 64.0`` as equal, so two equal configs may hold
    the same number as int in one and float in the other (e.g. a sweep over
    ``[16, 64]`` vs the float default ``64.0``).  Canonical JSON would
    serialize them differently and break the fingerprint contract that equal
    configs hash equal; collapsing integral floats to int restores it.
    Bools are left untouched (bool is an int subclass but serializes as
    true/false).
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


@dataclass(frozen=True)
class ArchitectureConfig:
    """Parameters shared by the GANAX and EYERISS models.

    Attributes
    ----------
    num_pvs:
        Number of Processing Vectors (rows of the PE array).  Each PV shares
        one local µop buffer.
    pes_per_pv:
        Number of Processing Engines per PV (columns of the PE array).
    frequency_hz:
        Clock frequency in Hz.  Identical for GANAX and EYERISS in the paper.
    data_bits:
        Width of a data word (activations, weights, partial sums).
    input_register_entries / partial_sum_register_entries / weight_sram_entries:
        Per-PE storage sizes in 16-bit words (Table III).
    local_uop_entries:
        Entries in each PV's local µop buffer (16 in the paper).
    global_uop_entries / global_uop_bits:
        Global µop buffer geometry (32 entries × 64 bits in the paper).
    pv_index_bits:
        Bits of the global µop used to index one local µop buffer (4 bits).
    global_data_buffer_bytes / global_instruction_buffer_bytes:
        Shared on-chip buffer sizes (108 KB and 27 KB in Table III).
    dram_bandwidth_bytes_per_cycle:
        Sustained off-chip bandwidth available to the accelerator, expressed
        per accelerator cycle.  Used as a roofline bound on layer runtime.
        The default (64 B/cycle at 500 MHz = 32 GB/s) keeps the evaluated
        layers compute-bound, matching the paper's analytical comparison; the
        DRAM roofline ablation benchmark sweeps this parameter.
    address_fifo_depth / uop_fifo_depth:
        Depths of the per-PE decoupling FIFOs (8×32-bit I/O FIFOs in
        Table III; the µop FIFO uses the same depth).
    index_generators_per_pe:
        Strided µindex generators per access µ-engine (input, weight, output).
    mimd_dispatch_overhead_cycles:
        Extra cycles charged per MIMD-SIMD global µop dispatch (local buffer
        lookup + broadcast); amortised over the repeated execute µops.
    zero_gating_energy_fraction:
        Fraction of the full MAC energy consumed by an EYERISS PE when data
        gating suppresses a multiply on a zero operand.  EYERISS saves energy
        but not cycles on gated operations.
    ganax_target_utilization:
        Upper bound on the PE-array utilization GANAX can reach after the
        output/filter row reorganization (the paper reports ≈90%).
    """

    num_pvs: int = 16
    pes_per_pv: int = 16
    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    data_bits: int = DEFAULT_DATA_BITS

    input_register_entries: int = 12
    partial_sum_register_entries: int = 24
    weight_sram_entries: int = 224
    local_uop_entries: int = 16
    global_uop_entries: int = 32
    global_uop_bits: int = 64
    pv_index_bits: int = 4
    global_data_buffer_bytes: int = 108 * 1024
    global_instruction_buffer_bytes: int = 27 * 1024

    dram_bandwidth_bytes_per_cycle: float = 64.0
    address_fifo_depth: int = 8
    uop_fifo_depth: int = 8
    index_generators_per_pe: int = 3

    mimd_dispatch_overhead_cycles: int = 1
    zero_gating_energy_fraction: float = 0.1
    ganax_target_utilization: float = 0.92

    def __post_init__(self) -> None:
        if self.num_pvs <= 0 or self.pes_per_pv <= 0:
            raise ConfigurationError(
                "PE array dimensions must be positive, got "
                f"{self.num_pvs} PVs x {self.pes_per_pv} PEs"
            )
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        if self.data_bits <= 0:
            raise ConfigurationError("data_bits must be positive")
        if self.local_uop_entries <= 0 or self.global_uop_entries <= 0:
            raise ConfigurationError("µop buffer sizes must be positive")
        if not (0.0 <= self.zero_gating_energy_fraction <= 1.0):
            raise ConfigurationError(
                "zero_gating_energy_fraction must lie in [0, 1]"
            )
        if not (0.0 < self.ganax_target_utilization <= 1.0):
            raise ConfigurationError(
                "ganax_target_utilization must lie in (0, 1]"
            )
        if self.dram_bandwidth_bytes_per_cycle <= 0:
            raise ConfigurationError("dram_bandwidth_bytes_per_cycle must be positive")
        if self.pv_index_bits <= 0:
            raise ConfigurationError("pv_index_bits must be positive")
        if (1 << self.pv_index_bits) < self.local_uop_entries:
            raise ConfigurationError(
                f"{self.pv_index_bits}-bit PV index cannot address "
                f"{self.local_uop_entries} local µop entries"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        """Total number of processing engines in the array."""
        return self.num_pvs * self.pes_per_pv

    @property
    def data_bytes(self) -> int:
        """Size of one data word in bytes."""
        return (self.data_bits + 7) // 8

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def peak_macs_per_cycle(self) -> int:
        """Peak multiply-accumulate throughput of the array (1 MAC/PE/cycle)."""
        return self.num_pes

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count into wall-clock seconds at this frequency."""
        return cycles * self.cycle_time_s

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def with_updates(self, **changes: Any) -> "ArchitectureConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        return replace(self, **changes)

    def to_mapping(self) -> Dict[str, Any]:
        """All configuration fields as a plain dict (inverse of ``from_mapping``).

        The mapping contains only declared dataclass fields with numerically
        normalized values (integral floats collapse to int), so it is the
        canonical serialization that :func:`repro.analysis.serialization.
        config_fingerprint` hashes: equal configs always map equal.
        """
        return {f.name: _canonical_value(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def paper_default(cls) -> "ArchitectureConfig":
        """The configuration evaluated in the paper (16x16 PEs @ 500 MHz)."""
        return cls()

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ArchitectureConfig":
        """Build a configuration from a plain mapping (e.g. parsed JSON)."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(mapping) - known
        if unknown:
            raise ConfigurationError(
                f"unknown configuration keys: {sorted(unknown)}"
            )
        return cls(**dict(mapping))


@dataclass(frozen=True)
class SimulationOptions:
    """Options controlling a whole-model simulation run.

    Attributes
    ----------
    batch_size:
        Number of inputs processed per run.  The paper evaluates inference of
        a single generated sample, so the default is 1.
    include_discriminator:
        Whether the discriminator layers are simulated alongside the
        generator (needed for Figure 9).
    magan_discriminator_conv_only:
        The paper notes that for MAGAN's discriminator only the convolution
        layers are counted, because its discriminator is an autoencoder that
        also contains transposed-convolution layers.
    ganax_zero_skipping:
        Whether the GANAX model skips the inserted-zero operations of
        transposed convolutions through its strided µindex generators (the
        paper's design).  Disabling it models the ablated dense machine that
        executes the zero-inserted input like the baseline while still paying
        the MIMD µop dispatch — the ``"ganax-noskip"`` entry of
        :mod:`repro.accelerators` forces this flag off.
    schedule:
        Canonical spec string of the :class:`~repro.schedule.ScheduleSpec`
        lowering each layer (see :mod:`repro.schedule`).  Resolved and
        canonicalized at construction, so unknown spec strings fail here and
        aliases of the same registered schedule compare (and fingerprint)
        equal.  Models without µop machinery collapse it to ``"default"``
        via ``canonical_options``.
    """

    batch_size: int = 1
    include_discriminator: bool = True
    magan_discriminator_conv_only: bool = True
    ganax_zero_skipping: bool = True
    schedule: str = "default"

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if not isinstance(self.schedule, str) or not self.schedule.strip():
            raise ConfigurationError("schedule must be a non-empty spec string")
        if self.schedule != "default":
            # Late import: repro.schedule depends only on repro.errors, so
            # this cannot cycle; resolving here canonicalizes family points
            # (``colmajor`` -> ``colmajor@tile64``) and rejects typos at the
            # options boundary instead of deep inside a simulation.
            from .schedule import canonical_schedule_name

            object.__setattr__(self, "schedule", canonical_schedule_name(self.schedule))

    def with_updates(self, **changes: Any) -> "SimulationOptions":
        """Return a copy of these options with ``changes`` applied."""
        return replace(self, **changes)

    def to_mapping(self) -> Dict[str, Any]:
        """All option fields as a plain dict (inverse of ``from_mapping``).

        Values are numerically normalized like
        :meth:`ArchitectureConfig.to_mapping`, so equal options map equal.
        """
        return {f.name: _canonical_value(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "SimulationOptions":
        """Build options from a plain mapping (e.g. parsed JSON)."""
        known = {f.name for f in fields(cls)}
        unknown = set(mapping) - known
        if unknown:
            raise ConfigurationError(f"unknown option keys: {sorted(unknown)}")
        return cls(**dict(mapping))


DEFAULT_CONFIG = ArchitectureConfig.paper_default()
DEFAULT_OPTIONS = SimulationOptions()
