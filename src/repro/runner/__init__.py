"""Shared simulation execution layer: jobs, backends, caching, streaming.

See ``README.md`` in this directory for the architecture and usage guide —
including the streaming API (``SimulationRunner.submit`` ->
``BatchHandle.as_completed`` plus the typed ``RunnerEvent`` stream).
"""

from .backends import (
    BACKENDS,
    AsyncioBackend,
    DeferredJobFuture,
    ExecutionBackend,
    JobFuture,
    ProcessPoolBackend,
    SerialBackend,
    backend_names,
    get_backend,
)
from .cache import (
    LAYER_MEMO_DIR_ENV,
    LAYER_MEMO_ENV,
    CachePruneStats,
    CacheStats,
    DiskResultCache,
    InMemoryResultCache,
    LayerMemoStats,
    LayerMemoStore,
    ResultCache,
    configure_layer_memo,
    get_layer_memo,
)
from .events import (
    EVENT_KINDS,
    PROVENANCE_CACHE,
    PROVENANCE_DEDUPLICATED,
    PROVENANCE_EXECUTED,
    RECORD_SCHEMA_VERSION,
    TERMINAL_EVENT_KINDS,
    JobCompletion,
    RunnerEvent,
)
from .handle import BatchHandle
from .job import COMPARISON_PAIR, SimulationJob, execute_job
from .runner import (
    SimulationRunner,
    get_default_runner,
    resolve_accelerators,
    set_default_runner,
)

__all__ = [
    "BACKENDS",
    "COMPARISON_PAIR",
    "EVENT_KINDS",
    "LAYER_MEMO_DIR_ENV",
    "LAYER_MEMO_ENV",
    "PROVENANCE_CACHE",
    "PROVENANCE_DEDUPLICATED",
    "PROVENANCE_EXECUTED",
    "RECORD_SCHEMA_VERSION",
    "TERMINAL_EVENT_KINDS",
    "AsyncioBackend",
    "BatchHandle",
    "CachePruneStats",
    "CacheStats",
    "DeferredJobFuture",
    "DiskResultCache",
    "ExecutionBackend",
    "InMemoryResultCache",
    "JobCompletion",
    "JobFuture",
    "LayerMemoStats",
    "LayerMemoStore",
    "ProcessPoolBackend",
    "ResultCache",
    "RunnerEvent",
    "SerialBackend",
    "SimulationJob",
    "SimulationRunner",
    "backend_names",
    "configure_layer_memo",
    "execute_job",
    "get_backend",
    "get_default_runner",
    "get_layer_memo",
    "resolve_accelerators",
    "set_default_runner",
]
