"""Shared simulation execution layer: jobs, backends, caching, scheduling.

See ``README.md`` in this directory for the architecture and usage guide.
"""

from .backends import ExecutionBackend, ProcessPoolBackend, SerialBackend
from .cache import (
    CachePruneStats,
    CacheStats,
    DiskResultCache,
    InMemoryResultCache,
    ResultCache,
)
from .job import COMPARISON_PAIR, SimulationJob, execute_job
from .runner import (
    SimulationRunner,
    get_default_runner,
    resolve_accelerators,
    set_default_runner,
)

__all__ = [
    "COMPARISON_PAIR",
    "CachePruneStats",
    "CacheStats",
    "DiskResultCache",
    "ExecutionBackend",
    "InMemoryResultCache",
    "ProcessPoolBackend",
    "ResultCache",
    "SerialBackend",
    "SimulationJob",
    "SimulationRunner",
    "execute_job",
    "get_default_runner",
    "resolve_accelerators",
    "set_default_runner",
]
