"""Shared simulation execution layer: jobs, backends, caching, scheduling.

See ``README.md`` in this directory for the architecture and usage guide.
"""

from .backends import ExecutionBackend, ProcessPoolBackend, SerialBackend
from .cache import CacheStats, DiskResultCache, InMemoryResultCache, ResultCache
from .job import ACCELERATORS, SimulationJob, execute_job
from .runner import SimulationRunner, get_default_runner, set_default_runner

__all__ = [
    "ACCELERATORS",
    "CacheStats",
    "DiskResultCache",
    "ExecutionBackend",
    "InMemoryResultCache",
    "ProcessPoolBackend",
    "ResultCache",
    "SerialBackend",
    "SimulationJob",
    "SimulationRunner",
    "execute_job",
    "get_default_runner",
    "set_default_runner",
]
