"""The unit of work of the simulation runner: one (model, accelerator) run.

A :class:`SimulationJob` fully describes one simulator invocation — which GAN
workload (a built model, a registry name or a family spec string such as
``"dcgan@32x32"``), which accelerator (any name in the
:mod:`repro.accelerators` registry), which
:class:`~repro.config.ArchitectureConfig` and
:class:`~repro.config.SimulationOptions` — and derives a deterministic
content-hash :attr:`~SimulationJob.cache_key` from the canonical serialization
of those inputs.  Jobs with equal cache keys are guaranteed to produce equal
:class:`~repro.analysis.results.GanResult` values, which is what lets the
runner deduplicate batches and share results through a content-addressed
cache across sweeps, experiments and processes.

Workload spec strings resolve through :mod:`repro.workloads.registry`, and
the resolved entry's ``workload_version`` is folded into the cache key
exactly like the accelerator's registered version: bumping a workload's
version invalidates its stale cached results even when the structural
fingerprint is unchanged.

:func:`execute_job` is the single entry point every backend uses to turn a
job into a result; it lives at module level so the process-pool backend can
pickle it.  The job carries only the accelerator *name* — the simulator is
built in the executing process through the registry, so pooled workers never
need to unpickle simulator instances.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..accelerators.registry import AcceleratorSpec, get_accelerator
from ..analysis.results import GanResult, LayerResult
from ..errors import AnalysisError
from ..analysis.serialization import (
    config_fingerprint,
    fingerprint_data,
    layer_fingerprint,
    options_fingerprint,
    workload_fingerprint,
)
from ..config import ArchitectureConfig, SimulationOptions
from ..nn.network import GANModel
from ..schedule import resolve_schedule, schedule_fingerprint
from ..telemetry import get_tracer
from ..workloads.registry import get_workload, resolve_workload, workload_version_for

#: The paper's two-point comparison, kept as the legacy default pair.  The
#: open accelerator set lives in :func:`repro.accelerators.accelerator_names`
#: (the old ``ACCELERATORS`` constant is gone: it documented "the names
#: SimulationJob accepts", which is now the whole registry).
COMPARISON_PAIR: Tuple[str, str] = ("eyeriss", "ganax")


@dataclass(frozen=True)
class SimulationJob:
    """One simulator invocation: a GAN workload on one accelerator.

    Attributes
    ----------
    model:
        The workload to simulate: a :class:`~repro.nn.network.GANModel`, a
        registered workload name, or a family spec string (``"dcgan@32x32"``)
        — names resolve through :mod:`repro.workloads.registry` at
        construction, so after ``__post_init__`` this is always a built
        model.  The model travels with the job (it is picklable), so jobs
        over ad-hoc models — not just registry workloads — run on every
        backend.
    accelerator:
        Any name registered in :mod:`repro.accelerators` (see
        :func:`~repro.accelerators.accelerator_names`); normalized to the
        registry's canonical spelling at construction.
    config:
        Architecture configuration shared by all simulators.
    options:
        Whole-model simulation options.
    workload_version:
        The workload registry version folded into :attr:`cache_key`.
        Resolved automatically (``""`` for ad-hoc models); pass explicitly
        only to pin a different cache generation.
    """

    model: Union[str, GANModel]
    accelerator: str
    config: ArchitectureConfig
    options: SimulationOptions
    workload_version: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # Raises UnknownAcceleratorError (an AnalysisError) for unknown names.
        spec = get_accelerator(self.accelerator)
        object.__setattr__(self, "accelerator", spec.name)
        if isinstance(self.model, str):
            workload = resolve_workload(self.model)  # raises for unknown specs
            object.__setattr__(self, "model", get_workload(workload))
            if self.workload_version is None:
                object.__setattr__(self, "workload_version", workload.version)
        if self.workload_version is None:
            object.__setattr__(
                self, "workload_version", workload_version_for(self.model)
            )

    @property
    def model_name(self) -> str:
        return self.model.name

    @cached_property
    def cache_key(self) -> str:
        """Deterministic content hash identifying this job's result.

        Combines the accelerator name *and its registered model version* with
        the fingerprints of the workload structure (plus the workload's
        registry version), the architecture configuration and the simulation
        options, so any change to any simulation input — including a revised
        accelerator or workload that bumps its version — changes the key and
        stale cached results are never served.  Options are fingerprinted in
        the accelerator's *canonical* form
        (:meth:`~repro.accelerators.AcceleratorSpec.canonical_options`), so
        option values a model ignores or forces share one cache entry.  The
        schedule is keyed by the resolved spec's knob fingerprint (not just
        its name) so jobs differing only in schedule never share an entry,
        while a schedule-insensitive model that canonicalizes the schedule
        away keeps one entry across schedules.
        """
        spec = get_accelerator(self.accelerator)
        canonical = spec.canonical_options(self.options)
        return fingerprint_data(
            {
                "accelerator": {"name": spec.name, "version": spec.version},
                "workload": {
                    "fingerprint": workload_fingerprint(self.model),
                    "version": self.workload_version,
                },
                "config": config_fingerprint(self.config),
                "options": options_fingerprint(canonical),
                "schedule": {
                    "name": canonical.schedule,
                    "fingerprint": schedule_fingerprint(
                        resolve_schedule(canonical.schedule)
                    ),
                },
            }
        )

    @classmethod
    def for_accelerators(
        cls,
        model: Union[str, GANModel],
        accelerators: Sequence[str],
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Tuple["SimulationJob", ...]:
        """One job per accelerator name, sharing a single configuration."""
        config = config or ArchitectureConfig.paper_default()
        options = options or SimulationOptions()
        return tuple(
            cls(model=model, accelerator=name, config=config, options=options)
            for name in accelerators
        )

    @classmethod
    def comparison_pair(
        cls,
        model: Union[str, GANModel],
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Tuple["SimulationJob", "SimulationJob"]:
        """The (eyeriss, ganax) job pair behind one ComparisonResult."""
        eyeriss, ganax = cls.for_accelerators(model, COMPARISON_PAIR, config, options)
        return eyeriss, ganax


def _memoized_layer_fn(
    spec: AcceleratorSpec, simulator: object, job: SimulationJob
) -> Optional[Callable[[Sequence[object]], Tuple[LayerResult, ...]]]:
    """A batch layer evaluator backed by the process-global layer memo.

    Returns None — meaning "simulate normally, no memo" — when the memo is
    disabled or when the simulator is not eligible: only simulators that use
    the *unoverridden* :class:`GanSimulatorBase` network/GAN aggregation are
    guaranteed to route every layer through ``layer_fn``, so memoizing behind
    a custom aggregation could silently change results.

    Memo keys are :func:`layer_fingerprint` digests over (layer structure ×
    input shape × accelerator identity × config × canonical options) — the
    layer *name* is excluded, so distinct workloads sharing a layer shape
    share the entry; hits are re-labelled with the requesting binding's name.
    Misses are computed in one :meth:`simulate_layers` batch, so memoization
    composes with the vectorized estimators instead of defeating them.
    """
    # Late imports: the accelerators package (and the cache module) are still
    # initializing when this module is first imported through them.
    from ..accelerators.base import GanSimulatorBase
    from .cache import get_layer_memo

    memo = get_layer_memo()
    if memo is None or not isinstance(simulator, GanSimulatorBase):
        return None
    cls = type(simulator)
    if (
        cls.simulate_gan is not GanSimulatorBase.simulate_gan
        or cls.simulate_network is not GanSimulatorBase.simulate_network
    ):
        return None
    canonical = spec.canonical_options(job.options)

    def layer_fn(bindings: Sequence[object]) -> Tuple[LayerResult, ...]:
        tracer = get_tracer()
        span = None
        if tracer is not None:
            # Nests under the simulate_layers span via the thread-local span
            # stack pushed by execute_job's context manager.
            span = tracer.begin("layer-memo", layers=len(bindings))
        keys = [
            layer_fingerprint(b, spec.name, spec.version, job.config, canonical)
            for b in bindings
        ]
        results: List[Optional[LayerResult]] = [None] * len(bindings)
        missing: List[int] = []
        for index, (binding, key) in enumerate(zip(bindings, keys)):
            hit = memo.get(key)
            if hit is not None:
                if hit.layer_name != binding.name:
                    hit = dataclasses.replace(hit, layer_name=binding.name)
                results[index] = hit
            else:
                missing.append(index)
        if missing:
            computed = simulator.simulate_layers([bindings[i] for i in missing])
            for index, result in zip(missing, computed):
                memo.put(keys[index], result)
                results[index] = result
        if span is not None:
            tracer.end(
                span, hits=len(bindings) - len(missing), misses=len(missing)
            )
        return tuple(results)

    return layer_fn


def _simulate(
    simulator: object,
    job: SimulationJob,
    layer_fn: Optional[Callable[[Sequence[object]], Tuple[LayerResult, ...]]],
) -> GanResult:
    if layer_fn is not None:
        return simulator.simulate_gan(job.model, layer_fn=layer_fn)
    return simulator.simulate_gan(job.model)


def execute_job(job: SimulationJob) -> GanResult:
    """Run one job to completion (used by every backend, picklable).

    When the process-global layer memo is enabled (see
    :func:`repro.runner.cache.get_layer_memo`), eligible simulators assemble
    their network totals from per-layer memo hits, so distinct workloads that
    share a layer shape share the work.

    Enforces the registry contract that a model reports its own registry
    name in its results: a delegating factory that forwards another entry's
    results unchanged would otherwise poison the cache under the wrong
    identity and crash the comparison assembly much later.
    """
    spec = get_accelerator(job.accelerator)
    simulator = spec.create(config=job.config, options=job.options)
    layer_fn = _memoized_layer_fn(spec, simulator, job)
    tracer = get_tracer()
    if tracer is not None:
        # Jobs may execute on a backend worker thread where the submitting
        # thread's span stack is invisible; the runner published cache_key ->
        # job-span-id at dispatch so the simulate span lands under its job.
        # The span() context manager also pushes this thread's span stack,
        # nesting the layer-memo lookup spans underneath.  (Pool workers are
        # separate *processes* with a fresh, disabled tracer — worker-side
        # spans are not recorded there; see the telemetry README.)
        with tracer.span(
            "simulate_layers",
            parent_id=tracer.parent_for(job.cache_key),
            model=job.model_name,
            accelerator=job.accelerator,
            memoized=layer_fn is not None,
        ):
            result = _simulate(simulator, job, layer_fn)
    else:
        result = _simulate(simulator, job, layer_fn)
    if result.accelerator != job.accelerator:
        raise AnalysisError(
            f"accelerator '{job.accelerator}' produced results labelled "
            f"'{result.accelerator}'; a registered model must report its "
            "registry name (set accelerator_name on the simulator class)"
        )
    return result
