"""The unit of work of the simulation runner: one (model, accelerator) run.

A :class:`SimulationJob` fully describes one simulator invocation — which GAN
model, which accelerator, which :class:`~repro.config.ArchitectureConfig` and
:class:`~repro.config.SimulationOptions` — and derives a deterministic
content-hash :attr:`~SimulationJob.cache_key` from the canonical serialization
of those inputs.  Jobs with equal cache keys are guaranteed to produce equal
:class:`~repro.analysis.results.GanResult` values, which is what lets the
runner deduplicate batches and share results through a content-addressed
cache across sweeps, experiments and processes.

:func:`execute_job` is the single entry point every backend uses to turn a
job into a result; it lives at module level so the process-pool backend can
pickle it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

from ..analysis.results import GanResult
from ..analysis.serialization import (
    config_fingerprint,
    fingerprint_data,
    options_fingerprint,
    workload_fingerprint,
)
from ..baseline.simulator import EyerissSimulator
from ..config import ArchitectureConfig, SimulationOptions
from ..core.simulator import GanaxSimulator
from ..errors import AnalysisError
from ..nn.network import GANModel

#: Accelerator name -> simulator class, the runner's dispatch table.
SIMULATORS = {
    "eyeriss": EyerissSimulator,
    "ganax": GanaxSimulator,
}

#: Accelerator identifiers accepted by :class:`SimulationJob`.
ACCELERATORS: Tuple[str, ...] = tuple(SIMULATORS)


@dataclass(frozen=True)
class SimulationJob:
    """One simulator invocation: a GAN model on one accelerator.

    Attributes
    ----------
    model:
        The workload to simulate.  The model travels with the job (it is
        picklable), so jobs over ad-hoc models — not just registry
        workloads — run on every backend.
    accelerator:
        ``"eyeriss"`` or ``"ganax"``.
    config:
        Architecture configuration shared by both simulators.
    options:
        Whole-model simulation options.
    """

    model: GANModel
    accelerator: str
    config: ArchitectureConfig
    options: SimulationOptions

    def __post_init__(self) -> None:
        if self.accelerator not in SIMULATORS:
            raise AnalysisError(
                f"unknown accelerator '{self.accelerator}'; "
                f"expected one of: {', '.join(ACCELERATORS)}"
            )

    @property
    def model_name(self) -> str:
        return self.model.name

    @cached_property
    def cache_key(self) -> str:
        """Deterministic content hash identifying this job's result.

        Combines the accelerator name with the fingerprints of the workload
        structure, the architecture configuration and the simulation options,
        so any change to any simulation input changes the key.
        """
        return fingerprint_data(
            {
                "accelerator": self.accelerator,
                "workload": workload_fingerprint(self.model),
                "config": config_fingerprint(self.config),
                "options": options_fingerprint(self.options),
            }
        )

    @classmethod
    def comparison_pair(
        cls,
        model: GANModel,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Tuple["SimulationJob", "SimulationJob"]:
        """The (eyeriss, ganax) job pair behind one ComparisonResult."""
        config = config or ArchitectureConfig.paper_default()
        options = options or SimulationOptions()
        return (
            cls(model=model, accelerator="eyeriss", config=config, options=options),
            cls(model=model, accelerator="ganax", config=config, options=options),
        )


def execute_job(job: SimulationJob) -> GanResult:
    """Run one job to completion (used by every backend, picklable)."""
    simulator = SIMULATORS[job.accelerator](config=job.config, options=job.options)
    return simulator.simulate_gan(job.model)
