"""Typed events and completion records of the streaming execution API.

Every job submitted through :meth:`~repro.runner.runner.SimulationRunner.submit`
moves through a small, observable life cycle.  The runner narrates it as
:class:`RunnerEvent` values delivered to subscribed listeners
(:meth:`~repro.runner.runner.SimulationRunner.subscribe` or the per-batch
``on_event`` argument), and the :class:`~repro.runner.handle.BatchHandle`
yields :class:`JobCompletion` records from ``as_completed()`` as results land.

The event grammar, per submitted job (in emission order):

``scheduled``
    always first — the job joined a batch at this submission index.
``deduped``
    an identical job (equal ``cache_key``) is already in the batch; this one
    will share the earlier job's outcome.
``cache-hit``
    terminal — the result came straight from the content-addressed cache.
``started``
    the job began executing.  Emitted when the backend can observe the
    start (serial: the consumer's thread drives the job; asyncio: the
    worker coroutine begins) — the process pool cannot observe worker-side
    start, so pooled jobs may terminate without a ``started`` event.  Never
    emitted for cache hits or batch duplicates.
``completed``
    terminal — the job produced a result (``provenance`` says how:
    ``"executed"`` for a fresh simulation, ``"deduplicated"`` for a duplicate
    resolved by its primary).
``failed``
    terminal — execution raised; the exception travels on the event.
``cancelled``
    terminal — the job was cancelled before it produced a result.

**Invariant** (asserted by ``tests/test_streaming.py``): every submitted job
emits ``scheduled`` exactly once and then exactly one terminal event —
``cache-hit``, ``completed``, ``failed`` or ``cancelled``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..analysis.results import GanResult
    from .job import SimulationJob

#: Version of the machine-readable record grammar produced by
#: :meth:`RunnerEvent.describe` — the format behind the CLI's ``--jsonl``
#: stream, the service wire protocol (:mod:`repro.service.protocol`) and the
#: service journal.  Bump it whenever a field changes meaning or disappears;
#: consumers (journal replay, service clients) reject mismatched versions
#: with an explicit message instead of silently misparsing old records.
#:
#: Version history:
#:
#: * **1** — the original grammar (event/index/model/accelerator plus
#:   optional provenance, result fields and error).
#: * **2** — adds a monotonic ``timestamp`` (seconds,
#:   :func:`time.monotonic` clock) and a per-submission ``job_uid``
#:   correlation id to every record.  Purely additive: every version-1 field
#:   is unchanged, so version-2 readers accept version-1 records (see
#:   ``MIN_COMPATIBLE_SCHEMA_VERSION`` in :mod:`repro.service.protocol`).
#:   Later version-2 streams also carry the job's ``schedule`` spec name —
#:   additive again, so the version number is unchanged.
RECORD_SCHEMA_VERSION: int = 2

#: Every event kind the runner emits, in life-cycle order.
EVENT_KINDS: Tuple[str, ...] = (
    "scheduled",
    "deduped",
    "cache-hit",
    "started",
    "completed",
    "failed",
    "cancelled",
)

#: Kinds that end a job's life cycle; each job gets exactly one of these.
TERMINAL_EVENT_KINDS = frozenset({"cache-hit", "completed", "failed", "cancelled"})

#: How a completed job's result was obtained.
PROVENANCE_CACHE = "cache"
PROVENANCE_EXECUTED = "executed"
PROVENANCE_DEDUPLICATED = "deduplicated"


@dataclass(frozen=True)
class RunnerEvent:
    """One step of one job's life cycle inside a submitted batch.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    job:
        The :class:`~repro.runner.job.SimulationJob` the event describes.
    index:
        The job's submission index within its batch (stable across events).
    provenance:
        For terminal events with a result: ``"cache"``, ``"executed"`` or
        ``"deduplicated"``.
    result:
        The :class:`~repro.analysis.results.GanResult` on ``cache-hit`` /
        ``completed`` events.
    error:
        The raised exception on ``failed`` events.
    timestamp:
        Monotonic time (:func:`time.monotonic` seconds) the event was
        created.  Comparable across every event of one process — the CLI's
        progress metrics and the telemetry subscriber derive per-job latency
        from ``terminal.timestamp - scheduled.timestamp`` — but *not* wall
        clock and not comparable across processes.
    job_uid:
        Correlation id of the submission slot this event narrates: every
        event of one submitted job carries the same uid, unique within the
        process.  Lets stream consumers (and trace viewers) join the
        ``scheduled``/``started``/terminal records of a job without relying
        on (batch, index) bookkeeping.
    """

    kind: str
    job: "SimulationJob"
    index: int
    provenance: Optional[str] = None
    result: Optional["GanResult"] = None
    error: Optional[BaseException] = None
    timestamp: float = field(default_factory=time.monotonic)
    job_uid: Optional[str] = None

    @property
    def is_terminal(self) -> bool:
        """Whether this event ends its job's life cycle."""
        return self.kind in TERMINAL_EVENT_KINDS

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly record of the event (used by the CLI's ``--jsonl``).

        Every record carries :data:`RECORD_SCHEMA_VERSION` so downstream
        consumers — journal replay, service clients, old tooling reading new
        streams — can reject records they do not understand.
        """
        record: Dict[str, Any] = {
            "schema_version": RECORD_SCHEMA_VERSION,
            "event": self.kind,
            "index": self.index,
            "model": self.job.model_name,
            "accelerator": self.job.accelerator,
            "schedule": self.job.options.schedule,
            "timestamp": self.timestamp,
        }
        if self.job_uid is not None:
            record["job_uid"] = self.job_uid
        if self.provenance is not None:
            record["provenance"] = self.provenance
        if self.result is not None:
            record["generator_cycles"] = self.result.generator.cycles
            record["generator_energy_pj"] = self.result.generator.energy_pj
            record["total_cycles"] = self.result.total_cycles
            record["total_energy_pj"] = self.result.total_energy_pj
        if self.error is not None:
            record["error"] = str(self.error)
        return record


@dataclass(frozen=True)
class JobCompletion:
    """One job's terminal outcome, yielded by ``BatchHandle.as_completed()``.

    Iterating the completion unpacks as the documented ``(job, result,
    provenance)`` triple; ``index`` and ``error`` ride along as attributes for
    consumers that need the submission slot or the failure cause.
    """

    job: "SimulationJob"
    result: Optional["GanResult"]
    provenance: str
    index: int
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __iter__(self) -> Iterator[Any]:
        return iter((self.job, self.result, self.provenance))
