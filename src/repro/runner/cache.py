"""Content-addressed result caches for the simulation runner.

Cache keys are the :attr:`~repro.runner.job.SimulationJob.cache_key`
fingerprints — SHA-256 hashes over the canonical serialization of every
simulation input — so a cache entry is valid for *any* job with the same
content, regardless of which sweep, experiment or process produced it.

Two implementations are provided:

* :class:`InMemoryResultCache` — a plain dict, the default for a runner.
* :class:`DiskResultCache` — pickled results in a content-addressed directory
  layout (``<root>/<key[:2]>/<key>.pkl``), which lets warm results survive
  process restarts and be shared between concurrent runs.

Hit/miss/store accounting lives in :class:`CacheStats`; the
:class:`~repro.runner.runner.SimulationRunner` owns one stats object and
updates it on every lookup so tests and the CLI can audit cache behaviour.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from ..analysis.results import GanResult, LayerResult
from ..errors import AnalysisError
from ..telemetry import get_metrics

PathLike = Union[str, Path]

#: Environment switch for the process-global layer memo: ``"0"`` disables it.
#: Propagated through the environment so process-pool workers (fork *and*
#: spawn start methods inherit the environment) build an equivalent store.
LAYER_MEMO_ENV = "REPRO_LAYER_MEMO"
#: Optional directory for the layer memo's sharded on-disk tier.
LAYER_MEMO_DIR_ENV = "REPRO_LAYER_MEMO_DIR"


@dataclass(frozen=True)
class CachePruneStats:
    """Outcome of one :meth:`DiskResultCache.prune` pass."""

    removed_entries: int
    removed_bytes: int
    remaining_entries: int
    remaining_bytes: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "removed_entries": self.removed_entries,
            "removed_bytes": self.removed_bytes,
            "remaining_entries": self.remaining_entries,
            "remaining_bytes": self.remaining_bytes,
        }


@dataclass
class CacheStats:
    """Counters describing how a runner used its cache.

    Attributes
    ----------
    hits:
        Jobs answered directly from the cache.
    misses:
        Jobs that had to be executed by a backend.
    stores:
        Results written into the cache (== misses unless storing failed).
    deduplicated:
        Jobs that were dropped before dispatch because an identical job
        (same cache key) was already in the same batch.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    deduplicated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "deduplicated": self.deduplicated,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.stores = self.deduplicated = 0


class ResultCache:
    """Interface of a content-addressed result cache."""

    def get(self, key: str) -> Optional[GanResult]:
        """The cached result for ``key``, or None on a miss."""
        raise NotImplementedError

    def put(self, key: str, result: GanResult) -> None:
        """Store ``result`` under ``key`` (overwrites silently)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class InMemoryResultCache(ResultCache):
    """Dict-backed cache; the default for a :class:`SimulationRunner`."""

    def __init__(self) -> None:
        self._entries: Dict[str, GanResult] = {}

    def get(self, key: str) -> Optional[GanResult]:
        return self._entries.get(key)

    def put(self, key: str, result: GanResult) -> None:
        self._entries[key] = result

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class DiskResultCache(ResultCache):
    """Pickle-on-disk cache with a content-addressed directory layout.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` — the two-character
    fingerprint-prefix shard (the same layout as the
    :class:`LayerMemoStore` disk tier) keeps any one directory to at most
    1/256th of the entries, so millions of cached results never sit in a
    single directory.  Caches written by older versions used a **flat**
    layout (``<root>/<key>.pkl``); those entries are still served through a
    transparent read-through — a get that misses the sharded tree falls back
    to the flat path and, on a hit, migrates the entry into its shard — and
    :meth:`size_bytes`, :meth:`prune`, ``len()`` and :meth:`clear` account
    for both trees, so a legacy cache keeps working (and gradually converts)
    without a manual migration step.  A small in-memory overlay avoids
    re-reading entries that were already fetched or stored in this process.
    """

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        if self._root.exists() and not self._root.is_dir():
            raise AnalysisError(
                f"cache root '{self._root}' exists and is not a directory"
            )
        self._root.mkdir(parents=True, exist_ok=True)
        self._overlay: Dict[str, GanResult] = {}

    @property
    def root(self) -> Path:
        return self._root

    def _path_for(self, key: str) -> Path:
        return self._root / key[:2] / f"{key}.pkl"

    def _legacy_path_for(self, key: str) -> Path:
        """Where the pre-shard flat layout stored this key."""
        return self._root / f"{key}.pkl"

    def _entry_paths(self):
        """Every stored entry: the sharded tree plus legacy flat files.

        Temp files from in-flight writers start with ``.`` and never match.
        """
        yield from self._root.glob("*/*.pkl")
        yield from self._root.glob("[!.]*.pkl")

    def get(self, key: str) -> Optional[GanResult]:
        if key in self._overlay:
            return self._overlay[key]
        path = self._path_for(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            # Absent from the sharded tree — or deleted by a concurrent
            # prune()/clear() between any earlier existence check and the
            # open.  Fall back to the legacy flat layout before declaring a
            # miss; nothing to unlink either way.
            return self._legacy_get(key)
        except Exception:
            # A truncated/corrupt entry (e.g. torn write from a crashed run)
            # is a miss, not a fatal error; drop it so it gets rewritten.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            # Refresh recency so prune() evicts cold entries first.  The entry
            # may vanish between the read and the touch (concurrent prune);
            # the pickled bytes are already in hand, so serve them regardless.
            os.utime(path)
        except OSError:
            pass
        self._overlay[key] = result
        return result

    def _legacy_get(self, key: str) -> Optional[GanResult]:
        """Read-through of the pre-shard flat layout, migrating on a hit.

        Older caches stored every entry directly under the root.  Serving
        them keeps a warm legacy cache warm across the layout change; the
        re-``put`` rewrites the entry into its shard and the flat original is
        removed, so the tree converges to the sharded layout one hit at a
        time.  Vanished or corrupt legacy entries are clean misses, exactly
        like sharded ones.
        """
        path = self._legacy_path_for(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.put(key, result)  # migrate into <key[:2]>/<key>.pkl
        try:
            path.unlink()
        except OSError:
            pass  # another process may have migrated it concurrently
        return result

    def put(self, key: str, result: GanResult) -> None:
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # unique temp file per writer: concurrent runs storing the same key
        # never interleave bytes, and the rename publishes atomically
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._overlay[key] = result

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> None:
        self._overlay.clear()
        for path in self._entry_paths():
            path.unlink()

    def size_bytes(self) -> int:
        """Total size of every stored entry, sharded and legacy flat alike."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue  # pruned concurrently: no longer occupies space
        return total

    def prune(self, max_bytes: int) -> CachePruneStats:
        """Evict oldest entries (by mtime) until the cache fits ``max_bytes``.

        Content-addressed entries are all equally re-creatable, so the only
        signal worth keeping is recency: a warm entry that was just read or
        written has a fresh mtime (``get`` touches entries it serves) and
        survives longest.  ``prune(0)`` empties the cache.  Entries that
        vanish concurrently (another run pruning the same directory) are
        counted as already removed, not errors; entries that cannot be
        deleted (permissions) stay accounted as remaining.
        """
        if max_bytes < 0:
            raise AnalysisError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.name, stat.st_size, path))
        entries.sort()  # oldest first; name tie-break keeps order deterministic
        total = sum(size for _mtime, _name, size, _path in entries)
        removed_entries = removed_bytes = 0
        for _mtime, _name, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                pass  # another run pruned it concurrently: already gone
            except OSError:
                continue  # undeletable (permissions?): still occupies space
            self._overlay.pop(path.stem, None)
            total -= size
            removed_entries += 1
            removed_bytes += size
        return CachePruneStats(
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            remaining_entries=len(entries) - removed_entries,
            remaining_bytes=total,
        )


# ----------------------------------------------------------------------
# Layer-grain memoization (below the job-level result cache)
# ----------------------------------------------------------------------
@dataclass
class LayerMemoStats:
    """Counters for the layer-grain memo (one tier below :class:`CacheStats`)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.stores = 0


class LayerMemoStore:
    """Thread-safe LRU memo of per-layer simulation results.

    Keys are :func:`~repro.analysis.serialization.layer_fingerprint` digests —
    content hashes over (layer structure × input shape × accelerator identity
    × configuration × canonical options) — so any two jobs whose networks
    share a layer shape under the same simulation context share one entry,
    across workloads and across sweeps.

    The memo is two-tier: an in-memory ``OrderedDict`` LRU (bounded by
    ``max_entries``) plus an optional sharded pickle directory
    (``<root>/<key[:2]>/<key>.pkl``, same layout and torn-write discipline as
    :class:`DiskResultCache`) so warm layers survive process restarts and are
    shared between pool workers.  All operations tolerate entries vanishing
    concurrently (another process pruning the shard directory): a vanished
    file is a miss, never an error.
    """

    def __init__(
        self, max_entries: int = 65536, root: Optional[PathLike] = None
    ) -> None:
        if max_entries <= 0:
            raise AnalysisError(f"max_entries must be > 0, got {max_entries}")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, LayerResult]" = OrderedDict()
        self._stats = LayerMemoStats()
        # Cached registry instruments for the hot per-layer path: resolved
        # once per installed registry instead of per lookup (the registry can
        # be swapped by configure_metrics, hence the identity check).
        self._metrics_for: Optional[object] = None
        self._m_hits = self._m_misses = self._m_stores = self._m_resident = None
        self._root: Optional[Path] = None
        if root is not None:
            self._root = Path(root)
            if self._root.exists() and not self._root.is_dir():
                raise AnalysisError(
                    f"layer memo root '{self._root}' exists and is not a directory"
                )
            self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Optional[Path]:
        return self._root

    @property
    def stats(self) -> LayerMemoStats:
        return self._stats

    def _path_for(self, key: str) -> Path:
        assert self._root is not None
        return self._root / key[:2] / f"{key}.pkl"

    def _refresh_instruments(self) -> bool:
        """Bind registry instruments for the current registry (if enabled)."""
        registry = get_metrics()
        if registry is None:
            return False
        if self._metrics_for is not registry:
            self._metrics_for = registry
            self._m_hits = registry.counter("runner.layer_memo.hits")
            self._m_misses = registry.counter("runner.layer_memo.misses")
            self._m_stores = registry.counter("runner.layer_memo.stores")
            self._m_resident = registry.gauge("runner.layer_memo.resident")
        return True

    def get(self, key: str) -> Optional[LayerResult]:
        """The memoized layer result for ``key``, or None on a miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
        if result is not None:
            if self._refresh_instruments():
                self._m_hits.inc()
            return result
        if self._root is not None:
            result = self._disk_get(key)
            if result is not None:
                with self._lock:
                    self._insert_locked(key, result)
                    self._stats.hits += 1
                if self._refresh_instruments():
                    self._m_hits.inc()
                    self._m_resident.set(len(self._entries))
                return result
        with self._lock:
            self._stats.misses += 1
        if self._refresh_instruments():
            self._m_misses.inc()
        return None

    def put(self, key: str, result: LayerResult) -> None:
        """Memoize ``result`` under ``key`` (overwrites silently)."""
        with self._lock:
            self._insert_locked(key, result)
            self._stats.stores += 1
            resident = len(self._entries)
        if self._refresh_instruments():
            self._m_stores.inc()
            self._m_resident.set(resident)
        if self._root is not None:
            self._disk_put(key, result)

    def _insert_locked(self, key: str, result: LayerResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def _disk_get(self, key: str) -> Optional[LayerResult]:
        path = self._path_for(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, result: LayerResult) -> None:
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        if self._root is not None:
            for path in self._root.glob("*/*.pkl"):
                try:
                    path.unlink()
                except OSError:
                    pass


_layer_memo_lock = threading.Lock()
_layer_memo: Optional[LayerMemoStore] = None
_layer_memo_configured = False


def configure_layer_memo(
    enabled: bool = True,
    root: Optional[PathLike] = None,
    max_entries: int = 65536,
) -> Optional[LayerMemoStore]:
    """(Re)configure the process-global layer memo; returns the new store.

    Also records the configuration in the process environment
    (:data:`LAYER_MEMO_ENV` / :data:`LAYER_MEMO_DIR_ENV`) so process-pool
    workers spawned afterwards — under either the ``fork`` or ``spawn`` start
    method, both of which inherit the environment — lazily build an
    equivalent store via :func:`get_layer_memo`.  Pass ``enabled=False`` to
    disable layer memoization entirely (returns None).
    """
    global _layer_memo, _layer_memo_configured
    with _layer_memo_lock:
        if enabled:
            store: Optional[LayerMemoStore] = LayerMemoStore(
                max_entries=max_entries, root=root
            )
            os.environ[LAYER_MEMO_ENV] = "1"
            if root is not None:
                os.environ[LAYER_MEMO_DIR_ENV] = str(Path(root))
            else:
                os.environ.pop(LAYER_MEMO_DIR_ENV, None)
        else:
            store = None
            os.environ[LAYER_MEMO_ENV] = "0"
            os.environ.pop(LAYER_MEMO_DIR_ENV, None)
        _layer_memo = store
        _layer_memo_configured = True
        return store


def get_layer_memo() -> Optional[LayerMemoStore]:
    """The process-global layer memo, or None when disabled.

    On first use in a process that never called :func:`configure_layer_memo`
    (notably pool workers), the store is built from the environment:
    in-memory-only by default, disabled when ``REPRO_LAYER_MEMO=0``, with an
    on-disk tier rooted at ``REPRO_LAYER_MEMO_DIR`` when set.
    """
    global _layer_memo, _layer_memo_configured
    with _layer_memo_lock:
        if not _layer_memo_configured:
            if os.environ.get(LAYER_MEMO_ENV, "1") == "0":
                _layer_memo = None
            else:
                memo_dir = os.environ.get(LAYER_MEMO_DIR_ENV) or None
                _layer_memo = LayerMemoStore(root=memo_dir)
            _layer_memo_configured = True
        return _layer_memo
