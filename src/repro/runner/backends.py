"""Pluggable execution backends for the simulation runner.

A backend turns :class:`~repro.runner.job.SimulationJob` objects into
:class:`~repro.analysis.results.GanResult` objects.  Since the streaming
redesign the protocol is **incremental**: :meth:`ExecutionBackend.submit_jobs`
returns one :class:`JobFuture` per job, so the runner (and through it every
``as_completed()`` consumer) observes each job the moment it finishes instead
of waiting for the slowest job of the batch.  The blocking
:meth:`ExecutionBackend.run_jobs` is a convenience wrapper that drains the
futures in submission order.

The runner guarantees the batch it dispatches is already deduplicated and
cache-filtered, so a backend only ever sees work that must actually run.

* :class:`SerialBackend` — in-process, zero-thread reference implementation.
  Its futures are *deferred*: the job executes in the consumer's thread the
  first time the future is driven (``result()`` or the handle's iterators),
  so serial streaming has no scheduling overhead and completion order equals
  submission order.  All other backends must match it bit-for-bit (enforced
  by the parity tests in ``tests/test_runner.py`` / ``tests/test_streaming.py``).
* :class:`ProcessPoolBackend` — ``concurrent.futures.ProcessPoolExecutor``
  fan-out, one pool task per job.  Jobs and results are plain picklable
  dataclasses, and the analytical models are deterministic, so parallel
  results are byte-identical to serial ones.
* :class:`AsyncioBackend` — an asyncio event loop on a dedicated thread,
  offloading each job to a thread pool (``loop.run_in_executor``).  This is
  the integration point for event-driven services: the loop can multiplex
  thousands of in-flight jobs, and cancellation propagates through asyncio's
  native task cancellation.

Backends are addressable by name through :func:`get_backend`
(``"serial"``, ``"process-pool"``, ``"asyncio"``) — the CLI's ``--backend``
flag resolves through this registry.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.results import GanResult
from ..errors import ConfigurationError
from ..telemetry import get_metrics
from .job import SimulationJob, execute_job

_PENDING = "pending"
_RUNNING = "running"
_FINISHED = "finished"
_CANCELLED = "cancelled"


class JobFuture:
    """Minimal per-job future shared by every backend.

    Unlike :class:`concurrent.futures.Future`, done-callbacks are guaranteed
    to have finished running before any :meth:`result` call returns — the
    runner relies on this to make "the future is done" imply "the result is
    cached, accounted and published to the batch handle".

    Futures come in two flavours:

    * **passive** (``passive = True``) — nothing executes until a consumer
      *drives* the future (:meth:`drive`, or implicitly :meth:`result`); the
      job then runs synchronously in the consumer's thread.  This is how
      :class:`SerialBackend` streams without threads.
    * **active** — the backend executes the job elsewhere (pool worker,
      asyncio executor) and settles the future when it lands.
    """

    #: Whether a consumer must drive this future for the job to execute.
    passive = False

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._state = _PENDING
        self._result: Optional[GanResult] = None
        self._error: Optional[BaseException] = None
        self._settled = False  # state terminal AND all done-callbacks ran
        self._done_callbacks: List[Callable[["JobFuture"], None]] = []
        self._running_callbacks: List[Callable[["JobFuture"], None]] = []

    # -- observation ----------------------------------------------------
    def done(self) -> bool:
        with self._cond:
            return self._settled

    def cancelled(self) -> bool:
        with self._cond:
            return self._state == _CANCELLED

    def exception(self) -> Optional[BaseException]:
        """The stored error (only meaningful once the future is done)."""
        with self._cond:
            return self._error

    def peek_result(self) -> Optional[GanResult]:
        """The stored result without blocking (None until finished)."""
        with self._cond:
            return self._result

    def result(self, timeout: Optional[float] = None) -> GanResult:
        """Block until the job finishes and return (or raise) its outcome.

        Driving a passive future executes the job in this thread.  Raises
        :class:`concurrent.futures.CancelledError` for cancelled jobs and
        re-raises the job's own exception for failed ones.
        """
        self.drive()
        with self._cond:
            if not self._cond.wait_for(lambda: self._settled, timeout):
                raise TimeoutError("job did not complete within the timeout")
            if self._state == _CANCELLED:
                raise CancelledError()
            if self._error is not None:
                raise self._error
            assert self._result is not None
            return self._result

    # -- callbacks ------------------------------------------------------
    def add_running_callback(self, fn: Callable[["JobFuture"], None]) -> None:
        """Invoke ``fn(self)`` when the job starts (immediately if it has)."""
        with self._cond:
            if self._state == _PENDING:
                self._running_callbacks.append(fn)
                return
            already_started = self._state in (_RUNNING, _FINISHED)
        if already_started:
            fn(self)

    def add_done_callback(self, fn: Callable[["JobFuture"], None]) -> None:
        """Invoke ``fn(self)`` once the future settles (immediately if done)."""
        with self._cond:
            if not self._settled:
                self._done_callbacks.append(fn)
                return
        fn(self)

    # -- transitions ----------------------------------------------------
    def set_running(self) -> bool:
        """Atomically move pending -> running; False if that race was lost."""
        with self._cond:
            if self._state != _PENDING:
                return False
            self._state = _RUNNING
            callbacks = self._running_callbacks[:]
            del self._running_callbacks[:]
        for fn in callbacks:
            self._safe_call(fn)
        return True

    def set_result(self, result: GanResult) -> bool:
        return self._settle(_FINISHED, result=result)

    def set_exception(self, error: BaseException) -> bool:
        return self._settle(_FINISHED, error=error)

    def cancel(self) -> bool:
        """Cancel the job if it has not started; True when (already) cancelled."""
        with self._cond:
            if self._state == _CANCELLED:
                return True
            if self._state != _PENDING:
                return False
        return self._settle(_CANCELLED, only_from=(_PENDING,))

    def drive(self) -> None:
        """Execute a passive future's job in this thread (no-op otherwise)."""

    # -- internals ------------------------------------------------------
    def _settle(
        self,
        state: str,
        result: Optional[GanResult] = None,
        error: Optional[BaseException] = None,
        only_from: Optional[Tuple[str, ...]] = None,
    ) -> bool:
        with self._cond:
            if self._state in (_FINISHED, _CANCELLED):
                return False
            if only_from is not None and self._state not in only_from:
                return False
            self._state = state
            self._result = result
            self._error = error
        # Run every done-callback *before* waking result() waiters, looping
        # so callbacks registered concurrently are never dropped.
        try:
            while True:
                with self._cond:
                    if not self._done_callbacks:
                        self._settled = True
                        self._cond.notify_all()
                        return True
                    callbacks = self._done_callbacks[:]
                    del self._done_callbacks[:]
                for fn in callbacks:
                    self._safe_call(fn)
        finally:
            # A callback escaping with a BaseException (KeyboardInterrupt
            # unwinding a dying pool's callback thread, say) must still leave
            # the future settled: the terminal state is already recorded, and
            # an unsettled-forever future would hang every result() waiter
            # and as_completed() consumer.
            with self._cond:
                if not self._settled:
                    self._settled = True
                    self._cond.notify_all()

    def _safe_call(self, fn: Callable[["JobFuture"], None]) -> None:
        # A raising callback must not leave the future unsettled (that would
        # deadlock every waiter); the runner's callbacks never raise.  Only
        # Exception is swallowed — BaseException (interrupts) propagates, and
        # _settle's finally block keeps the future settled even then.
        try:
            fn(self)
        except Exception:
            pass


class DeferredJobFuture(JobFuture):
    """Passive future: the job runs when a consumer drives it (serial backend)."""

    passive = True

    def __init__(
        self,
        job: SimulationJob,
        fn: Callable[[SimulationJob], GanResult] = execute_job,
    ) -> None:
        super().__init__()
        self._job = job
        self._fn = fn

    def drive(self) -> None:
        if not self.set_running():  # already driven elsewhere, or cancelled
            return
        try:
            result = self._fn(self._job)
        except BaseException as exc:
            self.set_exception(exc)
        else:
            self.set_result(result)


def _execute_job_chunk(jobs: Sequence[SimulationJob]) -> List[Tuple[bool, object]]:
    """Run a chunk of jobs in one pool task; per-job (ok, result-or-error).

    Module-level so the process pool can pickle it.  Failures are captured
    per job instead of aborting the chunk, preserving the per-job failure
    attribution of the streaming protocol.
    """
    outcomes: List[Tuple[bool, object]] = []
    for job in jobs:
        try:
            outcomes.append((True, execute_job(job)))
        except BaseException as exc:
            outcomes.append((False, exc))
    return outcomes


class _ChunkMemberFuture(JobFuture):
    """One job's future inside a chunked pool submission.

    The whole chunk is one pool task, so members settle together when it
    lands; cancelling a member attempts to cancel the chunk (succeeds only
    while the chunk is still queued, cancelling every member with it).
    """

    def __init__(self) -> None:
        super().__init__()
        self._inner = None

    def _bind(self, inner) -> None:
        self._inner = inner

    def cancel(self) -> bool:
        if self._inner is not None and self._inner.cancel():
            return True  # the chunk's done-callback settles every member
        return self.cancelled()


def _settle_chunk(members: Sequence[_ChunkMemberFuture], inner) -> None:
    """Done-callback of a chunk's pool future: fan outcomes to the members."""
    if inner.cancelled():
        for member in members:
            member._settle(_CANCELLED)
        return
    error = inner.exception()
    if error is not None:  # the chunk itself failed (e.g. unpicklable)
        for member in members:
            member.set_exception(error)
        return
    for member, (ok, value) in zip(members, inner.result()):
        if ok:
            member.set_result(value)
        else:
            member.set_exception(value)


class _WrappedJobFuture(JobFuture):
    """Active future bridging a :class:`concurrent.futures.Future`.

    Used by the process-pool backend.  The worker-side start of a pooled job
    is not observable from this process, so the future never reports
    ``running`` (pooled jobs emit no ``started`` event) and cancellation
    defers entirely to the inner future — which only succeeds while the pool
    task is still queued, preserving the "cancel never discards an executing
    job's result" contract.  The inner future's completion settles this one,
    running our callbacks before any waiter wakes.
    """

    def __init__(self, inner) -> None:
        super().__init__()
        self._inner = inner
        inner.add_done_callback(self._absorb)

    def _absorb(self, inner) -> None:
        if inner.cancelled():
            self._settle(_CANCELLED)
            return
        error = inner.exception()
        if error is not None:
            self.set_exception(error)
        else:
            self.set_result(inner.result())

    def cancel(self) -> bool:
        if self._inner.cancel():  # _absorb settles us as cancelled
            return True
        return self.cancelled()


def _record_dispatch(backend_name: str, futures: Sequence[JobFuture]) -> None:
    """Account a dispatched batch: per-backend dispatch counter + in-flight gauge.

    The in-flight gauge decrements from each future's done-callback, which a
    :class:`JobFuture` guarantees runs before any ``result()`` returns — so
    the gauge never under-counts work a consumer can still be waiting on.
    No-op (one ``None`` check) when metrics are disabled.
    """
    if not futures:
        return
    registry = get_metrics()
    if registry is None:
        return
    registry.counter("backend.jobs.dispatched", backend=backend_name).inc(
        len(futures)
    )
    inflight = registry.gauge("backend.jobs.inflight", backend=backend_name)
    inflight.inc(len(futures))
    for future in futures:
        future.add_done_callback(lambda _f, g=inflight: g.dec())


class ExecutionBackend:
    """Interface of a runner execution backend (incremental protocol)."""

    #: Short identifier used in reports, benchmarks and :func:`get_backend`.
    name: str = "abstract"

    def submit_jobs(self, jobs: Sequence[SimulationJob]) -> List[JobFuture]:
        """Accept every job, returning one :class:`JobFuture` per job (in order).

        Must not block on job execution: futures resolve incrementally (or,
        for passive futures, when driven by the consumer).
        """
        raise NotImplementedError

    def run_jobs(self, jobs: Sequence[SimulationJob]) -> List[GanResult]:
        """Blocking convenience: execute every job, results in input order."""
        return [future.result() for future in self.submit_jobs(jobs)]

    def close(self) -> None:
        """Release any resources (pools, loops); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Execute jobs in the calling process, one at a time, on demand.

    ``submit_jobs`` returns deferred futures: nothing runs until a consumer
    drives them, and each job then executes synchronously in that consumer's
    thread.  Draining a batch in submission order is therefore exactly the
    pre-streaming serial loop — same order, same thread, no pool — which is
    what keeps this backend the bit-for-bit reference.
    """

    name = "serial"

    def submit_jobs(self, jobs: Sequence[SimulationJob]) -> List[JobFuture]:
        futures: List[JobFuture] = [DeferredJobFuture(job) for job in jobs]
        _record_dispatch(self.name, futures)
        return futures


class ProcessPoolBackend(ExecutionBackend):
    """Execute jobs on a ``ProcessPoolExecutor``.

    Small batches dispatch one pool task per job, so every job streams back
    individually.  Large batches are **chunked** (the same
    ``len(jobs) // (4 * workers)`` bound the pre-streaming ``pool.map`` used)
    to keep per-task IPC overhead amortised on big sweeps — a chunk's jobs
    then settle together when the chunk lands, trading intra-chunk streaming
    granularity for dispatch cost exactly where the granularity is least
    visible (many chunks are still in flight at once).

    The pool is created lazily on the first batch and reused across batches,
    so repeated sweep submissions amortise the worker start-up cost.  Call
    :meth:`close` (or use the backend as a context manager) to shut the
    workers down.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def max_workers(self) -> Optional[int]:
        return self._max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def _chunksize(self, job_count: int) -> int:
        workers = self._max_workers or os.cpu_count() or 1
        return max(1, job_count // (4 * workers))

    @staticmethod
    def _failed_future(error: BaseException) -> JobFuture:
        future = JobFuture()
        future.set_exception(error)
        return future

    def submit_jobs(self, jobs: Sequence[SimulationJob]) -> List[JobFuture]:
        """Submit every job; never raises mid-batch on a dead pool.

        ``pool.submit`` raises once the pool is broken (a worker died — e.g.
        killed by the OOM killer or an interrupt) or shut down.  Propagating
        that from the middle of the loop would discard the already-submitted
        futures and strand any consumer iterating ``as_completed`` over them;
        instead the offending job and every remaining job settle immediately
        as failed, so the full one-future-per-job list is always returned and
        every future reaches a terminal state.
        """
        if not jobs:
            return []
        pool = self._ensure_pool()
        chunksize = self._chunksize(len(jobs))
        if chunksize == 1:
            futures: List[JobFuture] = []
            for index, job in enumerate(jobs):
                try:
                    inner = pool.submit(execute_job, job)
                except BaseException as exc:
                    futures.extend(
                        self._failed_future(exc) for _ in range(index, len(jobs))
                    )
                    _record_dispatch(self.name, futures)
                    return futures
                futures.append(_WrappedJobFuture(inner))
            _record_dispatch(self.name, futures)
            return futures
        members_list: List[JobFuture] = [_ChunkMemberFuture() for _ in jobs]
        for start in range(0, len(jobs), chunksize):
            members = members_list[start : start + chunksize]
            try:
                inner = pool.submit(
                    _execute_job_chunk, list(jobs[start : start + chunksize])
                )
            except BaseException as exc:
                for member in members_list[start:]:
                    member.set_exception(exc)
                _record_dispatch(self.name, members_list)
                return members_list
            for member in members:
                member._bind(inner)
            inner.add_done_callback(
                lambda f, members=members: _settle_chunk(members, f)
            )
        _record_dispatch(self.name, members_list)
        return members_list

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class AsyncioBackend(ExecutionBackend):
    """Execute jobs through an asyncio event loop with thread offload.

    A dedicated thread runs the loop; each job becomes a coroutine awaiting
    ``loop.run_in_executor(thread_pool, execute_job, job)`` that settles the
    job's :class:`JobFuture` itself — the atomic pending->running transition
    doubles as the cancellation gate, so ``cancel()`` only ever succeeds for
    jobs that have not started (matching the serial and pool backends).
    Results are identical to serial ones (the simulators are deterministic
    pure Python), and the loop gives event-driven services a natural
    integration point: it can hold many in-flight jobs with one pool of
    worker threads.
    """

    name = "asyncio"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        # In-flight coroutine futures: close() must let them settle before
        # stopping the loop, or their JobFutures would never resolve.
        self._inflight: set = set()
        self._inflight_lock = threading.Lock()

    @property
    def max_workers(self) -> Optional[int]:
        return self._max_workers

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-asyncio-job",
            )
            self._thread = threading.Thread(
                target=self._loop.run_forever,
                name="repro-asyncio-loop",
                daemon=True,
            )
            self._thread.start()
        return self._loop

    async def _run(self, job: SimulationJob, future: JobFuture) -> None:
        # The atomic pending->running transition is the cancellation gate:
        # JobFuture.cancel() only wins while the job is still pending, so a
        # job that starts executing always delivers its result — the same
        # contract the serial and pool backends honor.
        if not future.set_running():
            return  # cancelled before it started; the future is settled
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(self._executor, execute_job, job)
        except asyncio.CancelledError:
            # only close()'s drain cancels tasks, and it runs after every
            # in-flight submission settled — but never strand a waiter
            if not future.done():
                future.set_exception(CancelledError())
            raise
        except BaseException as exc:
            future.set_exception(exc)
        else:
            future.set_result(result)

    @staticmethod
    async def _drain() -> None:
        """Let every remaining task (incl. cancellation unwinds) finish."""
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def submit_jobs(self, jobs: Sequence[SimulationJob]) -> List[JobFuture]:
        if not jobs:
            return []
        loop = self._ensure_loop()
        futures: List[JobFuture] = []
        for job in jobs:
            future = JobFuture()
            inner = asyncio.run_coroutine_threadsafe(self._run(job, future), loop)
            with self._inflight_lock:
                self._inflight.add(inner)
            inner.add_done_callback(self._discard_inflight)
            futures.append(future)
        _record_dispatch(self.name, futures)
        return futures

    def _discard_inflight(self, inner) -> None:
        with self._inflight_lock:
            self._inflight.discard(inner)

    def close(self) -> None:
        if self._loop is None:
            return
        # Let every in-flight job settle first (mirrors ProcessPoolBackend's
        # shutdown(wait=True)): stopping the loop underneath an awaiting
        # coroutine would leave its JobFuture unresolved forever.
        with self._inflight_lock:
            pending = list(self._inflight)
        if pending:
            futures_wait(pending)
        # Cancelled wrapper futures settle before their asyncio Tasks finish
        # unwinding; drain the loop so no Task is destroyed while pending.
        asyncio.run_coroutine_threadsafe(self._drain(), self._loop).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None and self._executor is not None
        self._thread.join()
        self._executor.shutdown(wait=True)
        self._loop.close()
        self._loop = self._thread = self._executor = None


#: Backend name -> factory, for the CLI's ``--backend`` flag and services
#: that configure execution by name.  Every factory accepts ``max_workers``
#: (ignored where meaningless) so the registry is uniform.
BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: lambda max_workers=None: SerialBackend(),
    ProcessPoolBackend.name: ProcessPoolBackend,
    AsyncioBackend.name: AsyncioBackend,
}


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


def get_backend(name: str, max_workers: Optional[int] = None) -> ExecutionBackend:
    """Build an execution backend by registered name.

    Unknown names raise :class:`~repro.errors.ConfigurationError` listing
    every registered backend.
    """
    key = str(name).strip().lower()
    factory = BACKENDS.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown execution backend '{name}'; "
            f"available: {', '.join(backend_names())}"
        )
    return factory(max_workers=max_workers)
