"""Pluggable execution backends for the simulation runner.

A backend turns a batch of :class:`~repro.runner.job.SimulationJob` objects
into :class:`~repro.analysis.results.GanResult` objects, preserving order.
The runner guarantees the batch it dispatches is already deduplicated and
cache-filtered, so a backend only ever sees work that must actually run.

* :class:`SerialBackend` — in-process loop; the reference implementation all
  other backends must match bit-for-bit (enforced by the parity tests in
  ``tests/test_runner.py``).
* :class:`ProcessPoolBackend` — ``concurrent.futures.ProcessPoolExecutor``
  fan-out.  Jobs and results are plain picklable dataclasses, and the
  analytical models are deterministic, so parallel results are byte-identical
  to serial ones.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from ..analysis.results import GanResult
from .job import SimulationJob, execute_job


class ExecutionBackend:
    """Interface of a runner execution backend."""

    #: Short identifier used in reports and benchmarks.
    name: str = "abstract"

    def run_jobs(self, jobs: Sequence[SimulationJob]) -> List[GanResult]:
        """Execute every job, returning results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (pools); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Execute jobs one after another in the calling process."""

    name = "serial"

    def run_jobs(self, jobs: Sequence[SimulationJob]) -> List[GanResult]:
        return [execute_job(job) for job in jobs]


class ProcessPoolBackend(ExecutionBackend):
    """Execute jobs on a ``ProcessPoolExecutor``.

    The pool is created lazily on the first batch and reused across batches,
    so repeated sweep submissions amortise the worker start-up cost.  Call
    :meth:`close` (or use the backend as a context manager) to shut the
    workers down.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def max_workers(self) -> Optional[int]:
        return self._max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def run_jobs(self, jobs: Sequence[SimulationJob]) -> List[GanResult]:
        if not jobs:
            return []
        pool = self._ensure_pool()
        # chunk to bound per-task IPC overhead on large sweeps
        workers = self._max_workers or os.cpu_count() or 1
        chunksize = max(1, len(jobs) // (4 * workers))
        return list(pool.map(execute_job, jobs, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
