"""The consumer side of the streaming execution API: :class:`BatchHandle`.

:meth:`SimulationRunner.submit() <repro.runner.runner.SimulationRunner.submit>`
returns a handle immediately; the handle then lets the caller consume the
batch however suits it:

* :meth:`BatchHandle.as_completed` — yield :class:`~repro.runner.events.
  JobCompletion` records *in completion order*, as results land.  Cache hits
  and batch duplicates resolve immediately, so warm batches stream without
  touching the backend at all.
* :meth:`BatchHandle.iter_results` — yield plain results in *submission
  order*, blocking per slot (the streaming counterpart of the old batch
  return value).
* :meth:`BatchHandle.results` — block until everything finished and return
  the full list (this is exactly what ``run_jobs()`` does).
* :meth:`BatchHandle.cancel` — cancel every job that has not started.

With the serial backend, jobs execute lazily *in the consuming thread* as the
handle's iterators drive them — streaming costs nothing and completion order
equals submission order.  With the pool/asyncio backends jobs execute in the
background and the iterators genuinely overlap consumption with execution.

Listeners subscribed on the runner (or passed per batch via ``on_event``)
receive the :class:`~repro.runner.events.RunnerEvent` narration of the batch;
exceptions raised by listeners are suppressed — the event stream is
observability, and a broken observer must not corrupt results.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from concurrent.futures import CancelledError

from ..analysis.results import GanResult
from .backends import JobFuture
from .events import (
    PROVENANCE_DEDUPLICATED,
    JobCompletion,
    RunnerEvent,
)
from .job import SimulationJob

EventListener = Callable[[RunnerEvent], None]

_KIND_CACHE_HIT = "cache-hit"
_KIND_COMPLETED = "completed"
_KIND_FAILED = "failed"
_KIND_CANCELLED = "cancelled"

# Per-process source of job correlation ids (RunnerEvent.job_uid).  The pid
# prefix keeps uids from different processes (a restarted CLI appending to
# the same journal, pool parents vs. workers) from colliding.
_job_uids = itertools.count(1)


class _Entry:
    """Book-keeping for one submitted job (one submission slot)."""

    __slots__ = (
        "job",
        "index",
        "uid",
        "state",
        "result",
        "error",
        "provenance",
        "future",
        "primary",
        "duplicates",
        "driven",
        "span",
    )

    def __init__(self, job: SimulationJob, index: int) -> None:
        self.job = job
        self.index = index
        self.uid = f"job-{os.getpid()}-{next(_job_uids)}"
        self.state: Optional[str] = None  # terminal event kind once resolved
        self.result: Optional[GanResult] = None
        self.error: Optional[BaseException] = None
        self.provenance: Optional[str] = None
        self.future: Optional[JobFuture] = None
        self.primary: Optional["_Entry"] = None  # set on batch duplicates
        self.duplicates: List["_Entry"] = []
        self.driven = False  # handed to a consumer for passive driving
        self.span: Optional[Any] = None  # open tracing span (tracing on only)


class BatchHandle:
    """A submitted batch of simulation jobs, consumable as a stream.

    Built by :meth:`SimulationRunner.submit`; not constructed directly.
    """

    def __init__(
        self,
        jobs: Sequence[SimulationJob],
        listeners: Sequence[EventListener] = (),
    ) -> None:
        self._jobs: Tuple[SimulationJob, ...] = tuple(jobs)
        self._listeners: Tuple[EventListener, ...] = tuple(listeners)
        self._cond = threading.Condition()
        self._entries: List[_Entry] = [
            _Entry(job, index) for index, job in enumerate(self._jobs)
        ]
        self._ready: Deque[_Entry] = deque()
        self._terminal = 0
        self._passive_cursor = 0  # next candidate for passive driving
        self._counts: Dict[str, int] = {
            _KIND_CACHE_HIT: 0,
            _KIND_COMPLETED: 0,
            _KIND_FAILED: 0,
            _KIND_CANCELLED: 0,
        }
        # Tracing state, wired by SimulationRunner.submit when tracing is on:
        # one batch span parenting one job span per entry.  The handle closes
        # each job span at its terminal event and the batch span when the
        # last entry terminates.
        self._tracer: Optional[Any] = None
        self._batch_span: Optional[Any] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> Tuple[SimulationJob, ...]:
        """The submitted jobs, in submission order."""
        return self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def done(self) -> bool:
        """Whether every job has reached a terminal state."""
        with self._cond:
            return self._terminal >= len(self._entries)

    def counts(self) -> Dict[str, int]:
        """Terminal-outcome counters: cache-hit / completed / failed / cancelled.

        ``pending`` holds the jobs that have not terminated yet; a batch
        satisfies ``sum(terminals) + pending == len(handle)`` at all times.
        """
        with self._cond:
            counts = dict(self._counts)
            counts["pending"] = len(self._entries) - self._terminal
        return counts

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def as_completed(self, raise_on_error: bool = True) -> Iterator[JobCompletion]:
        """Yield a :class:`JobCompletion` per job, in completion order.

        Cache hits and duplicates land first (they resolve at submission);
        executed jobs follow as the backend finishes them.  With a serial
        backend this iterator *drives* execution: each pending job runs in
        the consuming thread when the iterator reaches for more work.

        Failed jobs re-raise their exception unless ``raise_on_error`` is
        False, in which case the completion carries ``error`` and a ``None``
        result.  Cancelled jobs are skipped (see :meth:`counts`).  One
        consumer per handle: completions are delivered exactly once.
        """
        while True:
            entry: Optional[_Entry] = None
            to_drive: Optional[_Entry] = None
            with self._cond:
                while True:
                    if self._ready:
                        entry = self._ready.popleft()
                        break
                    if self._terminal >= len(self._entries):
                        return
                    to_drive = self._next_passive_locked()
                    if to_drive is not None:
                        break
                    self._cond.wait()
            if entry is None:
                assert to_drive is not None and to_drive.future is not None
                to_drive.future.drive()  # resolves the entry via callbacks
                continue
            if entry.state == _KIND_CANCELLED:
                continue
            if entry.state == _KIND_FAILED and raise_on_error:
                assert entry.error is not None
                raise entry.error
            yield JobCompletion(
                job=entry.job,
                result=entry.result,
                provenance=entry.provenance or entry.state or "",
                index=entry.index,
                error=entry.error,
            )

    def iter_results(self) -> Iterator[GanResult]:
        """Yield results in submission order, blocking per slot.

        Raises the failing job's exception at its slot and
        :class:`concurrent.futures.CancelledError` for cancelled jobs —
        matching the blocking semantics of ``run_jobs()``.
        """
        for entry in self._entries:
            self._wait_terminal(entry)
            if entry.state == _KIND_CANCELLED:
                raise CancelledError()
            if entry.error is not None:
                raise entry.error
            assert entry.result is not None
            yield entry.result

    def results(self) -> List[GanResult]:
        """Block until every job finished; results in submission order."""
        return list(self.iter_results())

    def cancel(self) -> int:
        """Cancel every job that has not started; returns how many were.

        Cache hits, duplicates of resolved jobs and already-running or
        finished jobs are unaffected; their results remain consumable.
        Batch duplicates follow their primary.  Idempotent.
        """
        cancelled = 0
        for entry in self._entries:
            if entry.primary is not None:
                continue  # duplicates resolve with their primary
            future = entry.future
            if future is None:
                continue  # resolved at submission (cache hit)
            if future.cancel():
                cancelled += 1
        return cancelled

    # ------------------------------------------------------------------
    # Producer-side wiring (called by SimulationRunner)
    # ------------------------------------------------------------------
    def _emit(self, event: RunnerEvent) -> None:
        for listener in self._listeners:
            try:
                listener(event)
            except Exception:
                pass  # observability must not corrupt the batch

    def _emit_lifecycle(self, kind: str, entry: _Entry) -> None:
        """Emit a non-terminal event (scheduled / deduped / started)."""
        self._emit(
            RunnerEvent(
                kind=kind, job=entry.job, index=entry.index, job_uid=entry.uid
            )
        )

    def _attach_future(self, entry: _Entry, future: JobFuture) -> None:
        entry.future = future
        future.add_running_callback(
            lambda _f, entry=entry: self._emit_lifecycle("started", entry)
        )

    def _register_duplicate(self, entry: _Entry, primary: _Entry) -> None:
        """Tie ``entry``'s outcome to ``primary``'s (same cache key)."""
        entry.primary = primary
        with self._cond:
            pending = primary.state is None
            if pending:
                primary.duplicates.append(entry)
            else:
                kind, result, error = primary.state, primary.result, primary.error
        if not pending:
            self._resolve(
                entry,
                kind,
                result=result,
                error=error,
                provenance=PROVENANCE_DEDUPLICATED,
            )

    def _resolve(
        self,
        entry: _Entry,
        kind: str,
        result: Optional[GanResult] = None,
        error: Optional[BaseException] = None,
        provenance: Optional[str] = None,
    ) -> bool:
        """Move one entry to a terminal state, publish it, cascade to dups."""
        with self._cond:
            if entry.state is not None:
                return False
            entry.state = kind
            entry.result = result
            entry.error = error
            entry.provenance = provenance
            duplicates = list(entry.duplicates)
            self._ready.append(entry)
            self._terminal += 1
            self._counts[kind] += 1
            # The entry that completes the batch also closes the batch span;
            # taking it under the lock makes the close exactly-once even when
            # backend threads race the submitting thread to the last slot.
            batch_span = None
            if self._batch_span is not None and self._terminal >= len(self._entries):
                batch_span = self._batch_span
                self._batch_span = None
                final_counts = dict(self._counts)
            self._cond.notify_all()
        if entry.span is not None and self._tracer is not None:
            self._tracer.end(entry.span, outcome=kind, provenance=provenance)
            entry.span = None
        self._emit(
            RunnerEvent(
                kind=kind,
                job=entry.job,
                index=entry.index,
                provenance=provenance,
                result=result,
                error=error,
                job_uid=entry.uid,
            )
        )
        for duplicate in duplicates:
            self._resolve(
                duplicate,
                kind,
                result=result,
                error=error,
                provenance=PROVENANCE_DEDUPLICATED,
            )
        if batch_span is not None and self._tracer is not None:
            self._tracer.end(batch_span, counts=final_counts)
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_passive_locked(self) -> Optional[_Entry]:
        """The next undriven passive future, marked as handed out (lock held).

        A persistent cursor keeps the scan amortised O(1) per drive: every
        skip condition is permanent (futures attach before the handle is
        consumable, ``driven`` and terminal states never revert), so entries
        behind the cursor never need revisiting.
        """
        while self._passive_cursor < len(self._entries):
            entry = self._entries[self._passive_cursor]
            self._passive_cursor += 1
            if entry.state is not None or entry.driven or entry.primary is not None:
                continue
            future = entry.future
            if future is not None and future.passive:
                entry.driven = True
                return entry
        return None

    def _wait_terminal(self, entry: _Entry) -> None:
        with self._cond:
            if entry.state is not None:
                return
        target = entry.primary if entry.primary is not None else entry
        future = target.future
        if future is not None:
            with self._cond:
                target.driven = True
            try:
                future.result()  # drives passive futures; callbacks resolve us
            except BaseException:
                pass  # outcome (error/cancellation) captured on the entry
        with self._cond:
            while entry.state is None:
                self._cond.wait()
