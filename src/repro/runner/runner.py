"""The simulation runner: streaming scheduling, deduplication and caching.

:class:`SimulationRunner` is the single execution seam every sweep, experiment
and CLI invocation submits through.  The core API is **submit in, stream
out**: :meth:`SimulationRunner.submit` accepts a batch of
:class:`~repro.runner.job.SimulationJob` objects and immediately returns a
:class:`~repro.runner.handle.BatchHandle`, after

1. **deduplicating** jobs by content hash, so identical (model, accelerator,
   config, options) combinations — common across experiments that share the
   paper-default configuration — execute at most once per batch,
2. answering what it can from the **content-addressed cache** (those jobs
   resolve on the handle instantly), and
3. dispatching only the remaining unique misses to the configured
   :class:`~repro.runner.backends.ExecutionBackend` (serial, process pool or
   asyncio) through the incremental ``submit_jobs`` protocol, so results
   stream back per job instead of arriving with the slowest one.

Consumers pull from the handle (``as_completed()`` / ``iter_results()`` /
``results()``) and can observe the typed
:class:`~repro.runner.events.RunnerEvent` life cycle of every job through
:meth:`SimulationRunner.subscribe` or a per-batch ``on_event`` callback.
:meth:`run_jobs` — the pre-streaming batch API — is now a thin blocking
wrapper over ``submit()``, so the serial-parity and golden guarantees hold
unchanged.

The comparison entry points are registry-driven and N-way:
:meth:`compare_accelerators` / :meth:`compare_accelerators_over_configs`
assemble :class:`~repro.analysis.results.MultiComparison` values over any set
of registered accelerator names, and the legacy two-way helpers
(:meth:`compare_model`, :meth:`compare_models`,
:meth:`compare_models_over_configs`) are their ``("eyeriss", "ganax")``
special case, producing the :class:`~repro.analysis.results.ComparisonResult`
values that :mod:`repro.analysis.sweep` and the experiment harness consume.

A process-wide default runner (one serial backend + one shared in-memory
cache) backs the module-level ``compare_model``/``compare_models`` helpers so
casual library use benefits from caching without any setup.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..accelerators.registry import get_accelerator
from ..analysis.results import ComparisonResult, GanResult, MultiComparison
from ..config import ArchitectureConfig, SimulationOptions
from ..errors import AnalysisError
from ..nn.network import GANModel
from ..telemetry import MetricsSubscriber, get_metrics, get_tracer
from .backends import ExecutionBackend, JobFuture, SerialBackend
from .cache import CacheStats, InMemoryResultCache, ResultCache
from .events import PROVENANCE_CACHE, PROVENANCE_EXECUTED
from .handle import BatchHandle, EventListener, _Entry
from .job import COMPARISON_PAIR, SimulationJob


def resolve_accelerators(
    accelerators: Optional[Sequence[str]] = None, baseline: Optional[str] = None
) -> Tuple[Tuple[str, ...], str]:
    """Validate and normalize an accelerator list and its baseline.

    Names resolve through the registry (unknown ones raise
    :class:`~repro.errors.UnknownAcceleratorError`), order is preserved and
    duplicates collapse.  ``accelerators`` defaults to the paper's
    ``("eyeriss", "ganax")`` pair; ``baseline`` defaults to ``"eyeriss"``
    when present, else the first listed accelerator, and must be a member of
    the list.
    """
    requested = tuple(accelerators) if accelerators is not None else COMPARISON_PAIR
    names: List[str] = []
    for name in requested:
        canonical = get_accelerator(name).name
        if canonical not in names:
            names.append(canonical)
    if not names:
        raise AnalysisError("no accelerators provided")
    if baseline is None:
        resolved_baseline = "eyeriss" if "eyeriss" in names else names[0]
    else:
        resolved_baseline = get_accelerator(baseline).name
        if resolved_baseline not in names:
            raise AnalysisError(
                f"baseline '{resolved_baseline}' is not among the compared "
                f"accelerators: {', '.join(names)}"
            )
    return tuple(names), resolved_baseline


class SimulationRunner:
    """Execute simulation jobs through a backend with content-hash caching.

    Parameters
    ----------
    backend:
        Execution backend; defaults to a fresh :class:`SerialBackend`.
    cache:
        Result cache; defaults to a fresh :class:`InMemoryResultCache`.
        Pass ``None`` explicitly via ``use_cache=False`` to disable caching.
    use_cache:
        When False the runner never consults or fills a cache (every job in
        a batch still deduplicates against identical batch-mates).
    """

    def __init__(
        self,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
    ) -> None:
        self._backend = backend if backend is not None else SerialBackend()
        # `is not None`, not truthiness: an empty cache has len() == 0
        self._cache: Optional[ResultCache] = (
            (cache if cache is not None else InMemoryResultCache())
            if use_cache
            else None
        )
        self._stats = CacheStats()
        # Streaming completions land on backend callback threads; the cache
        # and the stats counters are shared with the submitting thread.
        self._lock = threading.Lock()
        # Job outcome counters and latency histograms come for free on every
        # runner; the subscriber no-ops when metrics are disabled.
        self._listeners: List[EventListener] = [MetricsSubscriber()]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def stats(self) -> CacheStats:
        """Cache accounting for every batch this runner has executed."""
        return self._stats

    def close(self) -> None:
        """Shut down the backend (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "SimulationRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def subscribe(self, listener: EventListener) -> Callable[[], None]:
        """Register a callback for every :class:`RunnerEvent` this runner emits.

        The listener fires for every batch submitted *after* this call (the
        snapshot is taken at ``submit()`` time) and must not raise — listener
        exceptions are suppressed to protect the batch.  Returns an
        unsubscribe callable.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    # ------------------------------------------------------------------
    # Core streaming scheduler
    # ------------------------------------------------------------------
    def submit(
        self,
        jobs: Sequence[SimulationJob],
        on_event: Optional[EventListener] = None,
    ) -> BatchHandle:
        """Submit a batch and return a :class:`BatchHandle` immediately.

        Per job, in submission order: identical batch-mates (equal
        ``cache_key``) are tied to the first occurrence (``deduped``), cache
        hits resolve on the handle instantly (``cache-hit``), and the
        remaining unique misses go to the backend's incremental
        ``submit_jobs`` — their results land on the handle (and in the
        cache) as each job finishes, from whichever thread the backend
        completes it on.

        ``on_event`` observes just this batch; listeners registered through
        :meth:`subscribe` observe every batch.
        """
        jobs = list(jobs)
        listeners = tuple(self._listeners)
        if on_event is not None:
            listeners += (on_event,)
        handle = BatchHandle(jobs, listeners)
        registry = get_metrics()
        tracer = get_tracer()
        if tracer is not None and jobs:
            # One batch span parenting one job span per entry; the handle
            # closes each job span at its terminal event and the batch span
            # when the last entry terminates (see BatchHandle._resolve).
            handle._tracer = tracer
            handle._batch_span = tracer.begin("batch", jobs=len(jobs))
            for entry in handle._entries:
                entry.span = tracer.begin(
                    "job",
                    parent_id=handle._batch_span.span_id,
                    model=entry.job.model_name,
                    accelerator=entry.job.accelerator,
                    index=entry.index,
                )
        # Every job announces itself before anything resolves, so listeners
        # (e.g. the CLI's progress line) see the true batch size up front
        # even when cache hits would otherwise terminate instantly.
        for entry in handle._entries:
            handle._emit_lifecycle("scheduled", entry)
        primaries: Dict[str, _Entry] = {}
        pending: List[_Entry] = []
        for entry in handle._entries:
            key = entry.job.cache_key
            primary = primaries.get(key)
            if primary is not None:
                with self._lock:
                    self._stats.deduplicated += 1
                if registry is not None:
                    registry.counter("runner.cache.deduplicated").inc()
                handle._emit_lifecycle("deduped", entry)
                handle._register_duplicate(entry, primary)
                continue
            primaries[key] = entry
            cached = None
            if self._cache is not None:
                with self._lock:
                    cached = self._cache.get(key)
            if cached is not None:
                with self._lock:
                    self._stats.hits += 1
                if registry is not None:
                    registry.counter("runner.cache.hits").inc()
                handle._resolve(
                    entry, "cache-hit", result=cached, provenance=PROVENANCE_CACHE
                )
                continue
            with self._lock:
                self._stats.misses += 1
            if registry is not None:
                registry.counter("runner.cache.misses").inc()
            pending.append(entry)

        if pending:
            if tracer is not None:
                # The pool/asyncio backends execute jobs on other threads
                # where the submit-time span stack is invisible; publishing
                # cache_key -> job-span-id lets execute_job() parent its
                # simulate spans onto the right job regardless of thread.
                for entry in pending:
                    if entry.span is not None:
                        tracer.register_job(entry.job.cache_key, entry.span.span_id)
            futures = self._backend.submit_jobs([entry.job for entry in pending])
            if len(futures) != len(pending):
                raise AnalysisError(
                    f"backend '{self._backend.name}' returned {len(futures)} "
                    f"futures for {len(pending)} jobs"
                )
            for entry, future in zip(pending, futures):
                handle._attach_future(entry, future)
            for entry, future in zip(pending, futures):
                future.add_done_callback(
                    lambda f, entry=entry, handle=handle: self._finish_job(
                        handle, entry, f
                    )
                )
        return handle

    def _finish_job(
        self, handle: BatchHandle, entry: _Entry, future: JobFuture
    ) -> None:
        """Done-callback for one executed job: account, cache, publish."""
        tracer = handle._tracer
        if tracer is not None:
            tracer.unregister_job(entry.job.cache_key)
        if future.cancelled():
            handle._resolve(entry, "cancelled")
            return
        error = future.exception()
        if error is not None:
            handle._resolve(
                entry, "failed", error=error, provenance=PROVENANCE_EXECUTED
            )
            return
        result = future.peek_result()
        assert result is not None
        stored = False
        with self._lock:
            if self._cache is not None:
                try:
                    self._cache.put(entry.job.cache_key, result)
                    self._stats.stores += 1
                    stored = True
                except Exception:
                    pass  # a failed store must not lose the computed result
        if stored:
            registry = get_metrics()
            if registry is not None:
                registry.counter("runner.cache.stores").inc()
        handle._resolve(
            entry, "completed", result=result, provenance=PROVENANCE_EXECUTED
        )

    def run_jobs(self, jobs: Sequence[SimulationJob]) -> List[GanResult]:
        """Run a batch of jobs, returning results in submission order.

        The blocking wrapper over :meth:`submit`: identical jobs (equal
        ``cache_key``) execute at most once and duplicate submissions share
        the single result object, exactly as the handle's ``results()``
        delivers them.
        """
        return self.submit(jobs).results()

    def run_job(self, job: SimulationJob) -> GanResult:
        """Run a single job (through the cache)."""
        return self.run_jobs([job])[0]

    # ------------------------------------------------------------------
    # Streaming comparison consumers
    # ------------------------------------------------------------------
    def stream_accelerators(
        self,
        models: Sequence[GANModel],
        accelerators: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Iterator[Tuple[str, MultiComparison]]:
        """Yield ``(model_name, MultiComparison)`` as each model's grid lands.

        The streaming counterpart of :meth:`compare_accelerators`: the whole
        (model x accelerator) grid is submitted at once, and a model is
        yielded as soon as *its* jobs have all completed — cache-warm models
        arrive immediately, even while others still simulate.  Abandoning
        the iterator cancels the batch's unstarted jobs.
        """
        for _label, model_name, multi in self.stream_accelerators_over_configs(
            models,
            {"default": config or ArchitectureConfig.paper_default()},
            accelerators,
            baseline,
            options,
        ):
            yield model_name, multi

    def stream_accelerators_over_configs(
        self,
        models: Sequence[GANModel],
        labelled_configs: Mapping[str, ArchitectureConfig],
        accelerators: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Iterator[Tuple[str, str, MultiComparison]]:
        """Yield ``(config_label, model_name, MultiComparison)`` as groups land.

        The streaming counterpart of :meth:`compare_accelerators_over_configs`:
        one submission covers the whole (config x model x accelerator) grid,
        and each (config, model) cell is yielded the moment its accelerator
        set completes — in completion order, which with the serial backend
        equals submission order.  Closing the iterator early cancels every
        job that has not started.
        """
        if not models:
            raise AnalysisError("no models provided")
        if not labelled_configs:
            raise AnalysisError("no configurations provided")
        names, resolved_baseline = resolve_accelerators(accelerators, baseline)
        jobs: List[SimulationJob] = []
        # job index -> (group key, model occurrence); a group only accepts
        # completions from its *canonical* occurrence (the last model listed
        # under that name, matching the batch path's per-name dict slot), so
        # a name shared by distinct models never mixes results in one group
        # while equivalent spellings still collapse to a single yield.
        slots: List[Tuple[Tuple[str, str], int]] = []
        canonical: Dict[Tuple[str, str], int] = {}
        for label, config in labelled_configs.items():
            for occurrence, model in enumerate(models):
                key = (label, model.name)
                canonical[key] = occurrence
                for job in SimulationJob.for_accelerators(
                    model, names, config, options
                ):
                    jobs.append(job)
                    slots.append((key, occurrence))
        handle = self.submit(jobs)
        groups: Dict[Tuple[str, str], Dict[str, GanResult]] = {}
        complete: set = set()
        try:
            for completion in handle.as_completed():
                key, occurrence = slots[completion.index]
                if key in complete or canonical[key] != occurrence:
                    continue
                group = groups.setdefault(key, {})
                group[completion.job.accelerator] = completion.result
                if len(group) == len(names):
                    complete.add(key)
                    del groups[key]
                    label, model_name = key
                    yield label, model_name, MultiComparison(
                        model_name=model_name,
                        baseline=resolved_baseline,
                        results={name: group[name] for name in names},
                    )
        finally:
            handle.cancel()

    # ------------------------------------------------------------------
    # N-way comparison entry points (registry-driven)
    # ------------------------------------------------------------------
    def compare_accelerators(
        self,
        models: Sequence[GANModel],
        accelerators: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, MultiComparison]:
        """Run every GAN on every named accelerator; name -> MultiComparison.

        ``accelerators`` defaults to the paper's ``("eyeriss", "ganax")``
        pair and ``baseline`` to ``"eyeriss"`` when present (the first listed
        accelerator otherwise).  All ``len(accelerators) * len(models)`` jobs
        dispatch as one batch.
        """
        grid = self.compare_accelerators_over_configs(
            models,
            {"default": config or ArchitectureConfig.paper_default()},
            accelerators,
            baseline,
            options,
        )
        return grid["default"]

    def compare_accelerators_over_configs(
        self,
        models: Sequence[GANModel],
        labelled_configs: Mapping[str, ArchitectureConfig],
        accelerators: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, Dict[str, MultiComparison]]:
        """Run a (config x model x accelerator) grid as one deduplicated batch.

        The most general comparison entry point: every other comparison
        method — including the legacy two-way ones — reduces to it, so all
        simulation traffic resolves accelerator names through the registry
        and shares one submission.  Returns
        ``{config_label: {model_name: MultiComparison}}`` preserving the
        iteration order of ``labelled_configs``, ``models`` and
        ``accelerators``.
        """
        if not models:
            raise AnalysisError("no models provided")
        if not labelled_configs:
            raise AnalysisError("no configurations provided")
        names, resolved_baseline = resolve_accelerators(accelerators, baseline)
        jobs: List[SimulationJob] = []
        for config in labelled_configs.values():
            for model in models:
                jobs.extend(
                    SimulationJob.for_accelerators(model, names, config, options)
                )
        results = self.run_jobs(jobs)
        grid: Dict[str, Dict[str, MultiComparison]] = {}
        cursor = iter(results)
        for label in labelled_configs:
            comparisons: Dict[str, MultiComparison] = {}
            for model in models:
                per_accelerator = {name: next(cursor) for name in names}
                comparisons[model.name] = MultiComparison(
                    model_name=model.name,
                    baseline=resolved_baseline,
                    results=per_accelerator,
                )
            grid[label] = comparisons
        return grid

    # ------------------------------------------------------------------
    # Legacy two-way comparison entry points
    # ------------------------------------------------------------------
    def compare_model(
        self,
        model: GANModel,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> ComparisonResult:
        """Run one GAN on the legacy (eyeriss, ganax) pair; see compare_accelerators for N-way."""
        return self.compare_models([model], config, options)[model.name]

    def compare_models(
        self,
        models: Sequence[GANModel],
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, ComparisonResult]:
        """Run every GAN on the legacy (eyeriss, ganax) pair; name -> comparison.

        All ``2 * len(models)`` jobs dispatch as one batch, so a parallel
        backend overlaps models and accelerators.  N-way studies over other
        registered accelerators use :meth:`compare_accelerators`.
        """
        if not models:
            raise AnalysisError("no models provided")
        grid = self.compare_models_over_configs(
            models, {"default": config or ArchitectureConfig.paper_default()}, options
        )
        return grid["default"]

    def compare_models_over_configs(
        self,
        models: Sequence[GANModel],
        labelled_configs: Mapping[str, ArchitectureConfig],
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, Dict[str, ComparisonResult]]:
        """Run a (config x model) comparison grid as one deduplicated batch.

        This is the sweep fast path: every point of a parameter sweep joins a
        single submission, so the backend parallelises across the whole grid
        and configs that collapse to the same content hash run once.  It is
        the ``("eyeriss", "ganax")`` special case of
        :meth:`compare_accelerators_over_configs`.

        Returns ``{config_label: {model_name: ComparisonResult}}`` preserving
        the iteration order of ``labelled_configs`` and ``models``.
        """
        grid = self.compare_accelerators_over_configs(
            models,
            labelled_configs,
            COMPARISON_PAIR,
            baseline="eyeriss",
            options=options,
        )
        return {
            label: {
                name: multi.as_comparison() for name, multi in comparisons.items()
            }
            for label, comparisons in grid.items()
        }


# ----------------------------------------------------------------------
# Process-wide default runner
# ----------------------------------------------------------------------
_default_runner: Optional[SimulationRunner] = None


def get_default_runner() -> SimulationRunner:
    """The process-wide runner (serial backend + shared in-memory cache).

    Created lazily on first use; the module-level ``compare_model`` /
    ``compare_models`` helpers in :mod:`repro.analysis.sweep` and any
    :class:`~repro.experiments.base.ExperimentContext` built without an
    explicit runner all share it, so repeated paper-default simulations are
    computed once per process.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = SimulationRunner()
    return _default_runner


def set_default_runner(runner: Optional[SimulationRunner]) -> Optional[SimulationRunner]:
    """Replace the process-wide runner; returns the previous one (if any).

    Pass None to reset; the next :func:`get_default_runner` call creates a
    fresh serial runner.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
