"""The simulation runner: batched scheduling, deduplication and caching.

:class:`SimulationRunner` is the single execution seam every sweep, experiment
and CLI invocation submits through.  For each batch of
:class:`~repro.runner.job.SimulationJob` objects it

1. **deduplicates** jobs by content hash, so identical (model, accelerator,
   config, options) combinations — common across experiments that share the
   paper-default configuration — execute at most once per batch,
2. answers what it can from the **content-addressed cache**, and
3. dispatches only the remaining unique misses to the configured
   :class:`~repro.runner.backends.ExecutionBackend` (serial or process pool)
   in one batch, so a parallel backend sees the widest possible fan-out.

The comparison entry points are registry-driven and N-way:
:meth:`compare_accelerators` / :meth:`compare_accelerators_over_configs`
assemble :class:`~repro.analysis.results.MultiComparison` values over any set
of registered accelerator names, and the legacy two-way helpers
(:meth:`compare_model`, :meth:`compare_models`,
:meth:`compare_models_over_configs`) are their ``("eyeriss", "ganax")``
special case, producing the :class:`~repro.analysis.results.ComparisonResult`
values that :mod:`repro.analysis.sweep` and the experiment harness consume.

A process-wide default runner (one serial backend + one shared in-memory
cache) backs the module-level ``compare_model``/``compare_models`` helpers so
casual library use benefits from caching without any setup.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..accelerators.registry import get_accelerator
from ..analysis.results import ComparisonResult, GanResult, MultiComparison
from ..config import ArchitectureConfig, SimulationOptions
from ..errors import AnalysisError
from ..nn.network import GANModel
from .backends import ExecutionBackend, SerialBackend
from .cache import CacheStats, InMemoryResultCache, ResultCache
from .job import COMPARISON_PAIR, SimulationJob


def resolve_accelerators(
    accelerators: Optional[Sequence[str]] = None, baseline: Optional[str] = None
) -> Tuple[Tuple[str, ...], str]:
    """Validate and normalize an accelerator list and its baseline.

    Names resolve through the registry (unknown ones raise
    :class:`~repro.errors.UnknownAcceleratorError`), order is preserved and
    duplicates collapse.  ``accelerators`` defaults to the paper's
    ``("eyeriss", "ganax")`` pair; ``baseline`` defaults to ``"eyeriss"``
    when present, else the first listed accelerator, and must be a member of
    the list.
    """
    requested = tuple(accelerators) if accelerators is not None else COMPARISON_PAIR
    names: List[str] = []
    for name in requested:
        canonical = get_accelerator(name).name
        if canonical not in names:
            names.append(canonical)
    if not names:
        raise AnalysisError("no accelerators provided")
    if baseline is None:
        resolved_baseline = "eyeriss" if "eyeriss" in names else names[0]
    else:
        resolved_baseline = get_accelerator(baseline).name
        if resolved_baseline not in names:
            raise AnalysisError(
                f"baseline '{resolved_baseline}' is not among the compared "
                f"accelerators: {', '.join(names)}"
            )
    return tuple(names), resolved_baseline


class SimulationRunner:
    """Execute simulation jobs through a backend with content-hash caching.

    Parameters
    ----------
    backend:
        Execution backend; defaults to a fresh :class:`SerialBackend`.
    cache:
        Result cache; defaults to a fresh :class:`InMemoryResultCache`.
        Pass ``None`` explicitly via ``use_cache=False`` to disable caching.
    use_cache:
        When False the runner never consults or fills a cache (every job in
        a batch still deduplicates against identical batch-mates).
    """

    def __init__(
        self,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
    ) -> None:
        self._backend = backend if backend is not None else SerialBackend()
        # `is not None`, not truthiness: an empty cache has len() == 0
        self._cache: Optional[ResultCache] = (
            (cache if cache is not None else InMemoryResultCache())
            if use_cache
            else None
        )
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def stats(self) -> CacheStats:
        """Cache accounting for every batch this runner has executed."""
        return self._stats

    def close(self) -> None:
        """Shut down the backend (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "SimulationRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Core batched scheduler
    # ------------------------------------------------------------------
    def run_jobs(self, jobs: Sequence[SimulationJob]) -> List[GanResult]:
        """Run a batch of jobs, returning results in submission order.

        Identical jobs (equal ``cache_key``) are executed at most once; the
        duplicate submissions share the single result object.
        """
        jobs = list(jobs)
        resolved: Dict[str, GanResult] = {}
        pending: List[SimulationJob] = []
        pending_keys: set = set()
        for job in jobs:
            key = job.cache_key
            if key in resolved or key in pending_keys:
                self._stats.deduplicated += 1
                continue
            if self._cache is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    self._stats.hits += 1
                    resolved[key] = cached
                    continue
            self._stats.misses += 1
            pending.append(job)
            pending_keys.add(key)

        if pending:
            results = self._backend.run_jobs(pending)
            if len(results) != len(pending):
                raise AnalysisError(
                    f"backend '{self._backend.name}' returned {len(results)} "
                    f"results for {len(pending)} jobs"
                )
            for job, result in zip(pending, results):
                resolved[job.cache_key] = result
                if self._cache is not None:
                    self._cache.put(job.cache_key, result)
                    self._stats.stores += 1

        return [resolved[job.cache_key] for job in jobs]

    def run_job(self, job: SimulationJob) -> GanResult:
        """Run a single job (through the cache)."""
        return self.run_jobs([job])[0]

    # ------------------------------------------------------------------
    # N-way comparison entry points (registry-driven)
    # ------------------------------------------------------------------
    def compare_accelerators(
        self,
        models: Sequence[GANModel],
        accelerators: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, MultiComparison]:
        """Run every GAN on every named accelerator; name -> MultiComparison.

        ``accelerators`` defaults to the paper's ``("eyeriss", "ganax")``
        pair and ``baseline`` to ``"eyeriss"`` when present (the first listed
        accelerator otherwise).  All ``len(accelerators) * len(models)`` jobs
        dispatch as one batch.
        """
        grid = self.compare_accelerators_over_configs(
            models,
            {"default": config or ArchitectureConfig.paper_default()},
            accelerators,
            baseline,
            options,
        )
        return grid["default"]

    def compare_accelerators_over_configs(
        self,
        models: Sequence[GANModel],
        labelled_configs: Mapping[str, ArchitectureConfig],
        accelerators: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, Dict[str, MultiComparison]]:
        """Run a (config x model x accelerator) grid as one deduplicated batch.

        The most general comparison entry point: every other comparison
        method — including the legacy two-way ones — reduces to it, so all
        simulation traffic resolves accelerator names through the registry
        and shares one submission.  Returns
        ``{config_label: {model_name: MultiComparison}}`` preserving the
        iteration order of ``labelled_configs``, ``models`` and
        ``accelerators``.
        """
        if not models:
            raise AnalysisError("no models provided")
        if not labelled_configs:
            raise AnalysisError("no configurations provided")
        names, resolved_baseline = resolve_accelerators(accelerators, baseline)
        jobs: List[SimulationJob] = []
        for config in labelled_configs.values():
            for model in models:
                jobs.extend(
                    SimulationJob.for_accelerators(model, names, config, options)
                )
        results = self.run_jobs(jobs)
        grid: Dict[str, Dict[str, MultiComparison]] = {}
        cursor = iter(results)
        for label in labelled_configs:
            comparisons: Dict[str, MultiComparison] = {}
            for model in models:
                per_accelerator = {name: next(cursor) for name in names}
                comparisons[model.name] = MultiComparison(
                    model_name=model.name,
                    baseline=resolved_baseline,
                    results=per_accelerator,
                )
            grid[label] = comparisons
        return grid

    # ------------------------------------------------------------------
    # Legacy two-way comparison entry points
    # ------------------------------------------------------------------
    def compare_model(
        self,
        model: GANModel,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> ComparisonResult:
        """Run one GAN on the legacy (eyeriss, ganax) pair; see compare_accelerators for N-way."""
        return self.compare_models([model], config, options)[model.name]

    def compare_models(
        self,
        models: Sequence[GANModel],
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, ComparisonResult]:
        """Run every GAN on the legacy (eyeriss, ganax) pair; name -> comparison.

        All ``2 * len(models)`` jobs dispatch as one batch, so a parallel
        backend overlaps models and accelerators.  N-way studies over other
        registered accelerators use :meth:`compare_accelerators`.
        """
        if not models:
            raise AnalysisError("no models provided")
        grid = self.compare_models_over_configs(
            models, {"default": config or ArchitectureConfig.paper_default()}, options
        )
        return grid["default"]

    def compare_models_over_configs(
        self,
        models: Sequence[GANModel],
        labelled_configs: Mapping[str, ArchitectureConfig],
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, Dict[str, ComparisonResult]]:
        """Run a (config x model) comparison grid as one deduplicated batch.

        This is the sweep fast path: every point of a parameter sweep joins a
        single submission, so the backend parallelises across the whole grid
        and configs that collapse to the same content hash run once.  It is
        the ``("eyeriss", "ganax")`` special case of
        :meth:`compare_accelerators_over_configs`.

        Returns ``{config_label: {model_name: ComparisonResult}}`` preserving
        the iteration order of ``labelled_configs`` and ``models``.
        """
        grid = self.compare_accelerators_over_configs(
            models,
            labelled_configs,
            COMPARISON_PAIR,
            baseline="eyeriss",
            options=options,
        )
        return {
            label: {
                name: multi.as_comparison() for name, multi in comparisons.items()
            }
            for label, comparisons in grid.items()
        }


# ----------------------------------------------------------------------
# Process-wide default runner
# ----------------------------------------------------------------------
_default_runner: Optional[SimulationRunner] = None


def get_default_runner() -> SimulationRunner:
    """The process-wide runner (serial backend + shared in-memory cache).

    Created lazily on first use; the module-level ``compare_model`` /
    ``compare_models`` helpers in :mod:`repro.analysis.sweep` and any
    :class:`~repro.experiments.base.ExperimentContext` built without an
    explicit runner all share it, so repeated paper-default simulations are
    computed once per process.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = SimulationRunner()
    return _default_runner


def set_default_runner(runner: Optional[SimulationRunner]) -> Optional[SimulationRunner]:
    """Replace the process-wide runner; returns the previous one (if any).

    Pass None to reset; the next :func:`get_default_runner` call creates a
    fresh serial runner.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
