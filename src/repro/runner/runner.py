"""The simulation runner: batched scheduling, deduplication and caching.

:class:`SimulationRunner` is the single execution seam every sweep, experiment
and CLI invocation submits through.  For each batch of
:class:`~repro.runner.job.SimulationJob` objects it

1. **deduplicates** jobs by content hash, so identical (model, accelerator,
   config, options) combinations — common across experiments that share the
   paper-default configuration — execute at most once per batch,
2. answers what it can from the **content-addressed cache**, and
3. dispatches only the remaining unique misses to the configured
   :class:`~repro.runner.backends.ExecutionBackend` (serial or process pool)
   in one batch, so a parallel backend sees the widest possible fan-out.

The convenience entry points (:meth:`compare_model`, :meth:`compare_models`,
:meth:`compare_models_over_configs`) assemble
:class:`~repro.analysis.results.ComparisonResult` values from job results and
are what :mod:`repro.analysis.sweep` and the experiment harness call.

A process-wide default runner (one serial backend + one shared in-memory
cache) backs the module-level ``compare_model``/``compare_models`` helpers so
casual library use benefits from caching without any setup.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..analysis.results import ComparisonResult, GanResult
from ..config import ArchitectureConfig, SimulationOptions
from ..errors import AnalysisError
from ..nn.network import GANModel
from .backends import ExecutionBackend, SerialBackend
from .cache import CacheStats, InMemoryResultCache, ResultCache
from .job import SimulationJob


class SimulationRunner:
    """Execute simulation jobs through a backend with content-hash caching.

    Parameters
    ----------
    backend:
        Execution backend; defaults to a fresh :class:`SerialBackend`.
    cache:
        Result cache; defaults to a fresh :class:`InMemoryResultCache`.
        Pass ``None`` explicitly via ``use_cache=False`` to disable caching.
    use_cache:
        When False the runner never consults or fills a cache (every job in
        a batch still deduplicates against identical batch-mates).
    """

    def __init__(
        self,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
    ) -> None:
        self._backend = backend if backend is not None else SerialBackend()
        # `is not None`, not truthiness: an empty cache has len() == 0
        self._cache: Optional[ResultCache] = (
            (cache if cache is not None else InMemoryResultCache())
            if use_cache
            else None
        )
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def stats(self) -> CacheStats:
        """Cache accounting for every batch this runner has executed."""
        return self._stats

    def close(self) -> None:
        """Shut down the backend (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "SimulationRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Core batched scheduler
    # ------------------------------------------------------------------
    def run_jobs(self, jobs: Sequence[SimulationJob]) -> List[GanResult]:
        """Run a batch of jobs, returning results in submission order.

        Identical jobs (equal ``cache_key``) are executed at most once; the
        duplicate submissions share the single result object.
        """
        jobs = list(jobs)
        resolved: Dict[str, GanResult] = {}
        pending: List[SimulationJob] = []
        pending_keys: set = set()
        for job in jobs:
            key = job.cache_key
            if key in resolved or key in pending_keys:
                self._stats.deduplicated += 1
                continue
            if self._cache is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    self._stats.hits += 1
                    resolved[key] = cached
                    continue
            self._stats.misses += 1
            pending.append(job)
            pending_keys.add(key)

        if pending:
            results = self._backend.run_jobs(pending)
            if len(results) != len(pending):
                raise AnalysisError(
                    f"backend '{self._backend.name}' returned {len(results)} "
                    f"results for {len(pending)} jobs"
                )
            for job, result in zip(pending, results):
                resolved[job.cache_key] = result
                if self._cache is not None:
                    self._cache.put(job.cache_key, result)
                    self._stats.stores += 1

        return [resolved[job.cache_key] for job in jobs]

    def run_job(self, job: SimulationJob) -> GanResult:
        """Run a single job (through the cache)."""
        return self.run_jobs([job])[0]

    # ------------------------------------------------------------------
    # Comparison-level entry points
    # ------------------------------------------------------------------
    def compare_model(
        self,
        model: GANModel,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> ComparisonResult:
        """Run one GAN on both accelerators with a shared configuration."""
        return self.compare_models([model], config, options)[model.name]

    def compare_models(
        self,
        models: Sequence[GANModel],
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, ComparisonResult]:
        """Run every GAN on both accelerators; returns name -> comparison.

        All ``2 * len(models)`` jobs dispatch as one batch, so a parallel
        backend overlaps models and accelerators.
        """
        if not models:
            raise AnalysisError("no models provided")
        grid = self.compare_models_over_configs(
            models, {"default": config or ArchitectureConfig.paper_default()}, options
        )
        return grid["default"]

    def compare_models_over_configs(
        self,
        models: Sequence[GANModel],
        labelled_configs: Mapping[str, ArchitectureConfig],
        options: Optional[SimulationOptions] = None,
    ) -> Dict[str, Dict[str, ComparisonResult]]:
        """Run a (config x model) comparison grid as one deduplicated batch.

        This is the sweep fast path: every point of a parameter sweep joins a
        single submission, so the backend parallelises across the whole grid
        and configs that collapse to the same content hash run once.

        Returns ``{config_label: {model_name: ComparisonResult}}`` preserving
        the iteration order of ``labelled_configs`` and ``models``.
        """
        if not models:
            raise AnalysisError("no models provided")
        if not labelled_configs:
            raise AnalysisError("no configurations provided")
        jobs: List[SimulationJob] = []
        for config in labelled_configs.values():
            for model in models:
                jobs.extend(SimulationJob.comparison_pair(model, config, options))
        results = self.run_jobs(jobs)
        grid: Dict[str, Dict[str, ComparisonResult]] = {}
        cursor = iter(results)
        for label in labelled_configs:
            comparisons: Dict[str, ComparisonResult] = {}
            for model in models:
                eyeriss, ganax = next(cursor), next(cursor)
                comparisons[model.name] = ComparisonResult(
                    model_name=model.name, eyeriss=eyeriss, ganax=ganax
                )
            grid[label] = comparisons
        return grid


# ----------------------------------------------------------------------
# Process-wide default runner
# ----------------------------------------------------------------------
_default_runner: Optional[SimulationRunner] = None


def get_default_runner() -> SimulationRunner:
    """The process-wide runner (serial backend + shared in-memory cache).

    Created lazily on first use; the module-level ``compare_model`` /
    ``compare_models`` helpers in :mod:`repro.analysis.sweep` and any
    :class:`~repro.experiments.base.ExperimentContext` built without an
    explicit runner all share it, so repeated paper-default simulations are
    computed once per process.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = SimulationRunner()
    return _default_runner


def set_default_runner(runner: Optional[SimulationRunner]) -> Optional[SimulationRunner]:
    """Replace the process-wide runner; returns the previous one (if any).

    Pass None to reset; the next :func:`get_default_runner` call creates a
    fresh serial runner.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
