"""The top-level N-way comparison facade: :class:`Session`.

A session pins down *which* accelerators are being compared (any entries of
the :mod:`repro.accelerators` registry), *which baseline* the ratios are
taken against, and *how* the simulations execute (a
:class:`~repro.runner.SimulationRunner` with its backend and cache), and then
answers comparison questions about any set of GAN workloads::

    from repro import Session
    from repro.accelerators import accelerator_names

    session = Session(accelerators=accelerator_names())
    comparisons = session.compare(["DCGAN", "MAGAN"])
    print(comparisons["DCGAN"].generator_speedups())
    # {'eyeriss': 1.0, 'ganax': 4.556, 'ganax-noskip': 0.9999..., 'ideal': 5.121}

Models may be given as registry names (``"DCGAN"``), family spec strings
(``"dcgan@32x32"``, ``"synthetic@d8c256"`` — see
:mod:`repro.workloads.families`) or :class:`~repro.nn.network.GANModel`
instances; ``compare()`` with no arguments covers every registered workload.
Every simulation in a session submits through one runner batch, so a pooled
backend fans out over the whole (model x accelerator) grid and results are
shared through the content-addressed cache.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .accelerators.registry import get_accelerator
from .analysis.results import MultiComparison
from .analysis.sweep import build_labelled_configs
from .config import ArchitectureConfig, SimulationOptions
from .errors import AnalysisError
from .nn.network import GANModel
from .runner import (
    SimulationJob,
    SimulationRunner,
    get_default_runner,
    resolve_accelerators,
)
from .workloads.registry import all_workloads, expand_workload_family, get_workload

#: A workload, by registry name / family spec string or as a built model.
ModelLike = Union[str, GANModel]


class Session:
    """An N-way accelerator comparison session.

    Parameters
    ----------
    accelerators:
        Registered accelerator names to compare (order is preserved,
        duplicates collapse).  Defaults to the paper's
        ``("eyeriss", "ganax")`` pair; pass
        :func:`~repro.accelerators.accelerator_names` to compare everything
        registered.  Unknown names raise
        :class:`~repro.errors.UnknownAcceleratorError`.
    baseline:
        The accelerator every speedup / energy-reduction ratio is taken
        against; defaults to ``"eyeriss"`` when compared, else the first
        listed accelerator.
    config / options:
        Shared :class:`ArchitectureConfig` and :class:`SimulationOptions`
        for every run (paper defaults when omitted).
    runner:
        The :class:`~repro.runner.SimulationRunner` simulations submit
        through; defaults to the process-wide cached runner.
    """

    def __init__(
        self,
        accelerators: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
        runner: Optional[SimulationRunner] = None,
    ) -> None:
        names, resolved_baseline = resolve_accelerators(accelerators, baseline)
        self._accelerators = names
        self._baseline = resolved_baseline
        self._config = config or ArchitectureConfig.paper_default()
        self._options = options or SimulationOptions()
        self._runner = runner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def accelerators(self) -> tuple:
        """Compared accelerator names, in comparison order."""
        return self._accelerators

    @property
    def baseline(self) -> str:
        return self._baseline

    @property
    def config(self) -> ArchitectureConfig:
        return self._config

    @property
    def options(self) -> SimulationOptions:
        return self._options

    @property
    def runner(self) -> SimulationRunner:
        if self._runner is None:
            self._runner = get_default_runner()
        return self._runner

    def describe(self) -> List[Dict[str, str]]:
        """Registry metadata for every compared accelerator."""
        return [get_accelerator(name).describe() for name in self._accelerators]

    # ------------------------------------------------------------------
    # Comparison entry points
    # ------------------------------------------------------------------
    def compare(
        self, models: Optional[Union[ModelLike, Iterable[ModelLike]]] = None
    ) -> Dict[str, MultiComparison]:
        """Compare workloads across the session's accelerators.

        Accepts a single model (name, family spec string or instance), an
        iterable of them, or nothing for all registered workloads.  Returns
        ``{model_name: MultiComparison}`` in submission order; the whole
        (model x accelerator) grid dispatches as one runner batch.
        """
        return self._compare_resolved(self._resolve_models(models))

    def compare_model(self, model: ModelLike) -> MultiComparison:
        """Compare one workload across the session's accelerators."""
        resolved = self._resolve_models(model)
        return self._compare_resolved(resolved)[resolved[0].name]

    def submit(
        self, models: Optional[Union[ModelLike, Iterable[ModelLike]]] = None
    ):
        """Submit the comparison grid and return its :class:`BatchHandle`.

        The non-blocking entry point: the whole (model x accelerator) grid
        joins one runner submission and the returned
        :class:`~repro.runner.BatchHandle` streams per-job completions
        (``as_completed()``) or blocks for everything (``results()``).
        Most consumers want :meth:`stream_compare`, which reassembles the
        per-model :class:`MultiComparison` values as they land.
        """
        resolved = self._resolve_models(models)
        jobs = [
            job
            for model in resolved
            for job in SimulationJob.for_accelerators(
                model, self._accelerators, self._config, self._options
            )
        ]
        return self.runner.submit(jobs)

    def stream_compare(
        self, models: Optional[Union[ModelLike, Iterable[ModelLike]]] = None
    ) -> Iterator[Tuple[str, MultiComparison]]:
        """Yield ``(model_name, MultiComparison)`` as each model completes.

        The streaming counterpart of :meth:`compare`: all jobs submit at
        once, and each model is yielded the moment its accelerator set has
        finished — cache-warm models arrive immediately while cold ones
        still simulate, so progress UIs and services can react per model
        instead of waiting for the slowest.  Closing the iterator early
        cancels every job that has not started.
        """
        yield from self.runner.stream_accelerators(
            self._resolve_models(models),
            self._accelerators,
            self._baseline,
            self._config,
            self._options,
        )

    def _compare_resolved(
        self, resolved: Sequence[GANModel]
    ) -> Dict[str, MultiComparison]:
        """The shared comparison path: models are already built instances."""
        return self.runner.compare_accelerators(
            resolved,
            self._accelerators,
            self._baseline,
            self._config,
            self._options,
        )

    def run(self, model: ModelLike, accelerator: str):
        """One workload on one accelerator (through the cached runner)."""
        resolved = self._resolve_models(model)[0]
        job = SimulationJob(
            model=resolved,
            accelerator=accelerator,
            config=self._config,
            options=self._options,
        )
        return self.runner.run_job(job)

    def sweep(
        self,
        parameter: str,
        values: Sequence[Any],
        models: Optional[Union[ModelLike, Iterable[ModelLike]]] = None,
        label_format: str = "{parameter}={value}",
    ) -> Dict[str, Dict[str, MultiComparison]]:
        """Sweep one configuration field across the session's accelerators.

        Returns ``{label: {model_name: MultiComparison}}`` — the N-way
        counterpart of :class:`~repro.analysis.sweep.ParameterSweep`; the
        whole (config x model x accelerator) grid joins one runner batch.
        """
        return self.runner.compare_accelerators_over_configs(
            self._resolve_models(models),
            build_labelled_configs(parameter, values, self._config, label_format),
            self._accelerators,
            self._baseline,
            self._options,
        )

    def explore(
        self,
        accelerator: Optional[str] = None,
        models: Optional[Union[ModelLike, Iterable[ModelLike]]] = None,
        fields: Optional[Sequence[str]] = None,
        overrides: Optional[Dict[str, Sequence[Any]]] = None,
        strategy: Optional[Any] = None,
        budget: Optional[int] = None,
        space: Optional[Any] = None,
        objectives: Optional[Sequence[Any]] = None,
        workload_family: Optional[str] = None,
        workload_variants: Optional[Sequence[str]] = None,
    ):
        """Design-space exploration of one session accelerator vs the baseline.

        ``accelerator`` defaults to the first compared accelerator that is
        not the baseline.  The space is materialized from that accelerator's
        ``config_space()`` over ``fields``/``overrides`` unless an explicit
        :class:`~repro.dse.DesignSpace` is passed, and every candidate
        evaluation submits through this session's runner (one job batch per
        strategy step, shared cache).

        The evaluated workload set is part of the searched space: pass
        ``models`` explicitly (names, family spec strings or instances), or
        target a whole **workload family** with ``workload_family`` — every
        candidate configuration is then scored across that family's variants
        (``workload_variants``, or the family's declared defaults), so the
        frontier optimizes over the family rather than the paper's fixed
        six.  Returns a :class:`~repro.dse.ExplorationResult`; see
        :mod:`repro.dse` for the strategies and the frontier API.
        """
        from .dse.engine import DesignSpaceExplorer

        if workload_family is not None:
            if models is not None:
                raise AnalysisError(
                    "pass either models or workload_family, not both"
                )
            models = expand_workload_family(workload_family, workload_variants)
        elif workload_variants is not None:
            raise AnalysisError("workload_variants requires workload_family")
        if accelerator is None:
            accelerator = next(
                (n for n in self._accelerators if n != self._baseline),
                self._accelerators[0],
            )
        explorer = DesignSpaceExplorer(
            accelerator=accelerator,
            baseline=self._baseline,
            models=self._resolve_models(models) if models is not None else None,
            base_config=self._config,
            options=self._options,
            objectives=objectives,
            runner=self.runner,
        )
        if space is None:
            space = explorer.space(fields=fields, overrides=overrides)
        return explorer.explore(space=space, strategy=strategy, budget=budget)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_models(
        models: Optional[Union[ModelLike, Iterable[ModelLike]]]
    ) -> List[GANModel]:
        if models is None:
            return list(all_workloads())
        if isinstance(models, (str, GANModel)):
            models = [models]
        resolved = [
            get_workload(model) if isinstance(model, str) else model
            for model in models
        ]
        if not resolved:
            raise AnalysisError("no models provided")
        return resolved
