"""3D-GAN workload (Wu et al., NIPS 2016).

Table I lists 3D-GAN with 4 transposed-convolution layers in the generator and
5 convolution layers in the discriminator.  The generator maps a 200-d latent
vector to a 4x4x4x512 voxel seed and upsamples it through four stride-2 4x4x4
3-D transposed convolutions to a 64x64x64 occupancy grid; the discriminator
mirrors it with five stride-2 3-D convolutions.

Because the zero insertion happens along all three spatial dimensions, 3D-GAN
has the largest fraction of inconsequential operations of all evaluated GANs
(about 80% in Figure 1) and consequently the largest speedup (6.1x in
Figure 8a).
"""

from __future__ import annotations

from ..nn.network import GANModel, Network
from ..nn.shapes import FeatureMapShape
from .builder import (
    build_discriminator,
    build_generator,
    conv_stack,
    doubling_channel_plan,
    halving_channel_plan,
    tconv_stack,
    upsampling_block_count,
)

LATENT_DIM = 200
BASE_CHANNELS = 512
GRID_SIZE = 64
SEED_SHAPE = FeatureMapShape.volume(channels=BASE_CHANNELS, depth=4, height=4, width=4)
VOXEL_SHAPE = FeatureMapShape.volume(
    channels=1, depth=GRID_SIZE, height=GRID_SIZE, width=GRID_SIZE
)


def build_threed_gan_generator() -> Network:
    """The 3D-GAN generator: 4 stride-2 4x4x4 3-D transposed convolutions."""
    layers = tconv_stack(
        channel_plan=[256, 128, 64, 1],
        kernel=4,
        stride=2,
        padding=1,
        rank=3,
        final_activation="sigmoid",
        prefix="tconv3d",
    )
    return build_generator("3dgan_generator", LATENT_DIM, SEED_SHAPE, layers)


def build_threed_gan_discriminator() -> Network:
    """The 3D-GAN discriminator: 5 stride-2 4x4x4 3-D convolutions."""
    layers = conv_stack(
        channel_plan=[32, 64, 128, 256, 512],
        kernel=4,
        stride=2,
        padding=1,
        rank=3,
        prefix="conv3d",
    )
    return build_discriminator("3dgan_discriminator", VOXEL_SHAPE, layers)


def build_threed_gan() -> GANModel:
    """The full 3D-GAN model as evaluated in the paper."""
    return GANModel(
        name="3D-GAN",
        generator=build_threed_gan_generator(),
        discriminator=build_threed_gan_discriminator(),
        year=2016,
        description="3D objects generation",
    )


def build_threed_gan_variant(
    size: int = GRID_SIZE,
    base_channels: int = BASE_CHANNELS,
    latent_dim: int = LATENT_DIM,
) -> GANModel:
    """A scaled 3D-GAN: the paper recipe at another voxel-grid resolution.

    One stride-2 4x4x4 3-D transposed convolution per doubling of the 4x4x4
    seed; the three-axis zero insertion makes this family the stress case
    for inconsequential-MAC fractions.  Backs the ``3dgan@...`` workload
    family (see :mod:`repro.workloads.families`).
    """
    blocks = upsampling_block_count(size)
    generator = build_generator(
        "3dgan_generator",
        latent_dim,
        FeatureMapShape.volume(channels=base_channels, depth=4, height=4, width=4),
        tconv_stack(
            channel_plan=halving_channel_plan(blocks, base_channels, 1, floor=8),
            kernel=4,
            stride=2,
            padding=1,
            rank=3,
            final_activation="sigmoid",
            prefix="tconv3d",
        ),
    )
    discriminator = build_discriminator(
        "3dgan_discriminator",
        FeatureMapShape.volume(channels=1, depth=size, height=size, width=size),
        conv_stack(
            channel_plan=doubling_channel_plan(blocks + 1, base_channels),
            kernel=4,
            stride=2,
            padding=1,
            rank=3,
            prefix="conv3d",
        ),
    )
    return GANModel(
        name="3D-GAN",
        generator=generator,
        discriminator=discriminator,
        year=2016,
        description=f"3D-GAN recipe on a {size}^3 grid, base width {base_channels}",
    )
