"""3D-GAN workload (Wu et al., NIPS 2016).

Table I lists 3D-GAN with 4 transposed-convolution layers in the generator and
5 convolution layers in the discriminator.  The generator maps a 200-d latent
vector to a 4x4x4x512 voxel seed and upsamples it through four stride-2 4x4x4
3-D transposed convolutions to a 64x64x64 occupancy grid; the discriminator
mirrors it with five stride-2 3-D convolutions.

Because the zero insertion happens along all three spatial dimensions, 3D-GAN
has the largest fraction of inconsequential operations of all evaluated GANs
(about 80% in Figure 1) and consequently the largest speedup (6.1x in
Figure 8a).
"""

from __future__ import annotations

from ..nn.network import GANModel, Network
from ..nn.shapes import FeatureMapShape
from .builder import build_discriminator, build_generator, conv_stack, tconv_stack

LATENT_DIM = 200
SEED_SHAPE = FeatureMapShape.volume(channels=512, depth=4, height=4, width=4)
VOXEL_SHAPE = FeatureMapShape.volume(channels=1, depth=64, height=64, width=64)


def build_threed_gan_generator() -> Network:
    """The 3D-GAN generator: 4 stride-2 4x4x4 3-D transposed convolutions."""
    layers = tconv_stack(
        channel_plan=[256, 128, 64, 1],
        kernel=4,
        stride=2,
        padding=1,
        rank=3,
        final_activation="sigmoid",
        prefix="tconv3d",
    )
    return build_generator("3dgan_generator", LATENT_DIM, SEED_SHAPE, layers)


def build_threed_gan_discriminator() -> Network:
    """The 3D-GAN discriminator: 5 stride-2 4x4x4 3-D convolutions."""
    layers = conv_stack(
        channel_plan=[32, 64, 128, 256, 512],
        kernel=4,
        stride=2,
        padding=1,
        rank=3,
        prefix="conv3d",
    )
    return build_discriminator("3dgan_discriminator", VOXEL_SHAPE, layers)


def build_threed_gan() -> GANModel:
    """The full 3D-GAN model as evaluated in the paper."""
    return GANModel(
        name="3D-GAN",
        generator=build_threed_gan_generator(),
        discriminator=build_threed_gan_discriminator(),
        year=2016,
        description="3D objects generation",
    )
