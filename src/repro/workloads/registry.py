"""Decorator-based registry of GAN workloads and parameterized families.

The registry turns the workload set into an open one, mirroring the
accelerator registry of :mod:`repro.accelerators`: any zero-argument builder
returning a :class:`~repro.nn.network.GANModel` can be registered under a
name and immediately becomes usable everywhere a workload name is accepted —
:class:`~repro.runner.SimulationJob`, :class:`repro.Session`, the experiment
harness and the CLI's ``--workloads`` flag.

Registering a fixed workload::

    from repro.workloads import register_workload

    @register_workload("my-gan", family="custom", version="1")
    def build_my_gan():
        return GANModel(name="my-gan", generator=..., discriminator=...)

Beyond fixed entries, **workload families** resolve parameterized spec
strings of the form ``<family>@<args>`` — ``dcgan@32x32``, ``artgan@ch128``,
``synthetic@d8c256`` — into :class:`WorkloadSpec` entries on demand, so
sweeps and design-space exploration can range over arbitrarily many
scenarios without a registration per point.  See
:mod:`repro.workloads.families` for the spec-string grammar and the built-in
families, and ``README.md`` in this directory for the full guide.

The six paper workloads (Table I) are registered lazily on first lookup, in
the paper's figure order, so importing this module alone never builds a
model.  Each registry entry carries a ``version`` that participates in the
runner's content-hash cache keys (see
:attr:`repro.runner.SimulationJob.cache_key`), exactly like accelerator
versions: bumping it when a workload's semantics change invalidates stale
cached results without touching the cache itself.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import UnknownWorkloadError, WorkloadError
from ..nn.network import GANModel

#: Builds one workload instance: ``builder() -> GANModel``.
WorkloadBuilder = Callable[[], GANModel]


@dataclass(frozen=True)
class WorkloadSpec:
    """One registry entry: name, family, version, description and builder.

    The ``version`` participates in the runner's content-hash cache keys
    (see :attr:`repro.runner.SimulationJob.cache_key`): bumping it when the
    workload's meaning changes invalidates every stale cached result even if
    the structural fingerprint happens to stay the same.
    """

    name: str
    family: str
    version: str
    description: str
    builder: WorkloadBuilder
    #: Canonicalized family parameters for family-resolved specs (empty for
    #: fixed registrations); purely informational, exposed via describe().
    params: Tuple[Tuple[str, int], ...] = ()

    @property
    def workload_version(self) -> str:
        """Cache-key version of this workload (alias of ``version``)."""
        return self.version

    def build(self) -> GANModel:
        """Build a fresh model instance (uncached; see :func:`get_workload`).

        The returned model is renamed to the spec's registered name when the
        builder reports a different one, so results, comparisons and cache
        fingerprints always carry the registry identity.
        """
        model = self.builder()
        if not isinstance(model, GANModel):
            raise WorkloadError(
                f"workload '{self.name}': builder returned "
                f"{type(model).__name__}, expected GANModel"
            )
        if model.name != self.name:
            model = dataclasses.replace(model, name=self.name)
        return model

    def describe(self) -> Dict[str, object]:
        """JSON-friendly metadata record (no model construction needed)."""
        record: Dict[str, object] = {
            "name": self.name,
            "family": self.family,
            "version": self.version,
            "description": self.description,
        }
        if self.params:
            record["params"] = dict(self.params)
        return record


@dataclass(frozen=True)
class WorkloadFamily:
    """A parameterized workload generator: resolves ``family@args`` specs.

    The ``resolver`` turns the argument string after ``@`` into a
    :class:`WorkloadSpec` (canonicalizing equivalent spellings to one name,
    so ``dcgan@size=32`` and ``dcgan@32x32`` share one cache entry), and the
    family's default parameter point resolves to the corresponding built-in
    paper workload where one exists.
    """

    name: str
    version: str
    description: str
    #: Human-readable spec grammar, e.g. ``"dcgan@<N>x<N>[,ch<C>][,latent<L>]"``.
    grammar: str
    resolver: Callable[[str], WorkloadSpec]
    #: Argument strings Session.explore expands when targeting the family.
    default_variants: Tuple[str, ...] = ()

    def resolve(self, args: str) -> WorkloadSpec:
        """Resolve one argument string into a (memoizable) spec."""
        return self.resolver(args)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly metadata record."""
        return {
            "name": self.name,
            "version": self.version,
            "description": self.description,
            "grammar": self.grammar,
            "default_variants": list(self.default_variants),
        }


_REGISTRY: Dict[str, WorkloadSpec] = {}  # canonical name -> spec, in order
_ALIASES: Dict[str, str] = {}  # normalized alias -> canonical name
_FAMILIES: Dict[str, WorkloadFamily] = {}  # family name -> family
_RESOLVED: Dict[str, WorkloadSpec] = {}  # memo of family-resolved specs
_MODELS: Dict[str, GANModel] = {}  # spec name -> built model (the cache)
_builtins_loaded = False


def _load_builtin_workloads() -> None:
    """Import the module that registers the six paper GANs and the families.

    Deferred to the first registry lookup so that the registry module itself
    has no import-time dependency on the workload definitions (mirroring how
    :mod:`repro.accelerators.registry` lazily loads its builtins).
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from . import builtins as _builtins  # noqa: F401


def _normalize(name: str) -> str:
    key = str(name).strip().lower()
    if not key:
        raise WorkloadError("workload name must be non-empty")
    return key


def _alias_forms(name: str) -> Tuple[str, ...]:
    """Normalized spellings that should resolve to ``name``."""
    key = _normalize(name)
    dehyphenated = key.replace("-", "").replace("_", "")
    return (key,) if dehyphenated == key else (key, dehyphenated)


def register_workload(
    name: str,
    *,
    family: str = "custom",
    version: str = "1",
    description: str = "",
    aliases: Sequence[str] = (),
) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
    """Decorator adding a fixed workload builder to the registry.

    ``name`` is the canonical identity (results, comparisons and cache
    fingerprints carry it; the built model is renamed to it if the builder
    reports a different name).  Lookup is case-insensitive and tolerant of
    ``-``/``_`` (``"GP-GAN"`` also resolves as ``gpgan``); extra ``aliases``
    add further accepted spellings.  Duplicate names or aliases are rejected
    — a workload revision should bump ``version``, not shadow an entry.
    """

    def decorator(builder: WorkloadBuilder) -> WorkloadBuilder:
        # Load the builtins first (no-op while they are mid-import) so a
        # custom registration can never accidentally shadow a paper workload.
        _load_builtin_workloads()
        if "@" in name or "," in name or not name.strip():
            raise WorkloadError(
                f"invalid workload name '{name}': '@' is reserved for family "
                "spec strings and ',' for CLI lists; names must be non-empty"
            )
        if name in _REGISTRY:
            raise WorkloadError(
                f"workload '{name}' is already registered; unregister it "
                "first or pick a different name"
            )
        new_aliases = []
        for alias in (*_alias_forms(name), *map(_normalize, aliases)):
            if alias in _ALIASES and _ALIASES[alias] != name:
                raise WorkloadError(
                    f"workload alias '{alias}' (for '{name}') collides with "
                    f"registered workload '{_ALIASES[alias]}'"
                )
            new_aliases.append(alias)
        doc = description or (builder.__doc__ or "").strip().partition("\n")[0]
        _REGISTRY[name] = WorkloadSpec(
            name=name,
            family=family,
            version=str(version),
            description=doc,
            builder=builder,
        )
        for alias in new_aliases:
            _ALIASES[alias] = name
        return builder

    return decorator


def register_workload_family(
    name: str,
    resolver: Optional[Callable[[str], WorkloadSpec]] = None,
    *,
    version: str = "1",
    description: str = "",
    grammar: str = "",
    default_variants: Sequence[str] = (),
) -> Union[WorkloadFamily, Callable[[Callable[[str], WorkloadSpec]], WorkloadFamily]]:
    """Register a parameterized workload family (usable as a decorator).

    The ``resolver`` maps the argument string after ``@`` to a
    :class:`WorkloadSpec`; results are memoized per canonical name, so a
    resolver only runs once per distinct design point.  Returns the
    registered :class:`WorkloadFamily` (or a decorator when ``resolver`` is
    omitted).
    """
    key = _normalize(name)

    def register(fn: Callable[[str], WorkloadSpec]) -> WorkloadFamily:
        _load_builtin_workloads()
        if key in _FAMILIES:
            raise WorkloadError(f"workload family '{key}' is already registered")
        family = WorkloadFamily(
            name=key,
            version=str(version),
            description=description or (fn.__doc__ or "").strip().partition("\n")[0],
            grammar=grammar or f"{key}@<args>",
            resolver=fn,
            default_variants=tuple(default_variants),
        )
        _FAMILIES[key] = family
        return family

    if resolver is None:
        return register
    return register(resolver)


def unregister_workload(name: str) -> WorkloadSpec:
    """Remove a fixed registry entry (mainly for tests and plugin teardown)."""
    spec = resolve_workload(name)
    if spec.name not in _REGISTRY:
        raise WorkloadError(
            f"'{spec.name}' is a family-resolved workload, not a registered "
            "entry; only registered workloads can be unregistered"
        )
    del _REGISTRY[spec.name]
    for alias in [a for a, target in _ALIASES.items() if target == spec.name]:
        del _ALIASES[alias]
    # Family spellings memoized onto this spec (a family's default point
    # resolves to its builtin) must re-resolve, or a re-registration with a
    # bumped version would keep serving the stale spec — and its stale
    # cache-key version — through those spellings.
    for key in [k for k, memoized in _RESOLVED.items() if memoized is spec]:
        del _RESOLVED[key]
    _MODELS.pop(spec.name, None)
    return spec


def workload_names() -> Tuple[str, ...]:
    """Canonical names of every registered workload, in registration order.

    The six paper GANs come first, in the paper's figure order; family
    instances resolved from spec strings are *not* listed (they are
    unbounded) — discover families via :func:`workload_families`.
    """
    _load_builtin_workloads()
    return tuple(_REGISTRY)


def workload_families() -> Tuple[str, ...]:
    """Every registered family name, sorted for stable listings."""
    _load_builtin_workloads()
    return tuple(sorted(_FAMILIES))


def get_workload_family(name: str) -> WorkloadFamily:
    """Look up one workload family; unknown names raise a helpful error."""
    _load_builtin_workloads()
    family = _FAMILIES.get(_normalize(name))
    if family is None:
        raise UnknownWorkloadError(name, workload_names(), workload_families())
    return family


def resolve_workload(spec: Union[str, WorkloadSpec]) -> WorkloadSpec:
    """Resolve a workload spec string (or pass a spec through) to its entry.

    ``spec`` may be a registered name (``"DCGAN"``), a relaxed alias
    (``"gp-gan"``), or a family spec string (``"dcgan@32x32"``,
    ``"synthetic@d8c256"``).  Family resolutions are memoized under both the
    requested spelling and the canonical name, so equivalent spellings share
    one spec, one built model and one cache identity.
    """
    if isinstance(spec, WorkloadSpec):
        return spec
    _load_builtin_workloads()
    name = str(spec).strip()
    if not name:
        raise WorkloadError("workload spec must be non-empty")
    key = name.lower()
    if "@" in name:
        memoized = _RESOLVED.get(key)
        if memoized is not None:
            return memoized
        family_name, _, args = name.partition("@")
        family = get_workload_family(family_name)
        resolved = family.resolve(args)
        # Equivalent spellings must share one spec object (and therefore one
        # cached model): reuse the entry memoized under the canonical name.
        canonical_key = resolved.name.lower()
        resolved = _RESOLVED.setdefault(canonical_key, resolved)
        _RESOLVED[key] = resolved
        return resolved
    canonical = _ALIASES.get(key) or _ALIASES.get(key.replace("-", "").replace("_", ""))
    if canonical is not None:
        return _REGISTRY[canonical]
    raise UnknownWorkloadError(name, workload_names(), workload_families())


def get_workload(spec: Union[str, WorkloadSpec]) -> GANModel:
    """Build (or fetch from cache) the workload described by ``spec``.

    Models are cached per canonical spec name: building only involves shape
    arithmetic and is cheap but not free, and a shared instance lets the
    fingerprint memoization in :mod:`repro.analysis.serialization` make warm
    cache lookups O(1).
    """
    resolved = resolve_workload(spec)
    model = _MODELS.get(resolved.name)
    if model is None:
        model = resolved.build()
        _MODELS[resolved.name] = model
    return model


def all_workloads() -> List[GANModel]:
    """Every registered workload's model, in registration (paper) order."""
    return [get_workload(name) for name in workload_names()]


def prime_workload_cache(spec: WorkloadSpec, model: GANModel) -> None:
    """Seed the model cache with an already-built instance of ``spec``.

    Used by family resolvers, whose fail-fast validation already constructs
    the model: priming makes that build *the* cached instance instead of
    discarding it.  A mismatched name is rejected — the cache is keyed by
    spec identity.
    """
    if model.name != spec.name:
        raise WorkloadError(
            f"cannot prime cache for '{spec.name}' with a model named "
            f"'{model.name}'"
        )
    _MODELS.setdefault(spec.name, model)


def workload_version_for(model: GANModel) -> str:
    """The registered cache-key version of ``model``, or ``""`` if ad hoc.

    A model participates in a registered identity when its name resolves in
    the registry (including memoized family instances) *and* its structural
    fingerprint matches the registered builder's output — so a hand-built
    model that merely reuses a registry name never inherits that entry's
    version (its own fingerprint already sets it apart).
    """
    _load_builtin_workloads()
    try:
        spec = resolve_workload(model.name)
    except WorkloadError:
        return ""
    from ..analysis.serialization import workload_fingerprint

    if workload_fingerprint(get_workload(spec)) != workload_fingerprint(model):
        return ""
    return spec.version


def describe_workloads() -> List[Dict[str, object]]:
    """Registry metadata for every registered workload (for listings)."""
    return [resolve_workload(name).describe() for name in workload_names()]


def describe_workload_families() -> List[Dict[str, object]]:
    """Registry metadata for every workload family (for listings)."""
    return [get_workload_family(name).describe() for name in workload_families()]


def expand_workload_family(
    family: str, variants: Optional[Sequence[str]] = None
) -> List[str]:
    """Spec strings covering a family: explicit ``variants`` or its defaults.

    Each variant may be a bare argument string (``"d4c64"``) or a full spec
    string (``"synthetic@d4c64"``); bare arguments are prefixed with the
    family name.  Used by :meth:`repro.Session.explore` to target a workload
    family as part of the searched space.
    """
    entry = get_workload_family(family)
    args_list = tuple(variants) if variants is not None else entry.default_variants
    if not args_list:
        raise WorkloadError(
            f"workload family '{entry.name}' declares no default variants; "
            "pass explicit variants"
        )
    specs = []
    for args in args_list:
        spec = args if "@" in str(args) else f"{entry.name}@{args}"
        specs.append(resolve_workload(spec).name)
    return specs


def clear_cache() -> None:
    """Drop cached models (used by tests that mutate nothing but want isolation)."""
    _MODELS.clear()
