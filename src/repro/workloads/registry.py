"""Registry of the six GAN workloads evaluated in the paper.

The registry maps canonical model names (as they appear in the paper's
figures) to builder functions and caches the constructed models, because
building a model only involves shape arithmetic and is cheap but not free.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..errors import WorkloadError
from ..nn.network import GANModel
from .artgan import build_artgan
from .dcgan import build_dcgan
from .discogan import build_discogan
from .gpgan import build_gpgan
from .magan import build_magan
from .threed_gan import build_threed_gan

#: Builders for every evaluated GAN, keyed by the paper's model name and
#: ordered as in the paper's figures.
WORKLOAD_BUILDERS: Dict[str, Callable[[], GANModel]] = {
    "3D-GAN": build_threed_gan,
    "ArtGAN": build_artgan,
    "DCGAN": build_dcgan,
    "DiscoGAN": build_discogan,
    "GP-GAN": build_gpgan,
    "MAGAN": build_magan,
}

#: Lower-case aliases accepted by :func:`get_workload`.
_ALIASES: Dict[str, str] = {
    "3dgan": "3D-GAN",
    "3d-gan": "3D-GAN",
    "threedgan": "3D-GAN",
    "artgan": "ArtGAN",
    "dcgan": "DCGAN",
    "discogan": "DiscoGAN",
    "gpgan": "GP-GAN",
    "gp-gan": "GP-GAN",
    "magan": "MAGAN",
}

_CACHE: Dict[str, GANModel] = {}


def workload_names() -> Tuple[str, ...]:
    """Canonical names of the evaluated GANs, in the paper's figure order."""
    return tuple(WORKLOAD_BUILDERS)


def get_workload(name: str) -> GANModel:
    """Build (or fetch from cache) the GAN model called ``name``.

    ``name`` may be the canonical paper name (e.g. ``"GP-GAN"``) or a relaxed
    lower-case alias (``"gpgan"``).
    """
    canonical = _canonical_name(name)
    if canonical not in _CACHE:
        _CACHE[canonical] = WORKLOAD_BUILDERS[canonical]()
    return _CACHE[canonical]


def all_workloads() -> List[GANModel]:
    """All six GAN models, in the paper's figure order."""
    return [get_workload(name) for name in workload_names()]


def clear_cache() -> None:
    """Drop cached models (used by tests that mutate nothing but want isolation)."""
    _CACHE.clear()


def _canonical_name(name: str) -> str:
    if name in WORKLOAD_BUILDERS:
        return name
    key = name.strip().lower().replace("_", "-")
    if key in _ALIASES:
        return _ALIASES[key]
    key = key.replace("-", "")
    if key in _ALIASES:
        return _ALIASES[key]
    raise WorkloadError(
        f"unknown workload '{name}'; known workloads: {', '.join(workload_names())}"
    )
