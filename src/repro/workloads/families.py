"""Parameterized workload families and the ``family@args`` spec grammar.

A *spec string* addresses one point of a workload family's design space::

    dcgan@64x64          # geometry token: output resolution
    dcgan@32x32,ch512    # plus a channel-width knob
    artgan@ch128         # knob tokens only (resolution stays the default)
    3dgan@32x32x32       # cubic geometry for the voxel family
    synthetic@d8c256     # compact run of key<int> knobs: depth 8, width 256
    synthetic@d8,c256    # the same point, comma-separated
    dcgan@size=64        # explicit key=value spelling

Grammar::

    spec    := <name> | <family> "@" args
    args    := token ("," token)*
    token   := <N>x<N>[x<N>]      geometry (square / cubic), sets "size"
             | <key>=<int>        explicit assignment
             | (<key><int>)+      compact run, e.g. "d8c256z75"

Keys are family-specific (see each family's ``grammar`` / ``describe()``).
Equivalent spellings canonicalize to one spec name — and a family's default
parameter point resolves to the corresponding *built-in* paper workload, so
``dcgan@64x64`` **is** ``DCGAN``: same spec, same model cache entry, same
simulation-cache identity.

Every family here delegates model construction to the variant builders in
the per-GAN modules (``build_dcgan_variant`` and friends) or to
:func:`repro.workloads.synthetic.build_synthetic`.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..nn.network import GANModel
from . import synthetic
from .artgan import build_artgan_variant
from .dcgan import build_dcgan_variant
from .discogan import build_discogan_variant
from .gpgan import build_gpgan_variant
from .magan import build_magan_variant
from .registry import (
    WorkloadSpec,
    prime_workload_cache,
    register_workload_family,
    resolve_workload,
)
from .threed_gan import build_threed_gan_variant

_GEOMETRY = re.compile(r"^(\d+)x(\d+)(?:x(\d+))?$")
_COMPACT = re.compile(r"([a-z]+)(\d+)")


def parse_family_args(
    family: str,
    args: str,
    *,
    key_map: Mapping[str, str],
    defaults: Mapping[str, int],
    geometry_rank: Optional[int] = None,
) -> Dict[str, int]:
    """Parse a spec-string argument list into a full parameter mapping.

    ``key_map`` maps accepted token keys (including short aliases) to
    canonical parameter names; ``defaults`` supplies every unmentioned
    parameter.  ``geometry_rank`` enables ``NxN`` (rank 2) / ``NxNxN``
    (rank 3) tokens, which assign the ``size`` parameter.
    """
    params = dict(defaults)
    if not args.strip():
        raise WorkloadError(
            f"workload family '{family}' needs arguments after '@'; see "
            "'repro-experiments list-workloads' for the grammar"
        )
    for token in args.split(","):
        token = token.strip().lower()
        if not token:
            raise WorkloadError(f"{family}@{args}: empty argument token")
        geometry = _GEOMETRY.match(token)
        if geometry:
            if geometry_rank is None:
                raise WorkloadError(
                    f"{family}@{args}: family takes no geometry token '{token}'"
                )
            dims = [int(g) for g in geometry.groups() if g is not None]
            if len(dims) != geometry_rank or len(set(dims)) != 1:
                shape = "x".join(["<N>"] * geometry_rank)
                raise WorkloadError(
                    f"{family}@{args}: geometry '{token}' must be uniform "
                    f"{shape}"
                )
            params["size"] = dims[0]
            continue
        if "=" in token:
            key, _, value = token.partition("=")
            if not value.isdigit():
                raise WorkloadError(
                    f"{family}@{args}: '{token}' needs an integer value"
                )
            pairs = [(key, value)]
        else:
            pairs = _COMPACT.findall(token)
            if "".join(k + v for k, v in pairs) != token:
                raise WorkloadError(
                    f"{family}@{args}: cannot parse token '{token}'; expected "
                    "geometry (<N>x<N>), key=value, or a key<int> run"
                )
        for key, value in pairs:
            canonical = key_map.get(key)
            if canonical is None:
                raise WorkloadError(
                    f"{family}@{args}: unknown parameter '{key}'; accepted: "
                    + ", ".join(sorted(set(key_map)))
                )
            params[canonical] = int(value)
    return params


def _render_tokens(
    params: Mapping[str, int],
    defaults: Mapping[str, int],
    key_map: Mapping[str, str],
    *,
    geometry_rank: Optional[int] = None,
    order: Optional[Sequence[str]] = None,
    include_defaults: bool = False,
) -> str:
    """Canonical argument rendering: non-default params, fixed order.

    A lone ``size`` change renders as a geometry token (``NxN``); any other
    combination renders as one compact ``key<int>`` run using each
    parameter's *first* accepted key in ``key_map`` (the preferred spelling,
    e.g. ``ch128``, ``d8c256``, ``size32ch512``).  Either way the result
    parses back to the same parameters — canonical names must round-trip
    through the grammar, including the CLI's comma-separated ``--workloads``
    lists (so no commas).  Returns ``""`` when every parameter is default,
    unless ``include_defaults`` forces a full rendering.
    """
    preferred: Dict[str, str] = {}
    for alias, canonical in key_map.items():
        preferred.setdefault(canonical, alias)
    tokens = []
    for name in order if order is not None else defaults:
        value = params[name]
        if value == defaults[name] and not include_defaults:
            continue
        tokens.append((name, value))
    if len(tokens) == 1 and tokens[0][0] == "size" and geometry_rank is not None:
        return "x".join([str(tokens[0][1])] * geometry_rank)
    return "".join(f"{preferred[name]}{value}" for name, value in tokens)


def make_family_resolver(
    family: str,
    build: Callable[..., GANModel],
    *,
    key_map: Mapping[str, str],
    defaults: Mapping[str, int],
    version: str,
    description: str,
    geometry_rank: Optional[int] = None,
    builtin: Optional[str] = None,
    order: Optional[Sequence[str]] = None,
) -> Callable[[str], WorkloadSpec]:
    """A resolver closing over one family's grammar, defaults and builder."""

    def resolver(args: str) -> WorkloadSpec:
        params = parse_family_args(
            family,
            args,
            key_map=key_map,
            defaults=defaults,
            geometry_rank=geometry_rank,
        )
        canonical_args = _render_tokens(
            params, defaults, key_map, geometry_rank=geometry_rank, order=order
        )
        if not canonical_args:
            if builtin is not None:
                # The family's default point *is* the paper workload: share
                # its spec, model cache entry and simulation-cache identity.
                return resolve_workload(builtin)
            # No builtin anchor: render every parameter so the canonical
            # name still parses back through the grammar in a fresh process.
            canonical_args = _render_tokens(
                params,
                defaults,
                key_map,
                geometry_rank=geometry_rank,
                order=order,
                include_defaults=True,
            )
        name = f"{family}@{canonical_args}"
        params_record = tuple(sorted(params.items()))

        def builder() -> GANModel:
            return build(**params)

        spec = WorkloadSpec(
            name=name,
            family=family,
            version=version,
            description=f"{description} [{', '.join(f'{k}={v}' for k, v in params_record)}]",
            builder=builder,
            params=params_record,
        )
        # Fail fast — out-of-range knobs surface at resolve time — and keep
        # the validation build: prime the registry's model cache with it so
        # first resolution does not construct the model twice.
        prime_workload_cache(spec, spec.build())
        return spec

    return resolver


def _register_paper_family(
    family: str,
    build: Callable[..., GANModel],
    *,
    builtin: str,
    defaults: Mapping[str, int],
    key_map: Mapping[str, str],
    grammar: str,
    description: str,
    default_variants: Sequence[str],
    geometry_rank: Optional[int] = 2,
    version: str = "1",
) -> None:
    register_workload_family(
        family,
        make_family_resolver(
            family,
            build,
            key_map=key_map,
            defaults=defaults,
            version=version,
            description=description,
            geometry_rank=geometry_rank,
            builtin=builtin,
        ),
        version=version,
        description=description,
        grammar=grammar,
        default_variants=default_variants,
    )


#: Shared knob aliases of the DCGAN-recipe families.
_RECIPE_KEYS = {
    "size": "size",
    "ch": "base_channels",
    "c": "base_channels",
    "latent": "latent_dim",
    "l": "latent_dim",
}

_register_paper_family(
    "dcgan",
    build_dcgan_variant,
    builtin="DCGAN",
    defaults={"size": 64, "base_channels": 1024, "latent_dim": 100},
    key_map=_RECIPE_KEYS,
    grammar="dcgan@<N>x<N>[,ch<C>][,latent<L>]",
    description="DCGAN recipe at a chosen resolution and channel width",
    default_variants=("32x32", "128x128", "ch512"),
)

_register_paper_family(
    "artgan",
    build_artgan_variant,
    builtin="ArtGAN",
    defaults={"size": 128, "base_channels": 1024, "latent_dim": 128},
    key_map=_RECIPE_KEYS,
    grammar="artgan@<N>x<N>[,ch<C>][,latent<L>]",
    description="ArtGAN recipe at a chosen resolution and channel width",
    default_variants=("64x64", "ch128"),
)

_register_paper_family(
    "gpgan",
    build_gpgan_variant,
    builtin="GP-GAN",
    defaults={"size": 64, "base_channels": 1024, "latent_dim": 256},
    key_map=_RECIPE_KEYS,
    grammar="gpgan@<N>x<N>[,ch<C>][,latent<L>]",
    description="GP-GAN blending recipe at a chosen resolution and channel width",
    default_variants=("32x32", "128x128"),
)

_register_paper_family(
    "3dgan",
    build_threed_gan_variant,
    builtin="3D-GAN",
    defaults={"size": 64, "base_channels": 512, "latent_dim": 200},
    key_map=_RECIPE_KEYS,
    grammar="3dgan@<N>x<N>x<N>[,ch<C>][,latent<L>]",
    description="3D-GAN recipe on a chosen voxel grid",
    default_variants=("16x16x16", "32x32x32"),
    geometry_rank=3,
)

_register_paper_family(
    "discogan",
    build_discogan_variant,
    builtin="DiscoGAN",
    defaults={"size": 64, "base_channels": 1024},
    key_map={"size": "size", "ch": "base_channels", "c": "base_channels"},
    grammar="discogan@<N>x<N>[,ch<C>]",
    description="DiscoGAN translator at a chosen resolution and bottleneck width",
    default_variants=("128x128", "ch512"),
)

_register_paper_family(
    "magan",
    build_magan_variant,
    builtin="MAGAN",
    defaults={"base_channels": 512, "latent_dim": 100},
    key_map={"ch": "base_channels", "c": "base_channels", "latent": "latent_dim", "l": "latent_dim"},
    grammar="magan@ch<C>[,latent<L>]",
    description="MAGAN topology at a chosen channel width",
    default_variants=("ch128", "ch256"),
    geometry_rank=None,
)

register_workload_family(
    "synthetic",
    make_family_resolver(
        "synthetic",
        synthetic.build_synthetic,
        key_map={
            "d": "depth",
            "depth": "depth",
            "c": "base_channels",
            "ch": "base_channels",
            "k": "kernel",
            "s": "stride",
            "z": "upsample_percent",
            "latent": "latent_dim",
            "l": "latent_dim",
        },
        defaults=dict(synthetic.DEFAULTS),
        version="1",
        description="synthetic DCGAN-style stress generator",
        order=("depth", "base_channels", "kernel", "stride", "upsample_percent", "latent_dim"),
    ),
    version="1",
    description=(
        "synthetic stress GANs: depth/channel/stride knobs plus z<percent> "
        "controlling the inserted-zero density"
    ),
    grammar="synthetic@d<depth>c<channels>[k<kernel>][s<stride>][z<percent>]",
    default_variants=("d4c64", "d6c128z100", "d8c256"),
)
