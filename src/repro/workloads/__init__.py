"""GAN workloads: the six paper models (Table I) plus the open registry.

The registry (:mod:`repro.workloads.registry`) mirrors the accelerator
registry: fixed workloads register under a name via :func:`register_workload`
and parameterized **families** resolve spec strings like ``dcgan@32x32`` or
``synthetic@d8c256`` on demand (:mod:`repro.workloads.families`,
:mod:`repro.workloads.synthetic`).  See ``README.md`` in this directory.
"""

from .artgan import build_artgan, build_artgan_variant
from .dcgan import build_dcgan, build_dcgan_variant
from .discogan import build_discogan, build_discogan_variant
from .gpgan import build_gpgan, build_gpgan_variant
from .magan import build_magan, build_magan_variant
from .registry import (
    WorkloadFamily,
    WorkloadSpec,
    all_workloads,
    describe_workload_families,
    describe_workloads,
    expand_workload_family,
    get_workload,
    get_workload_family,
    register_workload,
    register_workload_family,
    resolve_workload,
    unregister_workload,
    workload_families,
    workload_names,
    workload_version_for,
)
from .synthetic import build_synthetic
from .threed_gan import build_threed_gan, build_threed_gan_variant

__all__ = [
    "WorkloadFamily",
    "WorkloadSpec",
    "build_artgan",
    "build_artgan_variant",
    "build_dcgan",
    "build_dcgan_variant",
    "build_discogan",
    "build_discogan_variant",
    "build_gpgan",
    "build_gpgan_variant",
    "build_magan",
    "build_magan_variant",
    "build_synthetic",
    "build_threed_gan",
    "build_threed_gan_variant",
    "all_workloads",
    "describe_workload_families",
    "describe_workloads",
    "expand_workload_family",
    "get_workload",
    "get_workload_family",
    "register_workload",
    "register_workload_family",
    "resolve_workload",
    "unregister_workload",
    "workload_families",
    "workload_names",
    "workload_version_for",
]
