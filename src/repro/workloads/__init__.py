"""The six GAN workloads evaluated by the GANAX paper (Table I)."""

from .artgan import build_artgan
from .dcgan import build_dcgan
from .discogan import build_discogan
from .gpgan import build_gpgan
from .magan import build_magan
from .registry import all_workloads, get_workload, workload_names
from .threed_gan import build_threed_gan

__all__ = [
    "build_artgan",
    "build_dcgan",
    "build_discogan",
    "build_gpgan",
    "build_magan",
    "build_threed_gan",
    "all_workloads",
    "get_workload",
    "workload_names",
]
