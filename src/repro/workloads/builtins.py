"""Registration of the built-in workloads: the six paper GANs + families.

Imported lazily by :mod:`repro.workloads.registry` on the first lookup
(mirroring how :mod:`repro.accelerators.registry` loads its builtins).
Registration is centralized here — rather than decorating each builder in
its home module — so the registry order is pinned to the paper's figure
order regardless of which workload module happens to be imported first.
"""

from __future__ import annotations

from . import families  # noqa: F401  (registers the workload families)
from .artgan import build_artgan
from .dcgan import build_dcgan
from .discogan import build_discogan
from .gpgan import build_gpgan
from .magan import build_magan
from .registry import register_workload
from .threed_gan import build_threed_gan

register_workload(
    "3D-GAN",
    family="3dgan",
    version="1",
    description="3-D voxel GAN (Wu et al., NIPS 2016): the paper's zero-density best case",
    aliases=("threedgan",),
)(build_threed_gan)

register_workload(
    "ArtGAN",
    family="artgan",
    version="1",
    description="128x128 conditional artwork GAN (Tan et al., 2017)",
)(build_artgan)

register_workload(
    "DCGAN",
    family="dcgan",
    version="1",
    description="the canonical 64x64 DCGAN generator/discriminator (Radford et al., 2015)",
)(build_dcgan)

register_workload(
    "DiscoGAN",
    family="discogan",
    version="1",
    description="encoder-decoder image-to-image translator (Kim et al., 2017)",
)(build_discogan)

register_workload(
    "GP-GAN",
    family="gpgan",
    version="1",
    description="high-resolution blending GAN decoder (Wu et al., 2017)",
)(build_gpgan)

register_workload(
    "MAGAN",
    family="magan",
    version="1",
    description="margin-adaptation GAN with autoencoder discriminator (Wang et al., 2017)",
)(build_magan)
