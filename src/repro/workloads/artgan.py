"""ArtGAN workload (Tan et al., 2017).

Table I lists ArtGAN with 5 transposed-convolution layers in the generator and
6 convolution layers in the discriminator.  ArtGAN generates 128x128 artwork
images conditioned on a category label; the generator projects the latent
(plus label embedding) to a 4x4x1024 seed and upsamples through five stride-2
transposed convolutions, and the discriminator downsamples 128x128 inputs
through six stride-2 convolutions.
"""

from __future__ import annotations

from ..nn.network import GANModel, Network
from ..nn.shapes import FeatureMapShape
from .builder import (
    build_discriminator,
    build_generator,
    conv_stack,
    doubling_channel_plan,
    halving_channel_plan,
    tconv_stack,
    upsampling_block_count,
)

LATENT_DIM = 128
BASE_CHANNELS = 1024
IMAGE_SIZE = 128
SEED_SHAPE = FeatureMapShape.image(channels=BASE_CHANNELS, height=4, width=4)
IMAGE_SHAPE = FeatureMapShape.image(channels=3, height=IMAGE_SIZE, width=IMAGE_SIZE)


def build_artgan_generator() -> Network:
    """The ArtGAN generator: 5 stride-2 4x4 transposed convolutions."""
    layers = tconv_stack(
        channel_plan=[512, 256, 128, 64, 3],
        kernel=4,
        stride=2,
        padding=1,
        prefix="tconv",
    )
    return build_generator("artgan_generator", LATENT_DIM, SEED_SHAPE, layers)


def build_artgan_discriminator() -> Network:
    """The ArtGAN discriminator: 6 stride-2 4x4 convolutions."""
    layers = conv_stack(
        channel_plan=[32, 64, 128, 256, 512, 1024],
        kernel=4,
        stride=2,
        padding=1,
        prefix="conv",
    )
    return build_discriminator("artgan_discriminator", IMAGE_SHAPE, layers)


def build_artgan() -> GANModel:
    """The full ArtGAN model as evaluated in the paper."""
    return GANModel(
        name="ArtGAN",
        generator=build_artgan_generator(),
        discriminator=build_artgan_discriminator(),
        year=2017,
        description="Complex artworks generation",
    )


def build_artgan_variant(
    size: int = IMAGE_SIZE,
    base_channels: int = BASE_CHANNELS,
    latent_dim: int = LATENT_DIM,
) -> GANModel:
    """A scaled ArtGAN: the paper recipe at another resolution / channel width.

    One stride-2 4x4 transposed convolution per doubling of the 4x4 seed and
    a mirroring discriminator with one extra stride-2 convolution — the
    canonical 128x128 model has 5 and 6.  Backs the ``artgan@...`` workload
    family (see :mod:`repro.workloads.families`).
    """
    blocks = upsampling_block_count(size)
    generator = build_generator(
        "artgan_generator",
        latent_dim,
        FeatureMapShape.image(channels=base_channels, height=4, width=4),
        tconv_stack(
            channel_plan=halving_channel_plan(blocks, base_channels, 3),
            kernel=4,
            stride=2,
            padding=1,
            prefix="tconv",
        ),
    )
    discriminator = build_discriminator(
        "artgan_discriminator",
        FeatureMapShape.image(channels=3, height=size, width=size),
        conv_stack(
            channel_plan=doubling_channel_plan(blocks + 1, base_channels),
            kernel=4,
            stride=2,
            padding=1,
            prefix="conv",
        ),
    )
    return GANModel(
        name="ArtGAN",
        generator=generator,
        discriminator=discriminator,
        year=2017,
        description=f"ArtGAN recipe at {size}x{size}, base width {base_channels}",
    )
