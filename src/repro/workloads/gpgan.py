"""GP-GAN workload (Wu et al., 2017).

Table I lists GP-GAN with 4 transposed-convolution layers in the generator and
5 convolution layers in the discriminator.  GP-GAN targets high-resolution
image blending; its blending GAN is an encoder-decoder whose decoder
upsamples a 4x4x1024 bottleneck through four stride-2 transposed convolutions
to a 64x64 blended image.  As in the paper's accounting, the generator's
compute-dominant layers are the transposed convolutions, and the discriminator
is a DCGAN-style stack of five stride-2 convolutions.
"""

from __future__ import annotations

from ..nn.network import GANModel, Network
from ..nn.shapes import FeatureMapShape
from .builder import (
    build_discriminator,
    build_generator,
    conv_stack,
    doubling_channel_plan,
    halving_channel_plan,
    tconv_stack,
    upsampling_block_count,
)

LATENT_DIM = 256
BASE_CHANNELS = 1024
IMAGE_SIZE = 64
SEED_SHAPE = FeatureMapShape.image(channels=BASE_CHANNELS, height=4, width=4)
IMAGE_SHAPE = FeatureMapShape.image(channels=3, height=IMAGE_SIZE, width=IMAGE_SIZE)


def build_gpgan_generator() -> Network:
    """The GP-GAN (blending GAN) decoder: 4 stride-2 4x4 transposed convs."""
    layers = tconv_stack(
        channel_plan=[512, 256, 128, 3],
        kernel=4,
        stride=2,
        padding=1,
        prefix="tconv",
    )
    return build_generator("gpgan_generator", LATENT_DIM, SEED_SHAPE, layers)


def build_gpgan_discriminator() -> Network:
    """The GP-GAN discriminator: 5 stride-2 4x4 convolutions."""
    layers = conv_stack(
        channel_plan=[64, 128, 256, 512, 1024],
        kernel=4,
        stride=2,
        padding=1,
        prefix="conv",
    )
    return build_discriminator("gpgan_discriminator", IMAGE_SHAPE, layers)


def build_gpgan() -> GANModel:
    """The full GP-GAN model as evaluated in the paper."""
    return GANModel(
        name="GP-GAN",
        generator=build_gpgan_generator(),
        discriminator=build_gpgan_discriminator(),
        year=2017,
        description="High-resolution image generation",
    )


def build_gpgan_variant(
    size: int = IMAGE_SIZE,
    base_channels: int = BASE_CHANNELS,
    latent_dim: int = LATENT_DIM,
) -> GANModel:
    """A scaled GP-GAN blending decoder at another resolution / channel width.

    Backs the ``gpgan@...`` workload family (see
    :mod:`repro.workloads.families`).
    """
    blocks = upsampling_block_count(size)
    generator = build_generator(
        "gpgan_generator",
        latent_dim,
        FeatureMapShape.image(channels=base_channels, height=4, width=4),
        tconv_stack(
            channel_plan=halving_channel_plan(blocks, base_channels, 3),
            kernel=4,
            stride=2,
            padding=1,
            prefix="tconv",
        ),
    )
    discriminator = build_discriminator(
        "gpgan_discriminator",
        FeatureMapShape.image(channels=3, height=size, width=size),
        conv_stack(
            channel_plan=doubling_channel_plan(blocks + 1, base_channels),
            kernel=4,
            stride=2,
            padding=1,
            prefix="conv",
        ),
    )
    return GANModel(
        name="GP-GAN",
        generator=generator,
        discriminator=discriminator,
        year=2017,
        description=f"GP-GAN recipe at {size}x{size}, base width {base_channels}",
    )
