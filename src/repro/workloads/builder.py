"""Helpers for constructing DCGAN-style generator / discriminator stacks.

The six GAN workloads evaluated in the paper (Table I) all follow the
projection + stack-of-(transposed)-convolutions recipe introduced by DCGAN.
The helpers below build those stacks from compact channel/stride descriptions
so each workload module stays a readable, declarative summary of the published
architecture rather than a wall of layer constructors.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..nn.layers import (
    ActivationLayer,
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    LayerSpec,
    ReshapeLayer,
    TransposedConvLayer,
)
from ..nn.network import Network
from ..nn.shapes import FeatureMapShape


def projection_layers(
    latent_dim: int,
    target: FeatureMapShape,
    *,
    prefix: str = "project",
) -> Tuple[FeatureMapShape, Tuple[LayerSpec, ...]]:
    """Dense projection of the latent vector followed by a reshape.

    Returns the network input shape (the latent vector) and the layer tuple.
    """
    if latent_dim <= 0:
        raise WorkloadError(f"latent_dim must be positive, got {latent_dim}")
    input_shape = FeatureMapShape.vector(latent_dim)
    layers: Tuple[LayerSpec, ...] = (
        DenseLayer(name=f"{prefix}_fc", out_features=target.num_elements),
        ReshapeLayer(name=f"{prefix}_reshape", target=target),
        BatchNormLayer(name=f"{prefix}_bn"),
        ActivationLayer(name=f"{prefix}_relu", function="relu"),
    )
    return input_shape, layers


def tconv_stack(
    channel_plan: Sequence[int],
    *,
    kernel: int | Tuple[int, ...] | Sequence[int | Tuple[int, ...]],
    stride: int | Sequence[int | Tuple[int, ...]],
    padding: int | Sequence[int | Tuple[int, ...]],
    rank: int = 2,
    output_padding: int | Sequence[int | Tuple[int, ...]] = 0,
    final_activation: str = "tanh",
    hidden_activation: str = "relu",
    batch_norm: bool = True,
    prefix: str = "tconv",
) -> Tuple[LayerSpec, ...]:
    """A stack of transposed-convolution blocks.

    ``channel_plan`` lists the output channels of each transposed convolution.
    ``kernel``, ``stride``, ``padding`` and ``output_padding`` may each be a
    single value applied to every block or one value per block (used by MAGAN
    and the synthetic stress family, whose blocks mix stride-2 upsampling
    layers with stride-1 refinement layers of a different geometry).
    """
    if not channel_plan:
        raise WorkloadError("channel_plan must contain at least one entry")
    kernels = _per_block(kernel, len(channel_plan), "kernel")
    strides = _per_block(stride, len(channel_plan), "stride")
    paddings = _per_block(padding, len(channel_plan), "padding")
    output_paddings = _per_block(output_padding, len(channel_plan), "output_padding")
    layers: list[LayerSpec] = []
    last = len(channel_plan) - 1
    for i, (out_channels, block_stride) in enumerate(zip(channel_plan, strides)):
        index = i + 1
        layers.append(
            TransposedConvLayer(
                name=f"{prefix}{index}",
                out_channels=out_channels,
                kernel=kernels[i],
                stride=block_stride,
                padding=paddings[i],
                output_padding=output_paddings[i],
                rank=rank,
            )
        )
        if i != last:
            if batch_norm:
                layers.append(BatchNormLayer(name=f"{prefix}{index}_bn"))
            layers.append(
                ActivationLayer(name=f"{prefix}{index}_act", function=hidden_activation)
            )
        else:
            layers.append(
                ActivationLayer(name=f"{prefix}{index}_act", function=final_activation)
            )
    return tuple(layers)


def conv_stack(
    channel_plan: Sequence[int],
    *,
    kernel: int | Tuple[int, ...],
    stride: int | Sequence[int | Tuple[int, ...]],
    padding: int | Tuple[int, ...],
    rank: int = 2,
    activation: str = "leaky_relu",
    final_activation: Optional[str] = "sigmoid",
    batch_norm: bool = True,
    prefix: str = "conv",
) -> Tuple[LayerSpec, ...]:
    """A stack of strided convolution blocks (DCGAN-style discriminator)."""
    if not channel_plan:
        raise WorkloadError("channel_plan must contain at least one entry")
    strides = _per_block(stride, len(channel_plan), "stride")
    layers: list[LayerSpec] = []
    last = len(channel_plan) - 1
    for i, (out_channels, block_stride) in enumerate(zip(channel_plan, strides)):
        index = i + 1
        layers.append(
            ConvLayer(
                name=f"{prefix}{index}",
                out_channels=out_channels,
                kernel=kernel,
                stride=block_stride,
                padding=padding,
                rank=rank,
            )
        )
        if i != last:
            if batch_norm and i > 0:
                layers.append(BatchNormLayer(name=f"{prefix}{index}_bn"))
            layers.append(ActivationLayer(name=f"{prefix}{index}_act", function=activation))
        elif final_activation is not None:
            layers.append(
                ActivationLayer(name=f"{prefix}{index}_act", function=final_activation)
            )
    return tuple(layers)


def build_generator(
    name: str,
    latent_dim: int,
    seed_shape: FeatureMapShape,
    tconv_layers: Sequence[LayerSpec],
) -> Network:
    """Assemble a generator: projection + reshape + transposed conv stack."""
    input_shape, head = projection_layers(latent_dim, seed_shape)
    return Network(name=name, input_shape=input_shape, layers=(*head, *tconv_layers))


def build_discriminator(
    name: str,
    input_shape: FeatureMapShape,
    conv_layers: Sequence[LayerSpec],
    *,
    classifier_features: int = 1,
) -> Network:
    """Assemble a discriminator: conv stack + dense classifier head."""
    layers: Tuple[LayerSpec, ...] = (
        *conv_layers,
        DenseLayer(name="classifier_fc", out_features=classifier_features),
    )
    return Network(name=name, input_shape=input_shape, layers=layers)


def upsampling_block_count(size: int, *, seed_extent: int = 4) -> int:
    """Number of stride-2 upsampling blocks from ``seed_extent`` to ``size``.

    The DCGAN recipe grows a ``seed_extent`` x ``seed_extent`` seed by a
    factor of two per block, so valid output sizes are exact power-of-two
    multiples of the seed.
    """
    if size < 2 * seed_extent:
        raise WorkloadError(
            f"output size {size} must be at least {2 * seed_extent} "
            f"(one doubling of the {seed_extent}x{seed_extent} seed)"
        )
    blocks = 0
    extent = seed_extent
    while extent < size:
        extent *= 2
        blocks += 1
    if extent != size:
        raise WorkloadError(
            f"output size {size} is not a power-of-two multiple of the "
            f"{seed_extent}x{seed_extent} seed"
        )
    return blocks


def halving_channel_plan(
    num_blocks: int, base_channels: int, out_channels: int, *, floor: int = 8
) -> Tuple[int, ...]:
    """Generator channel plan: halve from ``base_channels``, end at the image.

    ``[base/2, base/4, ..., out_channels]`` — the DCGAN recipe, with a
    ``floor`` so narrow scaled-down variants keep simulable layers.
    """
    if num_blocks < 1:
        raise WorkloadError("a channel plan needs at least one block")
    hidden = [max(floor, base_channels >> (i + 1)) for i in range(num_blocks - 1)]
    return (*hidden, out_channels)


def doubling_channel_plan(
    num_blocks: int, top_channels: int, *, floor: int = 8
) -> Tuple[int, ...]:
    """Discriminator channel plan: double up to ``top_channels``.

    ``[top >> (n-1), ..., top/2, top]`` — the mirror of
    :func:`halving_channel_plan`, with the same ``floor``.
    """
    if num_blocks < 1:
        raise WorkloadError("a channel plan needs at least one block")
    return tuple(
        max(floor, top_channels >> (num_blocks - 1 - i)) for i in range(num_blocks)
    )


def _per_block(
    value: int | Tuple[int, ...] | Sequence[int | Tuple[int, ...]],
    count: int,
    name: str,
) -> Tuple[int | Tuple[int, ...], ...]:
    """Broadcast a scalar/tuple stride to every block, or validate a list."""
    if isinstance(value, int):
        return (value,) * count
    if isinstance(value, tuple) and all(isinstance(v, int) for v in value):
        # A single per-dimension tuple applied to every block.
        return (value,) * count
    values = tuple(value)  # type: ignore[arg-type]
    if len(values) != count:
        raise WorkloadError(
            f"{name} list has {len(values)} entries but the stack has {count} blocks"
        )
    return values
