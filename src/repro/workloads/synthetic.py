"""Synthetic stress-generator workloads: parameterized DCGAN-style stacks.

The paper evaluates six published GANs; this module opens the workload axis
to *generated* scenarios.  :func:`build_synthetic` constructs a DCGAN-style
generator/discriminator pair from four structural knobs:

* ``depth`` — number of transposed-convolution blocks in the generator;
* ``base_channels`` — channel width of the 4x4 seed (the plan halves after
  each upsampling block, exactly like the paper workloads);
* ``stride`` / ``kernel`` — upsampling geometry of the stride-s blocks;
* ``upsample_percent`` — the **zero-density knob**: the percentage of blocks
  that upsample (and therefore insert zeros under the paper's Figure 3
  formulation); the rest are stride-1 3x3 refinement blocks contributing no
  inconsequential MACs, as in MAGAN.

Sweeping ``upsample_percent`` from 0 to 100 moves the workload from a
MAGAN-like worst case for GANAX to a 3D-GAN-like best case, which makes the
family the natural stress harness for sweeps and design-space exploration.
Spec strings such as ``synthetic@d8c256`` resolve through the ``synthetic``
registry family (see :mod:`repro.workloads.families`).
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import WorkloadError
from ..nn.network import GANModel
from ..nn.shapes import FeatureMapShape
from .builder import (
    build_discriminator,
    build_generator,
    conv_stack,
    doubling_channel_plan,
    tconv_stack,
)

#: Default knob values (the family's canonical rendering skips these).
DEFAULTS = {
    "depth": 6,
    "base_channels": 128,
    "kernel": 4,
    "stride": 2,
    "upsample_percent": 50,
    "latent_dim": 100,
}

SEED_EXTENT = 4
#: Geometry of the stride-1 refinement blocks (3x3, extent-preserving).
REFINE_KERNEL, REFINE_PADDING = 3, 1


def upsample_schedule(depth: int, upsample_percent: int) -> Tuple[bool, ...]:
    """Which of the ``depth`` blocks upsample, spread evenly MAGAN-style.

    ``round(depth * upsample_percent / 100)`` blocks upsample; the True
    entries are distributed so upsampling and refinement blocks interleave.
    """
    upsamples = round(depth * upsample_percent / 100)
    return tuple(
        (i + 1) * upsamples // depth > i * upsamples // depth for i in range(depth)
    )


def _upsample_geometry(kernel: int, stride: int) -> Tuple[int, int]:
    """(padding, output_padding) making a stride-s block scale extents by s.

    Solves ``(n-1)*s - 2p + k + op == s*n`` with ``0 <= op < s``.
    """
    padding = max(0, (kernel - stride + 1) // 2)
    output_padding = stride - kernel + 2 * padding
    if not 0 <= output_padding < max(stride, 1):
        raise WorkloadError(
            f"no exact-upsampling geometry for kernel={kernel}, stride={stride}"
        )
    return padding, output_padding


def build_synthetic(
    depth: int = DEFAULTS["depth"],
    base_channels: int = DEFAULTS["base_channels"],
    kernel: int = DEFAULTS["kernel"],
    stride: int = DEFAULTS["stride"],
    upsample_percent: int = DEFAULTS["upsample_percent"],
    latent_dim: int = DEFAULTS["latent_dim"],
) -> GANModel:
    """Build one synthetic stress GAN from the structural knobs.

    The generator is ``depth`` transposed-convolution blocks over a 4x4 seed
    of ``base_channels`` channels; the discriminator is a stride-2 conv
    stack taking the generated image back toward the seed extent.
    """
    if not 1 <= depth <= 12:
        raise WorkloadError(f"synthetic depth must be in [1, 12], got {depth}")
    if base_channels < 8:
        raise WorkloadError(
            f"synthetic base_channels must be >= 8, got {base_channels}"
        )
    if not 2 <= kernel <= 7:
        raise WorkloadError(f"synthetic kernel must be in [2, 7], got {kernel}")
    if stride not in (1, 2, 4):
        raise WorkloadError(f"synthetic stride must be 1, 2 or 4, got {stride}")
    if not 0 <= upsample_percent <= 100:
        raise WorkloadError(
            f"synthetic upsample_percent must be in [0, 100], got {upsample_percent}"
        )
    if latent_dim < 1:
        raise WorkloadError(f"synthetic latent_dim must be >= 1, got {latent_dim}")

    schedule = upsample_schedule(depth, upsample_percent)
    up_padding, up_output_padding = _upsample_geometry(kernel, stride)

    channel_plan: List[int] = []
    kernels: List[int] = []
    strides: List[int] = []
    paddings: List[int] = []
    output_paddings: List[int] = []
    channels = base_channels
    for upsamples in schedule:
        if upsamples:
            channels = max(8, channels // 2)
            kernels.append(kernel)
            strides.append(stride)
            paddings.append(up_padding)
            output_paddings.append(up_output_padding)
        else:
            kernels.append(REFINE_KERNEL)
            strides.append(1)
            paddings.append(REFINE_PADDING)
            output_paddings.append(0)
        channel_plan.append(channels)
    channel_plan[-1] = 3  # final block renders the image

    generator = build_generator(
        "synthetic_generator",
        latent_dim,
        FeatureMapShape.image(
            channels=base_channels, height=SEED_EXTENT, width=SEED_EXTENT
        ),
        tconv_stack(
            channel_plan=channel_plan,
            kernel=kernels,
            stride=strides,
            padding=paddings,
            output_padding=output_paddings,
            prefix="tconv",
        ),
    )

    image_extent = generator.output_shape.spatial[0]
    # One stride-2 conv per upsampling block, but never more halvings than
    # the image extent admits (stride-1 generators stay at the seed extent).
    down_blocks = min(
        max(1, sum(schedule)), max(1, image_extent.bit_length() - 1)
    )
    discriminator = build_discriminator(
        "synthetic_discriminator",
        FeatureMapShape.image(channels=3, height=image_extent, width=image_extent),
        conv_stack(
            channel_plan=doubling_channel_plan(down_blocks, base_channels),
            kernel=4,
            stride=2,
            padding=1,
            prefix="conv",
        ),
    )
    return GANModel(
        name="synthetic",
        generator=generator,
        discriminator=discriminator,
        year=0,
        description=(
            f"synthetic stress GAN: depth {depth}, base width {base_channels}, "
            f"{sum(schedule)}/{depth} stride-{stride} upsampling blocks"
        ),
    )
