"""DiscoGAN workload (Kim et al., 2017).

Table I lists DiscoGAN with 5 convolution layers *and* 4 transposed-convolution
layers in the generator (it is an encoder-decoder image-to-image translator),
and 5 convolution layers in the discriminator.  The generator encodes a
64x64x3 image through five stride-2 convolutions down to a 2x2 bottleneck and
decodes it back through four stride-2 transposed convolutions; the
discriminator is a DCGAN-style stack of five stride-2 convolutions.
"""

from __future__ import annotations

from ..nn.layers import ActivationLayer, BatchNormLayer, ConvLayer
from ..nn.network import GANModel, Network
from ..nn.shapes import FeatureMapShape
from .builder import (
    build_discriminator,
    conv_stack,
    doubling_channel_plan,
    halving_channel_plan,
    tconv_stack,
)
from ..errors import WorkloadError

BASE_CHANNELS = 1024
IMAGE_SIZE = 64
IMAGE_SHAPE = FeatureMapShape.image(channels=3, height=IMAGE_SIZE, width=IMAGE_SIZE)


def build_discogan_generator() -> Network:
    """The DiscoGAN generator: conv encoder (5) + tconv decoder (4).

    Four stride-2 encoder convolutions reduce 64x64 to 4x4; a fifth stride-1
    bottleneck convolution keeps the 4x4 resolution so that the four stride-2
    decoder transposed convolutions restore the original 64x64 output.
    """
    encoder = conv_stack(
        channel_plan=[64, 128, 256, 512],
        kernel=4,
        stride=2,
        padding=1,
        activation="leaky_relu",
        final_activation="leaky_relu",
        prefix="enc",
    )
    bottleneck = (
        ConvLayer(name="enc5", out_channels=1024, kernel=3, stride=1, padding=1),
        BatchNormLayer(name="enc5_bn"),
        ActivationLayer(name="enc5_act", function="leaky_relu"),
    )
    decoder = tconv_stack(
        channel_plan=[512, 256, 128, 3],
        kernel=4,
        stride=2,
        padding=1,
        prefix="dec",
    )
    return Network(
        name="discogan_generator",
        input_shape=IMAGE_SHAPE,
        layers=(*encoder, *bottleneck, *decoder),
    )


def build_discogan_discriminator() -> Network:
    """The DiscoGAN discriminator: 5 stride-2 4x4 convolutions."""
    layers = conv_stack(
        channel_plan=[64, 128, 256, 512, 1024],
        kernel=4,
        stride=2,
        padding=1,
        prefix="conv",
    )
    return build_discriminator("discogan_discriminator", IMAGE_SHAPE, layers)


def build_discogan() -> GANModel:
    """The full DiscoGAN model as evaluated in the paper."""
    return GANModel(
        name="DiscoGAN",
        generator=build_discogan_generator(),
        discriminator=build_discogan_discriminator(),
        year=2017,
        description="Style transfer from one domain to another",
    )


def build_discogan_variant(
    size: int = IMAGE_SIZE, base_channels: int = BASE_CHANNELS
) -> GANModel:
    """A scaled DiscoGAN: the encoder-decoder translator at another size.

    The 4-down / bottleneck / 4-up shape is preserved (DiscoGAN's identity),
    so ``size`` only needs to survive four halvings; ``base_channels`` sets
    the bottleneck width.  Backs the ``discogan@...`` workload family.
    """
    if size < 16 or size & (size - 1):
        raise WorkloadError(
            f"DiscoGAN variant size must be a power of two >= 16, got {size}"
        )
    image_shape = FeatureMapShape.image(channels=3, height=size, width=size)
    encoder = conv_stack(
        channel_plan=doubling_channel_plan(4, base_channels // 2),
        kernel=4,
        stride=2,
        padding=1,
        activation="leaky_relu",
        final_activation="leaky_relu",
        prefix="enc",
    )
    bottleneck = (
        ConvLayer(name="enc5", out_channels=base_channels, kernel=3, stride=1, padding=1),
        BatchNormLayer(name="enc5_bn"),
        ActivationLayer(name="enc5_act", function="leaky_relu"),
    )
    decoder = tconv_stack(
        channel_plan=halving_channel_plan(4, base_channels, 3),
        kernel=4,
        stride=2,
        padding=1,
        prefix="dec",
    )
    generator = Network(
        name="discogan_generator",
        input_shape=image_shape,
        layers=(*encoder, *bottleneck, *decoder),
    )
    discriminator = build_discriminator(
        "discogan_discriminator",
        image_shape,
        conv_stack(
            channel_plan=doubling_channel_plan(5, base_channels),
            kernel=4,
            stride=2,
            padding=1,
            prefix="conv",
        ),
    )
    return GANModel(
        name="DiscoGAN",
        generator=generator,
        discriminator=discriminator,
        year=2017,
        description=f"DiscoGAN translator at {size}x{size}, bottleneck {base_channels}",
    )
