"""MAGAN workload (Wang et al., 2017).

Table I lists MAGAN with 6 transposed-convolution layers in the generator and
a discriminator containing both 6 convolution and 6 transposed-convolution
layers — MAGAN's discriminator is an autoencoder whose reconstruction error
drives the margin-adaptation training procedure.  The paper notes two MAGAN
specifics that this module reproduces:

* MAGAN has the *lowest* fraction of inserted zeros among the evaluated GANs
  (Figure 1) and therefore the smallest speedup (about 1.3x in Figure 8a).
  We model this with a generator whose six transposed-convolution blocks
  alternate stride-2 upsampling layers with stride-1 refinement layers (which
  insert no zeros), so only half of the generator's transposed-convolution
  work sees zero insertion.
* For the discriminator, only the convolution layers are counted in the
  runtime/energy accounting (``discriminator_conv_only=True``), exactly as
  the paper does for its Figure 9 breakdown.
"""

from __future__ import annotations

from ..nn.layers import ActivationLayer, BatchNormLayer, ConvLayer, TransposedConvLayer
from ..nn.network import GANModel, Network
from ..nn.shapes import FeatureMapShape
from .builder import build_generator

LATENT_DIM = 100
BASE_CHANNELS = 512
SEED_SHAPE = FeatureMapShape.image(channels=2 * BASE_CHANNELS, height=8, width=8)
IMAGE_SHAPE = FeatureMapShape.image(channels=3, height=64, width=64)


def _block(layer, *, batch_norm: bool = True, activation: str = "relu"):
    """A (t)conv layer followed by optional batch-norm and an activation."""
    layers = [layer]
    if batch_norm:
        layers.append(BatchNormLayer(name=f"{layer.name}_bn"))
    layers.append(ActivationLayer(name=f"{layer.name}_act", function=activation))
    return layers


def build_magan_generator() -> Network:
    """The MAGAN generator: 6 transposed convolutions, alternating stride.

    Stride-2 4x4 blocks upsample 8x8 -> 16 -> 32 -> 64 while interleaved
    stride-1 3x3 blocks refine the feature maps without inserting zeros.
    """
    layers = []
    layers += _block(TransposedConvLayer(name="tconv1", out_channels=512, kernel=4, stride=2, padding=1))
    layers += _block(TransposedConvLayer(name="tconv2", out_channels=512, kernel=3, stride=1, padding=1))
    layers += _block(TransposedConvLayer(name="tconv3", out_channels=256, kernel=4, stride=2, padding=1))
    layers += _block(TransposedConvLayer(name="tconv4", out_channels=256, kernel=3, stride=1, padding=1))
    layers += _block(TransposedConvLayer(name="tconv5", out_channels=128, kernel=4, stride=2, padding=1))
    layers += _block(
        TransposedConvLayer(name="tconv6", out_channels=3, kernel=3, stride=1, padding=1),
        batch_norm=False,
        activation="tanh",
    )
    return build_generator("magan_generator", LATENT_DIM, SEED_SHAPE, layers)


def build_magan_discriminator() -> Network:
    """The MAGAN discriminator: a 6-conv / 6-tconv autoencoder."""
    encoder = []
    encoder += _block(ConvLayer(name="enc1", out_channels=64, kernel=4, stride=2, padding=1),
                      batch_norm=False, activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc2", out_channels=128, kernel=4, stride=2, padding=1),
                      activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc3", out_channels=256, kernel=4, stride=2, padding=1),
                      activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc4", out_channels=512, kernel=4, stride=2, padding=1),
                      activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc5", out_channels=512, kernel=3, stride=1, padding=1),
                      activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc6", out_channels=1024, kernel=3, stride=1, padding=1),
                      activation="leaky_relu")

    decoder = []
    decoder += _block(TransposedConvLayer(name="dec1", out_channels=512, kernel=3, stride=1, padding=1))
    decoder += _block(TransposedConvLayer(name="dec2", out_channels=512, kernel=4, stride=2, padding=1))
    decoder += _block(TransposedConvLayer(name="dec3", out_channels=256, kernel=4, stride=2, padding=1))
    decoder += _block(TransposedConvLayer(name="dec4", out_channels=128, kernel=4, stride=2, padding=1))
    decoder += _block(TransposedConvLayer(name="dec5", out_channels=64, kernel=4, stride=2, padding=1))
    decoder += _block(
        TransposedConvLayer(name="dec6", out_channels=3, kernel=3, stride=1, padding=1),
        batch_norm=False,
        activation="tanh",
    )
    return Network(
        name="magan_discriminator",
        input_shape=IMAGE_SHAPE,
        layers=(*encoder, *decoder),
    )


def build_magan() -> GANModel:
    """The full MAGAN model as evaluated in the paper."""
    return GANModel(
        name="MAGAN",
        generator=build_magan_generator(),
        discriminator=build_magan_discriminator(),
        year=2017,
        description="Stable training procedure for GANs",
        discriminator_conv_only=True,
    )


def build_magan_variant(
    base_channels: int = BASE_CHANNELS, latent_dim: int = LATENT_DIM
) -> GANModel:
    """A width-scaled MAGAN: the paper topology with rescaled channel plans.

    The alternating stride-2 / stride-1 generator and the autoencoder
    discriminator (conv-only accounting) are MAGAN's identity, so only the
    channel widths scale: every plan entry is the canonical one multiplied
    by ``base_channels / 512``.  Backs the ``magan@...`` workload family.
    """
    from ..errors import WorkloadError

    if base_channels < 16 or base_channels % 8:
        raise WorkloadError(
            f"MAGAN variant base_channels must be a multiple of 8 >= 16, "
            f"got {base_channels}"
        )
    c = base_channels

    layers = []
    layers += _block(TransposedConvLayer(name="tconv1", out_channels=c, kernel=4, stride=2, padding=1))
    layers += _block(TransposedConvLayer(name="tconv2", out_channels=c, kernel=3, stride=1, padding=1))
    layers += _block(TransposedConvLayer(name="tconv3", out_channels=c // 2, kernel=4, stride=2, padding=1))
    layers += _block(TransposedConvLayer(name="tconv4", out_channels=c // 2, kernel=3, stride=1, padding=1))
    layers += _block(TransposedConvLayer(name="tconv5", out_channels=c // 4, kernel=4, stride=2, padding=1))
    layers += _block(
        TransposedConvLayer(name="tconv6", out_channels=3, kernel=3, stride=1, padding=1),
        batch_norm=False,
        activation="tanh",
    )
    generator = build_generator(
        "magan_generator",
        latent_dim,
        FeatureMapShape.image(channels=2 * c, height=8, width=8),
        layers,
    )

    encoder = []
    encoder += _block(ConvLayer(name="enc1", out_channels=c // 8, kernel=4, stride=2, padding=1),
                      batch_norm=False, activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc2", out_channels=c // 4, kernel=4, stride=2, padding=1),
                      activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc3", out_channels=c // 2, kernel=4, stride=2, padding=1),
                      activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc4", out_channels=c, kernel=4, stride=2, padding=1),
                      activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc5", out_channels=c, kernel=3, stride=1, padding=1),
                      activation="leaky_relu")
    encoder += _block(ConvLayer(name="enc6", out_channels=2 * c, kernel=3, stride=1, padding=1),
                      activation="leaky_relu")
    decoder = []
    decoder += _block(TransposedConvLayer(name="dec1", out_channels=c, kernel=3, stride=1, padding=1))
    decoder += _block(TransposedConvLayer(name="dec2", out_channels=c, kernel=4, stride=2, padding=1))
    decoder += _block(TransposedConvLayer(name="dec3", out_channels=c // 2, kernel=4, stride=2, padding=1))
    decoder += _block(TransposedConvLayer(name="dec4", out_channels=c // 4, kernel=4, stride=2, padding=1))
    decoder += _block(TransposedConvLayer(name="dec5", out_channels=c // 8, kernel=4, stride=2, padding=1))
    decoder += _block(
        TransposedConvLayer(name="dec6", out_channels=3, kernel=3, stride=1, padding=1),
        batch_norm=False,
        activation="tanh",
    )
    discriminator = Network(
        name="magan_discriminator",
        input_shape=IMAGE_SHAPE,
        layers=(*encoder, *decoder),
    )
    return GANModel(
        name="MAGAN",
        generator=generator,
        discriminator=discriminator,
        year=2017,
        description=f"MAGAN topology at base width {base_channels}",
        discriminator_conv_only=True,
    )
