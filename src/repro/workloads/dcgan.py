"""DCGAN workload (Radford et al., 2015).

Table I of the GANAX paper lists DCGAN with 4 transposed-convolution layers in
the generator and 5 convolution layers in the discriminator.  The canonical
DCGAN generator projects a 100-dimensional latent vector to a 4x4x1024 seed
and upsamples it through four stride-2, 5x5 transposed convolutions up to a
64x64x3 image; the discriminator mirrors it with five stride-2 convolutions.
"""

from __future__ import annotations

from ..nn.network import GANModel, Network
from ..nn.shapes import FeatureMapShape
from .builder import build_discriminator, build_generator, conv_stack, tconv_stack

LATENT_DIM = 100
SEED_SHAPE = FeatureMapShape.image(channels=1024, height=4, width=4)
IMAGE_SHAPE = FeatureMapShape.image(channels=3, height=64, width=64)


def build_dcgan_generator() -> Network:
    """The DCGAN generator: 4 stride-2 5x5 transposed convolutions."""
    layers = tconv_stack(
        channel_plan=[512, 256, 128, 3],
        kernel=5,
        stride=2,
        padding=2,
        output_padding=1,
        prefix="tconv",
    )
    return build_generator("dcgan_generator", LATENT_DIM, SEED_SHAPE, layers)


def build_dcgan_discriminator() -> Network:
    """The DCGAN discriminator: 5 stride-2 5x5 convolutions."""
    layers = conv_stack(
        channel_plan=[64, 128, 256, 512, 1024],
        kernel=5,
        stride=2,
        padding=2,
        prefix="conv",
    )
    return build_discriminator("dcgan_discriminator", IMAGE_SHAPE, layers)


def build_dcgan() -> GANModel:
    """The full DCGAN model as evaluated in the paper."""
    return GANModel(
        name="DCGAN",
        generator=build_dcgan_generator(),
        discriminator=build_dcgan_discriminator(),
        year=2015,
        description="Unsupervised representation learning",
    )
