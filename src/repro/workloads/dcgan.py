"""DCGAN workload (Radford et al., 2015).

Table I of the GANAX paper lists DCGAN with 4 transposed-convolution layers in
the generator and 5 convolution layers in the discriminator.  The canonical
DCGAN generator projects a 100-dimensional latent vector to a 4x4x1024 seed
and upsamples it through four stride-2, 5x5 transposed convolutions up to a
64x64x3 image; the discriminator mirrors it with five stride-2 convolutions.
"""

from __future__ import annotations

from ..nn.network import GANModel, Network
from ..nn.shapes import FeatureMapShape
from .builder import (
    build_discriminator,
    build_generator,
    conv_stack,
    doubling_channel_plan,
    halving_channel_plan,
    tconv_stack,
    upsampling_block_count,
)

LATENT_DIM = 100
BASE_CHANNELS = 1024
IMAGE_SIZE = 64
SEED_SHAPE = FeatureMapShape.image(channels=BASE_CHANNELS, height=4, width=4)
IMAGE_SHAPE = FeatureMapShape.image(channels=3, height=IMAGE_SIZE, width=IMAGE_SIZE)


def build_dcgan_generator() -> Network:
    """The DCGAN generator: 4 stride-2 5x5 transposed convolutions."""
    layers = tconv_stack(
        channel_plan=[512, 256, 128, 3],
        kernel=5,
        stride=2,
        padding=2,
        output_padding=1,
        prefix="tconv",
    )
    return build_generator("dcgan_generator", LATENT_DIM, SEED_SHAPE, layers)


def build_dcgan_discriminator() -> Network:
    """The DCGAN discriminator: 5 stride-2 5x5 convolutions."""
    layers = conv_stack(
        channel_plan=[64, 128, 256, 512, 1024],
        kernel=5,
        stride=2,
        padding=2,
        prefix="conv",
    )
    return build_discriminator("dcgan_discriminator", IMAGE_SHAPE, layers)


def build_dcgan() -> GANModel:
    """The full DCGAN model as evaluated in the paper."""
    return GANModel(
        name="DCGAN",
        generator=build_dcgan_generator(),
        discriminator=build_dcgan_discriminator(),
        year=2015,
        description="Unsupervised representation learning",
    )


def build_dcgan_variant(
    size: int = IMAGE_SIZE,
    base_channels: int = BASE_CHANNELS,
    latent_dim: int = LATENT_DIM,
) -> GANModel:
    """A scaled DCGAN: the paper recipe at another resolution / channel width.

    ``size`` must be a power-of-two multiple of the 4x4 seed; the generator
    gets one stride-2 5x5 transposed convolution per doubling and the
    discriminator mirrors it with one extra stride-2 convolution, exactly as
    the canonical 64x64 model does with 4 and 5 layers.  Backs the
    ``dcgan@...`` workload family (see :mod:`repro.workloads.families`).
    """
    blocks = upsampling_block_count(size)
    generator = build_generator(
        "dcgan_generator",
        latent_dim,
        FeatureMapShape.image(channels=base_channels, height=4, width=4),
        tconv_stack(
            channel_plan=halving_channel_plan(blocks, base_channels, 3),
            kernel=5,
            stride=2,
            padding=2,
            output_padding=1,
            prefix="tconv",
        ),
    )
    discriminator = build_discriminator(
        "dcgan_discriminator",
        FeatureMapShape.image(channels=3, height=size, width=size),
        conv_stack(
            channel_plan=doubling_channel_plan(blocks + 1, base_channels),
            kernel=5,
            stride=2,
            padding=2,
            prefix="conv",
        ),
    )
    return GANModel(
        name="DCGAN",
        generator=generator,
        discriminator=discriminator,
        year=2015,
        description=f"DCGAN recipe at {size}x{size}, base width {base_channels}",
    )
