"""EYERISS-style row-stationary baseline accelerator model."""

from .performance import BaselineLayerEstimate, estimate_layer
from .row_stationary import RowStationaryMapping, map_layer, mapping_utilization
from .simulator import ACCELERATOR_NAME, EyerissSimulator

__all__ = [
    "BaselineLayerEstimate",
    "estimate_layer",
    "RowStationaryMapping",
    "map_layer",
    "mapping_utilization",
    "ACCELERATOR_NAME",
    "EyerissSimulator",
]
