"""Analytical cycle and activity model of the EYERISS-style baseline.

The baseline executes every layer — including transposed convolutions — with
the conventional row-stationary convolution dataflow: the zero-inserted input
is streamed in and every multiply-add slot occupies a PE for a cycle.  Data
gating (which EYERISS implements) suppresses the *energy* of a multiply whose
input operand is zero, but the cycle is still spent, matching the paper's
discussion in Sections III and VII.

The model produces, per layer:

* a cycle count composed of a compute term, a horizontal partial-sum
  accumulation term, and a DRAM roofline bound,
* :class:`~repro.hw.counters.EventCounters` describing register-file, NoC,
  global-buffer and DRAM activity, which the energy model prices, and
* PE-activity numbers (active vs busy vs total PE-cycles) for utilization
  reporting (Figure 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..config import ArchitectureConfig
from ..errors import SimulationError
from ..hw.counters import EventCounters
from ..nn.layers import ConvLayer, TransposedConvLayer
from ..nn.network import LayerBinding
from .row_stationary import RowStationaryMapping, map_layer, spatial_rows_cols

#: Largest integer magnitude that converts to float64 without rounding.  The
#: vectorized estimators must match the scalar ones bit-for-bit; beyond this
#: bound ``int64 -> float64`` conversion inside NumPy could round differently
#: from Python's exact int division, so such layers fall back to the scalar
#: path (see :func:`estimate_network`).
FLOAT64_EXACT_LIMIT = 2**53


def _float64_safe(*columns: Sequence[int]) -> bool:
    """Whether every value of every column stays float64-exact."""
    return all(value < FLOAT64_EXACT_LIMIT for column in columns for value in column)


@dataclass(frozen=True)
class BaselineLayerEstimate:
    """Cycle and activity estimate of one layer on the EYERISS baseline."""

    layer_name: str
    cycles: int
    compute_cycles: int
    accumulation_cycles: int
    dram_cycles: int
    active_pe_cycles: int
    busy_pe_cycles: int
    total_pe_cycles: int
    counters: EventCounters
    mapping: RowStationaryMapping


def gbuf_input_tiles(
    input_elements: int, config: ArchitectureConfig
) -> int:
    """Number of input tiles forced by the global data buffer capacity.

    The accelerator keeps a tile of the (possibly zero-inserted) input feature
    map plus the partial sums it produces resident in the global data buffer
    and streams the layer weights from DRAM once per tile.  Half the buffer is
    reserved for partial sums and double buffering, so the usable tile
    capacity is half the buffer's word count.  Layers whose working set does
    not fit in a single tile therefore re-read their weights from DRAM once
    per additional tile — this is how the zero-inserted input of a transposed
    convolution inflates the baseline's DRAM traffic.
    """
    gbuf_words = config.global_data_buffer_bytes // config.data_bytes
    tile_capacity = max(1, gbuf_words // 2)
    return max(1, math.ceil(input_elements / tile_capacity))


def _effective_input_elements(binding: LayerBinding) -> int:
    """Number of input words the baseline streams and operates on.

    For a transposed convolution the baseline operates on the zero-inserted
    input, so the streamed volume is the expanded spatial size times the
    channel count.  For everything else it is the genuine input size.
    """
    layer = binding.layer
    if isinstance(layer, TransposedConvLayer):
        expanded = layer.zero_inserted_spatial(binding.input_shape)
        elements = binding.input_shape.channels
        for extent in expanded:
            elements *= extent
        return elements
    return binding.input_shape.num_elements


def estimate_layer(
    binding: LayerBinding, config: ArchitectureConfig
) -> BaselineLayerEstimate:
    """Estimate cycles and activity of one layer on the EYERISS baseline."""
    layer = binding.layer
    if not binding.is_convolutional:
        return _estimate_non_convolutional(binding, config)

    mapping = map_layer(binding, config)
    peak = config.num_pes
    effective_throughput = peak * mapping.occupancy
    if effective_throughput <= 0:
        raise SimulationError(f"{layer.name}: zero effective throughput")

    dense_macs = binding.total_macs
    consequential = binding.consequential_macs
    gated = dense_macs - consequential

    filter_rows, _fc, output_rows, _oc = spatial_rows_cols(binding)
    output_elements = binding.output_shape.num_elements

    # --- cycles --------------------------------------------------------
    compute_cycles = math.ceil(dense_macs / effective_throughput)
    # Horizontal accumulation: every output element gathers partial sums from
    # the full filter-row chain, regardless of inserted zeros (Figure 4b).
    accumulation_hops = output_elements * filter_rows
    accumulation_cycles = math.ceil(accumulation_hops / effective_throughput)

    input_elements = _effective_input_elements(binding)
    weight_words = binding.weight_count
    output_words = output_elements
    weight_tiles = gbuf_input_tiles(input_elements, config)
    dram_read_words = input_elements + weight_words * weight_tiles
    # A conventional convolution dataflow consumes a *materialised*
    # zero-inserted input, so for transposed convolutions the expanded feature
    # map is written out once (by the zero-insertion pass) before being read
    # back; GANAX never materialises it.
    if isinstance(layer, TransposedConvLayer):
        materialisation_words = input_elements
    else:
        materialisation_words = 0
    dram_write_words = output_words + materialisation_words
    dram_words = dram_read_words + dram_write_words
    dram_bytes = dram_words * config.data_bytes
    dram_cycles = math.ceil(dram_bytes / config.dram_bandwidth_bytes_per_cycle)

    cycles = max(compute_cycles + accumulation_cycles, dram_cycles)

    # --- activity counters ----------------------------------------------
    counters = EventCounters()
    counters.mac_ops = consequential
    counters.gated_ops = gated
    counters.alu_ops = accumulation_hops

    # Register file: consequential MACs read input+weight and update a psum
    # (3 accesses); gated slots still read the input operand to detect the
    # zero and keep the partial sum flowing through the pipeline (2 accesses).
    counters.register_file_reads = 2 * consequential + gated
    counters.register_file_writes = consequential + gated

    # Output-channel passes force the (expanded) input to be re-fetched from
    # the global buffer; weights are fetched once per pass over the input.
    out_channels = binding.output_shape.channels
    m_parallel = max(1, mapping.sets_per_pass)
    m_passes = max(1, math.ceil(out_channels / m_parallel))
    gbuf_input_reads = input_elements * m_passes
    gbuf_weight_reads = weight_words * weight_tiles
    counters.global_buffer_reads = gbuf_input_reads + gbuf_weight_reads
    counters.global_buffer_writes = output_words

    # NoC: delivery of operands from the global buffer into the array plus
    # psum forwarding along the accumulation chain.
    counters.noc_transfers = (
        gbuf_input_reads + gbuf_weight_reads + accumulation_hops
    )

    counters.dram_reads = dram_read_words
    counters.dram_writes = dram_write_words

    active_pe_cycles = consequential
    busy_pe_cycles = dense_macs + accumulation_hops
    total_pe_cycles = cycles * peak

    return BaselineLayerEstimate(
        layer_name=layer.name,
        cycles=cycles,
        compute_cycles=compute_cycles,
        accumulation_cycles=accumulation_cycles,
        dram_cycles=dram_cycles,
        active_pe_cycles=active_pe_cycles,
        busy_pe_cycles=busy_pe_cycles,
        total_pe_cycles=total_pe_cycles,
        counters=counters,
        mapping=mapping,
    )


def _estimate_non_convolutional(
    binding: LayerBinding, config: ArchitectureConfig
) -> BaselineLayerEstimate:
    """Dense/batch-norm/activation/pooling layers: element-wise streaming.

    These layers are a negligible share of GAN compute; they are modelled as
    a streaming pass over their operands at one element per PE per cycle,
    bounded by DRAM bandwidth for the dense (fully connected) layers whose
    weights dominate traffic.
    """
    peak = config.num_pes
    macs = binding.total_macs
    elements = binding.output_shape.num_elements
    weight_words = binding.weight_count

    compute_cycles = math.ceil(max(macs, elements) / peak)
    dram_words = binding.input_shape.num_elements + weight_words + elements
    dram_bytes = dram_words * config.data_bytes
    dram_cycles = math.ceil(dram_bytes / config.dram_bandwidth_bytes_per_cycle)
    cycles = max(compute_cycles, dram_cycles)

    counters = EventCounters()
    counters.mac_ops = macs
    counters.alu_ops = 0 if macs else elements
    counters.register_file_reads = 2 * macs
    counters.register_file_writes = macs
    counters.global_buffer_reads = binding.input_shape.num_elements + weight_words
    counters.global_buffer_writes = elements
    counters.noc_transfers = binding.input_shape.num_elements + weight_words
    counters.dram_reads = binding.input_shape.num_elements + weight_words
    counters.dram_writes = elements

    # A mapping placeholder describing a fully-occupied streaming pass.
    mapping = RowStationaryMapping(
        filter_rows=1,
        output_rows=1,
        set_height=1,
        set_width=1,
        folds=1,
        sets_per_pass=config.num_pes,
        occupancy=1.0,
    )
    return BaselineLayerEstimate(
        layer_name=binding.name,
        cycles=cycles,
        compute_cycles=compute_cycles,
        accumulation_cycles=0,
        dram_cycles=dram_cycles,
        active_pe_cycles=macs,
        busy_pe_cycles=max(macs, elements),
        total_pe_cycles=cycles * peak,
        counters=counters,
        mapping=mapping,
    )


# ----------------------------------------------------------------------
# Vectorized whole-network estimation
# ----------------------------------------------------------------------
def estimate_network(
    bindings: Sequence[LayerBinding], config: ArchitectureConfig
) -> Tuple[BaselineLayerEstimate, ...]:
    """Estimate every layer of a network as one NumPy array program.

    Builds a layer table (one row per binding, one column per scalar
    quantity) and evaluates the baseline model's arithmetic over whole
    columns instead of layer by layer.  Results are bit-identical to mapping
    :func:`estimate_layer` over the bindings: the float expressions are
    evaluated in the same operation order, and any layer whose intermediate
    quantities exceed :data:`FLOAT64_EXACT_LIMIT` (where ``int64 -> float64``
    conversion starts rounding) falls back to the scalar path.
    """
    bindings = tuple(bindings)
    estimates: List[BaselineLayerEstimate] = [None] * len(bindings)  # type: ignore[list-item]
    conv = [(i, b) for i, b in enumerate(bindings) if b.is_convolutional]
    other = [(i, b) for i, b in enumerate(bindings) if not b.is_convolutional]
    if conv:
        for (i, _b), estimate in zip(
            conv, _conv_table_estimates([b for _i, b in conv], config)
        ):
            estimates[i] = estimate
    if other:
        for (i, _b), estimate in zip(
            other, _streaming_table_estimates([b for _i, b in other], config)
        ):
            estimates[i] = estimate
    return tuple(estimates)


def _ceil_div_int(numerators: Sequence[int], divisor: np.ndarray) -> np.ndarray:
    """``ceil(n / d)`` over columns, matching ``math.ceil(int / float)``."""
    return np.ceil(np.asarray(numerators, dtype=np.float64) / divisor).astype(np.int64)


def _conv_table_estimates(
    bindings: Sequence[LayerBinding], config: ArchitectureConfig
) -> List[BaselineLayerEstimate]:
    """The (t)conv rows of the layer table, evaluated column-wise."""
    mappings = [map_layer(b, config) for b in bindings]
    dense = [b.total_macs for b in bindings]
    cons = [b.consequential_macs for b in bindings]
    out_elems = [b.output_shape.num_elements for b in bindings]
    in_eff = [_effective_input_elements(b) for b in bindings]
    weights = [b.weight_count for b in bindings]
    filter_rows = [spatial_rows_cols(b)[0] for b in bindings]
    tiles = [gbuf_input_tiles(elements, config) for elements in in_eff]
    is_tconv = [isinstance(b.layer, TransposedConvLayer) for b in bindings]

    # Pure-integer columns (exact in Python, no width concerns).
    acc_hops = [o * fr for o, fr in zip(out_elems, filter_rows)]
    weight_reads = [w * t for w, t in zip(weights, tiles)]
    dram_read = [e + wr for e, wr in zip(in_eff, weight_reads)]
    dram_write = [
        o + (e if tconv else 0) for o, e, tconv in zip(out_elems, in_eff, is_tconv)
    ]
    dram_bytes = [(r + w) * config.data_bytes for r, w in zip(dram_read, dram_write)]
    m_passes = [
        max(1, math.ceil(b.output_shape.channels / max(1, m.sets_per_pass)))
        for b, m in zip(bindings, mappings)
    ]
    gbuf_input_reads = [e * p for e, p in zip(in_eff, m_passes)]

    if not _float64_safe(dense, cons, acc_hops, dram_bytes):
        return [estimate_layer(b, config) for b in bindings]

    peak = config.num_pes
    occupancy = np.array([m.occupancy for m in mappings], dtype=np.float64)
    effective_throughput = peak * occupancy
    if np.any(effective_throughput <= 0):
        bad = bindings[int(np.argmax(effective_throughput <= 0))]
        raise SimulationError(f"{bad.name}: zero effective throughput")

    compute_cycles = _ceil_div_int(dense, effective_throughput)
    accumulation_cycles = _ceil_div_int(acc_hops, effective_throughput)
    dram_cycles = _ceil_div_int(
        dram_bytes, np.float64(config.dram_bandwidth_bytes_per_cycle)
    )
    cycles = np.maximum(compute_cycles + accumulation_cycles, dram_cycles)

    estimates = []
    for row, binding in enumerate(bindings):
        gated = dense[row] - cons[row]
        counters = EventCounters()
        counters.mac_ops = cons[row]
        counters.gated_ops = gated
        counters.alu_ops = acc_hops[row]
        counters.register_file_reads = 2 * cons[row] + gated
        counters.register_file_writes = cons[row] + gated
        counters.global_buffer_reads = gbuf_input_reads[row] + weight_reads[row]
        counters.global_buffer_writes = out_elems[row]
        counters.noc_transfers = (
            gbuf_input_reads[row] + weight_reads[row] + acc_hops[row]
        )
        counters.dram_reads = dram_read[row]
        counters.dram_writes = dram_write[row]
        layer_cycles = int(cycles[row])
        estimates.append(
            BaselineLayerEstimate(
                layer_name=binding.name,
                cycles=layer_cycles,
                compute_cycles=int(compute_cycles[row]),
                accumulation_cycles=int(accumulation_cycles[row]),
                dram_cycles=int(dram_cycles[row]),
                active_pe_cycles=cons[row],
                busy_pe_cycles=dense[row] + acc_hops[row],
                total_pe_cycles=layer_cycles * peak,
                counters=counters,
                mapping=mappings[row],
            )
        )
    return estimates


def _streaming_table_estimates(
    bindings: Sequence[LayerBinding], config: ArchitectureConfig
) -> List[BaselineLayerEstimate]:
    """The non-convolutional rows of the layer table (element-wise model)."""
    peak = config.num_pes
    macs = [b.total_macs for b in bindings]
    elements = [b.output_shape.num_elements for b in bindings]
    weights = [b.weight_count for b in bindings]
    in_elems = [b.input_shape.num_elements for b in bindings]
    work = [max(m, e) for m, e in zip(macs, elements)]
    dram_bytes = [
        (i + w + e) * config.data_bytes
        for i, w, e in zip(in_elems, weights, elements)
    ]

    if not _float64_safe(work, dram_bytes):
        return [estimate_layer(b, config) for b in bindings]

    compute_cycles = _ceil_div_int(work, np.float64(peak))
    dram_cycles = _ceil_div_int(
        dram_bytes, np.float64(config.dram_bandwidth_bytes_per_cycle)
    )
    cycles = np.maximum(compute_cycles, dram_cycles)

    mapping = RowStationaryMapping(
        filter_rows=1,
        output_rows=1,
        set_height=1,
        set_width=1,
        folds=1,
        sets_per_pass=config.num_pes,
        occupancy=1.0,
    )
    estimates = []
    for row, binding in enumerate(bindings):
        counters = EventCounters()
        counters.mac_ops = macs[row]
        counters.alu_ops = 0 if macs[row] else elements[row]
        counters.register_file_reads = 2 * macs[row]
        counters.register_file_writes = macs[row]
        counters.global_buffer_reads = in_elems[row] + weights[row]
        counters.global_buffer_writes = elements[row]
        counters.noc_transfers = in_elems[row] + weights[row]
        counters.dram_reads = in_elems[row] + weights[row]
        counters.dram_writes = elements[row]
        layer_cycles = int(cycles[row])
        estimates.append(
            BaselineLayerEstimate(
                layer_name=binding.name,
                cycles=layer_cycles,
                compute_cycles=int(compute_cycles[row]),
                accumulation_cycles=0,
                dram_cycles=int(dram_cycles[row]),
                active_pe_cycles=macs[row],
                busy_pe_cycles=work[row],
                total_pe_cycles=layer_cycles * peak,
                counters=counters,
                mapping=mapping,
            )
        )
    return estimates
