"""Whole-network simulator for the EYERISS-style baseline accelerator.

:class:`EyerissSimulator` runs a :class:`~repro.nn.network.Network` or a
:class:`~repro.nn.network.GANModel` layer by layer through the analytical
performance model (:mod:`repro.baseline.performance`) and the Table II energy
model, producing the result containers of :mod:`repro.analysis.results`.  The
network/GAN aggregation is shared with every other accelerator model through
:class:`~repro.accelerators.base.GanSimulatorBase`, and the class registers
itself as the ``"eyeriss"`` entry of the accelerator registry.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..accelerators.base import GanSimulatorBase
from ..accelerators.registry import register_accelerator
from ..analysis.results import LayerResult
from ..config import SimulationOptions
from ..nn.network import LayerBinding
from .performance import estimate_layer, estimate_network

#: Canonical accelerator identifier used in results.
ACCELERATOR_NAME = "eyeriss"


@register_accelerator(ACCELERATOR_NAME)
class EyerissSimulator(GanSimulatorBase):
    """Analytical simulator of the EYERISS-style convolution accelerator."""

    accelerator_name = ACCELERATOR_NAME
    summary = (
        "EYERISS-style row-stationary baseline: dense execution over the "
        "zero-inserted input with zero-gated MAC energy"
    )
    ganax_area_model = False  # no µindex generators / µop buffers on die

    def simulate_layer(self, binding: LayerBinding) -> LayerResult:
        """Simulate a single bound layer."""
        estimate = estimate_layer(binding, self._config)
        return self._layer_result(
            binding,
            cycles=estimate.cycles,
            active_pe_cycles=estimate.active_pe_cycles,
            busy_pe_cycles=estimate.busy_pe_cycles,
            total_pe_cycles=estimate.total_pe_cycles,
            counters=estimate.counters,
        )

    def simulate_layers(
        self, bindings: Sequence[LayerBinding]
    ) -> Tuple[LayerResult, ...]:
        """Simulate a batch of layers through the vectorized estimator."""
        estimates = estimate_network(bindings, self._config)
        return self._layer_results_from_estimates(bindings, estimates)

    def config_space(self) -> Tuple[str, ...]:
        """The baseline model has no MIMD machinery to configure."""
        excluded = {"mimd_dispatch_overhead_cycles", "ganax_target_utilization"}
        return tuple(f for f in super().config_space() if f not in excluded)

    @classmethod
    def canonical_options(cls, options: SimulationOptions) -> SimulationOptions:
        """The baseline reads neither the zero-skipping flag nor the schedule.

        Both collapse to their defaults so e.g. every (geometry × schedule)
        DSE point shares one baseline cache entry per geometry.
        """
        return options.with_updates(ganax_zero_skipping=True, schedule="default")
