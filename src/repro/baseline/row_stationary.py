"""Row-stationary mapping of convolution layers onto a 2-D PE array.

EYERISS maps a convolution onto its PE array with the *row-stationary* (RS)
dataflow: one PE computes the 1-D convolution of one filter row with one input
row; a logical *PE set* of ``R`` (filter height) by ``E`` (output height) PEs
produces one 2-D plane of partial sums; filter rows are reused horizontally,
input rows diagonally and partial sums are accumulated vertically across the
set.  Sets that do not fill the physical array are replicated across filters /
channels, and sets larger than the array are folded.

The reproduction implements the mapping arithmetic — how many logical PE sets
fit, how the spatial dimensions fold, and the resulting occupancy — because
that occupancy is what determines the *mapping utilization* term of the
baseline performance model.  The temporal loop ordering inside a PE is not
modelled beyond MAC counting, which is the same level of abstraction the
paper's analytical comparisons rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..config import ArchitectureConfig
from ..errors import DataflowError
from ..nn.layers import ConvLayer, TransposedConvLayer
from ..nn.network import LayerBinding


@dataclass(frozen=True)
class RowStationaryMapping:
    """Result of mapping one (t)conv layer onto the PE array.

    Attributes
    ----------
    filter_rows:
        Height of the kernel (``R``): the height of one logical PE set.
    output_rows:
        Height of the output feature map (``E``): the width of one PE set
        before folding.
    set_height / set_width:
        Dimensions of one logical PE set after folding to fit the array.
    folds:
        Number of sequential passes needed because a full PE set does not fit
        the array at once.
    sets_per_pass:
        Number of logical PE sets processed concurrently (replication across
        output channels / input channels).
    occupancy:
        Fraction of physical PEs holding useful work during a pass.
    """

    filter_rows: int
    output_rows: int
    set_height: int
    set_width: int
    folds: int
    sets_per_pass: int
    occupancy: float

    def __post_init__(self) -> None:
        if self.set_height <= 0 or self.set_width <= 0:
            raise DataflowError("PE set dimensions must be positive")
        if not (0.0 < self.occupancy <= 1.0):
            raise DataflowError(f"occupancy must lie in (0, 1], got {self.occupancy}")


def spatial_rows_cols(binding: LayerBinding) -> Tuple[int, int, int, int]:
    """Extract (filter_rows, filter_cols, output_rows, output_cols).

    Rank-3 (voxel) layers fold their depth dimension into the output rows: the
    accelerator processes one depth slice after another, each slice being a
    2-D row-stationary problem, so the effective number of output rows is
    ``depth * height``.
    """
    layer = binding.layer
    if not isinstance(layer, (ConvLayer, TransposedConvLayer)):
        raise DataflowError(f"layer '{layer.name}' is not convolutional")
    kernel = layer.kernel
    out_spatial = binding.output_shape.spatial
    if layer.rank == 1:
        return kernel[0], 1, out_spatial[0], 1
    if layer.rank == 2:
        return kernel[0], kernel[1], out_spatial[0], out_spatial[1]
    if layer.rank == 3:
        return kernel[1], kernel[2], out_spatial[0] * out_spatial[1], out_spatial[2]
    raise DataflowError(f"unsupported rank {layer.rank} for layer '{layer.name}'")


def map_layer(binding: LayerBinding, config: ArchitectureConfig) -> RowStationaryMapping:
    """Map one convolutional layer binding onto the configured PE array."""
    filter_rows, _filter_cols, output_rows, _output_cols = spatial_rows_cols(binding)
    array_rows = config.num_pvs
    array_cols = config.pes_per_pv

    # Fold the PE-set height (filter rows) onto the array height.
    set_height = min(filter_rows, array_rows)
    height_folds = math.ceil(filter_rows / set_height)

    # Fold the PE-set width (output rows) onto the array width.
    set_width = min(output_rows, array_cols)
    width_folds = math.ceil(output_rows / set_width)

    # Replicate sets across the array when one set leaves idle PEs.
    sets_down = max(1, array_rows // set_height)
    sets_across = max(1, array_cols // set_width)
    sets_per_pass = sets_down * sets_across

    used_pes = sets_per_pass * set_height * set_width
    occupancy = min(1.0, used_pes / (array_rows * array_cols))

    return RowStationaryMapping(
        filter_rows=filter_rows,
        output_rows=output_rows,
        set_height=set_height,
        set_width=set_width,
        folds=height_folds * width_folds,
        sets_per_pass=sets_per_pass,
        occupancy=occupancy,
    )


def mapping_utilization(binding: LayerBinding, config: ArchitectureConfig) -> float:
    """Spatial mapping utilization of the RS dataflow for one layer.

    This is the fraction of PEs holding useful work, before accounting for
    inserted zeros; it bounds the throughput of both the baseline and (to
    first order) GANAX, which uses the same PE count.
    """
    return map_layer(binding, config).occupancy
