"""Command-line interface: regenerate the paper's tables and figures.

Installed as ``repro-experiments`` (see ``pyproject.toml``).  Examples::

    repro-experiments list                # list available experiments
    repro-experiments list-accelerators   # list registered accelerator models
    repro-experiments list-workloads      # list registered workloads + families
    repro-experiments list-schedules      # list registered µop schedules
    repro-experiments figure8             # regenerate Figure 8
    repro-experiments all                 # regenerate everything
    repro-experiments compare             # N-way comparison, all accelerators
    repro-experiments compare --accelerators eyeriss,ganax,ideal
    repro-experiments compare --workloads dcgan@64x64,synthetic@d8c256
    repro-experiments sweep --parameter num_pvs --values 4,8,16
    repro-experiments figure8 --json out.json
    repro-experiments all --parallel --cache-stats
    repro-experiments all --cache-dir .sim-cache   # warm-start reruns
    repro-experiments dse --accelerator ganax --strategy random --budget 8
    repro-experiments dse --workloads synthetic@d4c64,synthetic@d6c128z100
    repro-experiments dse --fields num_pvs,schedule  # geometry x schedule
    repro-experiments disasm --workload dcgan --layer tconv1 --schedule hoisted
    repro-experiments check --schedule colmajor@tile64
    repro-experiments cache-prune --cache-dir .sim-cache --max-bytes 10000000
    repro-experiments list-accelerators --json -   # machine-readable registry
    repro-experiments list-workloads --json -      # machine-readable registry
    repro-experiments all --progress               # live per-job progress
    repro-experiments compare --progress --jsonl - # stream results as JSONL
    repro-experiments sweep --parameter num_pvs --values 4,8 --jsonl run.jsonl
    repro-experiments compare --backend asyncio    # pick a runner backend
    repro-experiments serve --port 8642 --journal run.journal
    repro-experiments serve --journal run.journal --resume  # crash recovery
    repro-experiments remote-compare --port 8642 --workloads dcgan,artgan
    repro-experiments compare --trace trace.json   # Chrome trace (Perfetto)
    repro-experiments sweep --parameter num_pvs --values 4,8 --metrics m.json
    repro-experiments stats --port 8642            # telemetry of a service

Every simulation runs through one shared
:class:`~repro.runner.SimulationRunner`, so the whole invocation shares a
content-addressed result cache; ``--parallel`` swaps the serial backend for a
process pool (``--backend`` picks any registered backend: ``serial``,
``process-pool``, ``asyncio``) and ``--cache-dir`` persists results across
invocations.  The ``compare`` and ``sweep`` modes route through
:class:`repro.Session`, so any accelerator registered in
:mod:`repro.accelerators` is addressable via ``--accelerators`` and any
workload — including family spec strings like ``dcgan@32x32`` or
``synthetic@d8c256`` (see ``list-workloads``) — via ``--workloads``; the
``dse`` mode runs a :mod:`repro.dse` design-space search and reports the
Pareto frontier.

The runner's streaming API drives two live outputs: ``--progress`` prints a
per-job progress line to stderr the moment each simulation finishes (or is
answered from cache), and ``--jsonl PATH|-`` writes one machine-readable
JSON record per job *as it terminates* — ``completed``, ``cache-hit``,
``failed`` or ``cancelled`` (result fields are present only on the first
two; PATH is rewritten each run).  Both work with every backend, because
they subscribe to the runner's typed event stream rather than wrapping any
particular mode.

The ``serve`` mode hosts one shared runner as a long-running TCP service
(see :mod:`repro.service`): multiple clients stream batches through the
same content-addressed cache with per-client admission control, and
``--journal``/``--resume`` make sweeps crash-recoverable.  The
``remote-compare`` mode is the matching client: it submits the same
(workload x accelerator) grid as ``compare`` to a running service and
streams the results back.

Observability rides on :mod:`repro.telemetry`: ``--trace PATH`` records
hierarchical spans (batch -> job -> simulate_layers -> layer-memo) and
writes Chrome trace-event JSON — or JSONL when PATH ends in ``.jsonl`` —
after the run; ``--metrics PATH|-`` dumps the process metrics-registry
snapshot as JSON; ``--cache-stats`` reads its accounting from the same
registry; and the ``stats`` mode asks a running service for its live
telemetry over the wire.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import IO, List, Optional, Sequence, Tuple

from .accelerators.registry import accelerator_names, create_accelerator, get_accelerator
from .analysis.charts import frontier_chart, multi_comparison_chart
from .analysis.report import format_table
from .config import ArchitectureConfig, SimulationOptions
from .analysis.serialization import multi_comparison_rows
from .dse.engine import DesignSpaceExplorer
from .dse.strategies import get_strategy
from .errors import ReproError, UnknownAcceleratorError, UnknownWorkloadError
from .experiments.base import ExperimentContext
from .experiments.registry import experiment_ids, run_all, run_experiment
from .runner import (
    DiskResultCache,
    ProcessPoolBackend,
    RunnerEvent,
    SerialBackend,
    SimulationRunner,
    backend_names,
    configure_layer_memo,
    get_backend,
    get_layer_memo,
)
from .service import Client, SimulationServer
from .service.protocol import grid_specs
from .service.server import DEFAULT_PORT
from .session import Session
from .telemetry import configure_metrics, configure_tracing, get_metrics
from .workloads.registry import (
    describe_workload_families,
    describe_workloads,
    resolve_workload,
    workload_families,
    workload_names,
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the GANAX paper (ISCA 2018).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help=(
            "experiment id (e.g. figure8, table3), 'all', 'list', "
            "'list-accelerators', 'list-workloads', 'list-schedules', "
            "'compare' (N-way "
            "accelerator comparison), 'sweep' (one-parameter configuration "
            "sweep), 'dse' (design-space exploration), 'cache-prune', "
            "'serve' (host the simulation service), 'remote-compare' "
            "(run a comparison grid against a running service), 'stats' "
            "(query a running service for its telemetry snapshot), 'check' "
            "(statically verify compiled µop programs over a workload x "
            "accelerator grid), 'lint' (repo-invariant lints over the "
            "source tree), or 'disasm' (compile one layer and print its "
            "µop program)"
        ),
    )
    parser.add_argument(
        "--accelerators",
        metavar="NAMES",
        default=None,
        help=(
            "comma-separated registered accelerator names for "
            "'compare'/'sweep' (default: every registered accelerator)"
        ),
    )
    parser.add_argument(
        "--workloads",
        metavar="SPECS",
        default=None,
        help=(
            "comma-separated workload names or family spec strings (e.g. "
            "dcgan@64x64,synthetic@d8c256) for 'compare'/'sweep'/'dse' "
            "(default: every registered workload; see 'list-workloads')"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        default=None,
        help=(
            "baseline accelerator for 'compare'/'sweep'/'dse' ratios "
            "(default: eyeriss)"
        ),
    )
    parser.add_argument(
        "--parameter",
        metavar="FIELD",
        default=None,
        help="ArchitectureConfig field the 'sweep' mode varies",
    )
    parser.add_argument(
        "--values",
        metavar="VALUES",
        default=None,
        help="comma-separated values for the swept 'sweep' field",
    )
    parser.add_argument(
        "--accelerator",
        metavar="NAME",
        default=None,
        help="accelerator whose design space 'dse' explores (default: ganax)",
    )
    parser.add_argument(
        "--strategy",
        metavar="NAME",
        default=None,
        help="search strategy for 'dse': exhaustive, random or hillclimb",
    )
    parser.add_argument(
        "--budget",
        type=int,
        metavar="N",
        default=None,
        help="maximum design points 'dse' evaluates",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        default=None,
        help="random seed for the 'dse' random/hillclimb strategies (default 0)",
    )
    parser.add_argument(
        "--fields",
        metavar="NAMES",
        default=None,
        help=(
            "comma-separated axes spanning the 'dse' space: "
            "ArchitectureConfig fields plus the special 'schedule' axis "
            "(default: num_pvs,pes_per_pv,dram_bandwidth_bytes_per_cycle)"
        ),
    )
    parser.add_argument(
        "--schedule",
        metavar="SPEC",
        default=None,
        help=(
            "µop schedule spec string for 'check'/'disasm'/'compare'/'dse' "
            "(e.g. default, hoisted, colmajor@tile64; see 'list-schedules')"
        ),
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        default=None,
        help="size budget for 'cache-prune' (oldest entries evicted first)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the computed data as JSON to PATH",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered report (useful with --json)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="execute simulations on a process pool instead of serially",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help=(
            "execution backend by registered name "
            f"({', '.join(backend_names())}); overrides --parallel"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a live per-job progress line to stderr as results stream",
    )
    parser.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help=(
            "stream one JSON record per terminated job (completed/cache-hit/"
            "failed/cancelled) to PATH ('-' for stdout) for "
            "'compare'/'sweep'/'dse'; PATH is rewritten each run"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="worker processes (implies --parallel; default: one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persist simulation results in a content-addressed disk cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching (every job re-simulates)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss accounting after the run",
    )
    parser.add_argument(
        "--host",
        metavar="ADDR",
        default=None,
        help=(
            "service address for 'serve'/'remote-compare' "
            "(default: 127.0.0.1)"
        ),
    )
    parser.add_argument(
        "--port",
        type=int,
        metavar="N",
        default=None,
        help=(
            "service TCP port for 'serve'/'remote-compare' "
            f"(default: {DEFAULT_PORT}; 0 binds an ephemeral port)"
        ),
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="'serve' writes its bound port to PATH (for scripted clients)",
    )
    parser.add_argument(
        "--quota",
        type=int,
        metavar="N",
        default=None,
        help="'serve' per-client in-flight job quota",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        metavar="N",
        default=None,
        help="'serve' server-wide in-flight job bound",
    )
    parser.add_argument(
        "--max-active",
        type=int,
        metavar="N",
        default=None,
        help="'serve' batches concurrently dispatched to the shared runner",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="'serve' journals terminal job events to PATH (JSONL, fsync'd)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        default=None,
        help=(
            "'serve' replays the --journal into the result cache at startup "
            "so a restarted sweep re-runs only missing jobs"
        ),
    )
    parser.add_argument(
        "--client-id",
        metavar="ID",
        default=None,
        help="client identity 'remote-compare' announces to the service",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record tracing spans for 'compare'/'sweep'/'dse' and write "
            "Chrome trace-event JSON to PATH after the run (open in "
            "Perfetto); a PATH ending in .jsonl gets one span per line"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "write the metrics-registry snapshot (counters/gauges/"
            "histograms) as JSON to PATH ('-' for stdout) after "
            "'compare'/'sweep'/'dse'"
        ),
    )
    parser.add_argument(
        "--workload",
        metavar="NAME",
        default=None,
        help="workload whose layer 'disasm' compiles (e.g. dcgan)",
    )
    parser.add_argument(
        "--layer",
        metavar="NAME",
        default=None,
        help=(
            "layer name for 'disasm' (exact) or 'check' (substring filter "
            "over binding names)"
        ),
    )
    parser.add_argument(
        "--max-columns",
        type=int,
        metavar="N",
        default=None,
        help=(
            "output columns compiled per wave for 'check'/'disasm' "
            "(default: 8 for check, 4 for disasm — the golden-test tile)"
        ),
    )
    parser.add_argument(
        "--max-waves",
        type=int,
        metavar="N",
        default=None,
        help="waves compiled per layer for 'check'/'disasm' (default: 1)",
    )
    parser.add_argument(
        "--no-skip-zeros",
        action="store_true",
        default=None,
        help=(
            "'disasm' compiles the dense (EYERISS-style) lowering instead "
            "of the zero-skipping GANAX one; 'check' always verifies both"
        ),
    )
    parser.add_argument(
        "--paths",
        metavar="PATHS",
        default=None,
        help=(
            "comma-separated files/directories 'lint' scans "
            "(default: the installed repro package source)"
        ),
    )
    return parser


def parse_accelerator_list(spec: Optional[str]) -> Optional[Tuple[str, ...]]:
    """Parse a comma-separated ``--accelerators`` value into registry names.

    Unknown (or empty) specs raise
    :class:`~repro.errors.UnknownAcceleratorError`, whose message lists every
    registered name.
    """
    if spec is None:
        return None
    names = tuple(token.strip() for token in spec.split(",") if token.strip())
    if not names:
        raise UnknownAcceleratorError(spec, accelerator_names())
    return tuple(get_accelerator(name).name for name in names)


def parse_workload_list(spec: Optional[str]) -> Optional[Tuple[str, ...]]:
    """Parse a comma-separated ``--workloads`` value into canonical specs.

    Entries may be registered names, aliases, or family spec strings
    (``dcgan@32x32``); family arguments are NOT comma-separable here, so use
    the compact grammar (``synthetic@d8c256``).  Unknown (or empty) values
    raise :class:`~repro.errors.UnknownWorkloadError`, whose message lists
    every registered workload and family.
    """
    if spec is None:
        return None
    names = tuple(token.strip() for token in spec.split(",") if token.strip())
    if not names:
        raise UnknownWorkloadError(spec, workload_names(), workload_families())
    return tuple(resolve_workload(name).name for name in names)


def parse_value_list(spec: str) -> Tuple[object, ...]:
    """Parse ``--values``: each comma-separated token as int, float or str."""
    values: List[object] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        for parse in (int, float):
            try:
                values.append(parse(token))
                break
            except ValueError:
                continue
        else:
            values.append(token)
    if not values:
        raise ReproError(f"--values '{spec}' contains no values")
    return tuple(values)


def build_runner(args: argparse.Namespace) -> SimulationRunner:
    """Construct the runner the CLI's experiments submit through."""
    if args.workers is not None and args.workers <= 0:
        raise ValueError("--workers must be a positive integer")
    if args.backend is not None:
        backend = get_backend(args.backend, max_workers=args.workers)
    elif args.parallel or args.workers is not None:
        backend = ProcessPoolBackend(max_workers=args.workers)
    else:
        backend = SerialBackend()
    if args.no_cache:
        # --no-cache disables every caching tier, including the layer memo
        # (propagated to pool workers through the environment).
        configure_layer_memo(enabled=False)
        return SimulationRunner(backend=backend, use_cache=False)
    if args.cache_dir:
        # Persist the layer-grain memo beside the job-level entries so warm
        # layers also survive restarts: <cache-dir>/layers/<fp[:2]>/<fp>.pkl.
        configure_layer_memo(root=os.path.join(args.cache_dir, "layers"))
    else:
        configure_layer_memo()
    cache = DiskResultCache(args.cache_dir) if args.cache_dir else None
    return SimulationRunner(backend=backend, cache=cache)


def _owns_stdout(args: argparse.Namespace) -> bool:
    """Whether a machine-readable stream claimed stdout (implies quiet text)."""
    return args.json == "-" or args.jsonl == "-" or args.metrics == "-"


class _ProgressPrinter:
    """Live per-job progress on stderr, driven by the runner's event stream.

    Alongside the per-job lines, a ``metrics:`` summary line (cache hit
    counts, job-latency p50) is printed at most every ``metrics_interval``
    seconds — long sweeps get a periodic pulse without per-job noise.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        metrics_interval: float = 5.0,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self._scheduled = 0
        self._finished = 0
        self._metrics_interval = metrics_interval
        self._last_metrics = time.monotonic()

    def __call__(self, event: RunnerEvent) -> None:
        with self._lock:
            if event.kind == "scheduled":
                self._scheduled += 1
                return
            if not event.is_terminal:
                return
            self._finished += 1
            detail = event.provenance or event.kind
            if event.kind == "failed":
                detail = f"failed: {event.error}"
            print(
                f"[{self._finished}/{self._scheduled}] "
                f"{event.job.model_name} on {event.job.accelerator}: {detail}",
                file=self._stream,
                flush=True,
            )
            now = time.monotonic()
            if (
                self._metrics_interval > 0
                and now - self._last_metrics >= self._metrics_interval
            ):
                self._last_metrics = now
                self._print_metrics_line()

    def _print_metrics_line(self) -> None:
        registry = get_metrics()
        if registry is None:
            return
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        parts = [
            f"metrics: {self._finished}/{self._scheduled} done",
            f"cache {counters.get('runner.cache.hits', 0)} hits"
            f"/{counters.get('runner.cache.misses', 0)} misses",
        ]
        latency = snapshot["histograms"].get("runner.job.latency_seconds")
        if latency and latency.get("count"):
            parts.append(f"job p50 {latency['p50'] * 1000:.0f} ms")
        print(", ".join(parts), file=self._stream, flush=True)


class _JsonlWriter:
    """One JSON record per terminal job event, streamed as results land.

    Subscribed to the runner, so every mode that routes jobs through the
    shared runner streams records without knowing about the flag; records
    use :meth:`repro.runner.RunnerEvent.describe` (machine-readable entries
    in the same spirit as ``list-accelerators --json``).
    """

    def __init__(self, destination: str) -> None:
        self._owns_handle = destination != "-"
        self._handle: IO[str] = (
            open(destination, "w", encoding="utf-8")
            if self._owns_handle
            else sys.stdout
        )
        self._lock = threading.Lock()

    def __call__(self, event: RunnerEvent) -> None:
        if not event.is_terminal:
            return
        line = json.dumps(event.describe(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()


def _hit_rate(hits: int, misses: int) -> float:
    lookups = hits + misses
    return hits / lookups if lookups else 0.0


def _print_cache_stats(runner: SimulationRunner, args: argparse.Namespace) -> None:
    # The accounting is read from the metrics registry (the same numbers every
    # other telemetry surface reports); runner.stats / memo.stats remain the
    # fallback when metrics are disabled.  Output format is pinned by
    # tests/test_cli.py — keep it byte-stable.
    registry = get_metrics()
    if registry is not None:
        counters = registry.snapshot()["counters"]
        hits = counters.get("runner.cache.hits", 0)
        misses = counters.get("runner.cache.misses", 0)
        deduplicated = counters.get("runner.cache.deduplicated", 0)
    else:
        stats = runner.stats
        hits, misses = stats.hits, stats.misses
        deduplicated = stats.deduplicated
    # with '--json -' / '--jsonl -' stdout is the machine-readable payload,
    # so the accounting line goes to stderr instead of corrupting it
    stream = sys.stderr if _owns_stdout(args) else sys.stdout
    print(
        "cache: "
        f"{hits} hits, {misses} misses, "
        f"{deduplicated} deduplicated "
        f"(hit rate {100 * _hit_rate(hits, misses):.1f}%)",
        file=stream,
    )
    memo = get_layer_memo()
    if memo is not None:
        if registry is not None:
            counters = registry.snapshot()["counters"]
            layer_hits = counters.get("runner.layer_memo.hits", 0)
            layer_misses = counters.get("runner.layer_memo.misses", 0)
        else:
            layer_hits, layer_misses = memo.stats.hits, memo.stats.misses
        print(
            "layer memo: "
            f"{layer_hits} hits, {layer_misses} misses "
            f"(hit rate {100 * _hit_rate(layer_hits, layer_misses):.1f}%, "
            f"{len(memo)} resident entries)",
            file=stream,
        )


def _export_telemetry(args: argparse.Namespace, tracer) -> None:
    """Write the --trace and --metrics artifacts after a streaming-mode run."""
    if tracer is not None and args.trace:
        tracer.export(args.trace)
        if not args.quiet:
            kind = "span JSONL" if args.trace.endswith(".jsonl") else (
                "Chrome trace-event JSON (open in Perfetto: "
                "https://ui.perfetto.dev)"
            )
            print(f"wrote {kind} to {args.trace}", file=sys.stderr)
    if args.metrics:
        registry = get_metrics()
        snapshot = registry.snapshot() if registry is not None else {}
        if args.metrics == "-":
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
            if not args.quiet:
                print(f"wrote metrics snapshot to {args.metrics}", file=sys.stderr)


def _write_json(payload: dict, destination: str, quiet: bool) -> None:
    """Write a JSON payload to a file, or to stdout when destination is '-'."""
    if destination == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    if not quiet:
        print(f"wrote JSON results to {destination}")


def _list_accelerators(args: argparse.Namespace) -> int:
    """The ``list-accelerators`` mode: plain text, or machine-readable JSON."""
    if args.json:
        # config_space() is an instance method, so the JSON listing has to
        # instantiate each model; the text listing stays metadata-only
        entries = [
            {
                **get_accelerator(name).describe(),
                "config_space": list(create_accelerator(name).config_space()),
            }
            for name in accelerator_names()
        ]
        _write_json({"accelerators": entries}, args.json, args.quiet)
    else:
        for name in accelerator_names():
            spec = get_accelerator(name)
            print(f"{spec.name}  (v{spec.version})  {spec.description}")
    return 0


def _list_workloads(args: argparse.Namespace) -> int:
    """The ``list-workloads`` mode: plain text, or machine-readable JSON."""
    if args.json:
        payload = {
            "workloads": describe_workloads(),
            "families": describe_workload_families(),
        }
        _write_json(payload, args.json, args.quiet)
    else:
        for entry in describe_workloads():
            print(
                f"{entry['name']}  ({entry['family']}, v{entry['version']})  "
                f"{entry['description']}"
            )
        print()
        print("families (usable as '<family>@<args>'):")
        for entry in describe_workload_families():
            print(f"{entry['grammar']}  (v{entry['version']})  {entry['description']}")
    return 0


def _list_schedules(args: argparse.Namespace) -> int:
    """The ``list-schedules`` mode: plain text, or machine-readable JSON."""
    from .schedule import describe_schedules

    catalog = describe_schedules()
    if args.json:
        _write_json(catalog, args.json, args.quiet)
    else:
        for entry in catalog["schedules"]:
            print(
                f"{entry['name']}  [{entry['fingerprint'][:12]}]  "
                f"{entry['description']}"
            )
        print()
        print("families (usable as '<family>@<args>'):")
        for entry in catalog["families"]:
            print(f"{entry['grammar']}  {entry['description']}")
    return 0


def _run_cache_prune(args: argparse.Namespace) -> int:
    """The ``cache-prune`` mode: evict oldest disk-cache entries to a budget."""
    if not args.cache_dir:
        print("error: cache-prune requires --cache-dir", file=sys.stderr)
        return 2
    if args.max_bytes is None:
        print("error: cache-prune requires --max-bytes", file=sys.stderr)
        return 2
    try:
        stats = DiskResultCache(args.cache_dir).prune(max_bytes=args.max_bytes)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet and not _owns_stdout(args):
        print(
            f"pruned {stats.removed_entries} entries "
            f"({stats.removed_bytes} bytes); "
            f"{stats.remaining_entries} entries "
            f"({stats.remaining_bytes} bytes) remain"
        )
    if args.json:
        _write_json({"cache_prune": stats.as_dict()}, args.json, args.quiet)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` mode: host the simulation service until interrupted."""
    import signal

    # The service's natural host is the event-driven backend; --backend /
    # --parallel / --workers still override it the usual way.
    if args.backend is None and not args.parallel and args.workers is None:
        args.backend = "asyncio"
    try:
        runner = build_runner(args)
    except Exception as exc:  # bad --workers / --backend / --cache-dir
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.progress:
        runner.subscribe(_ProgressPrinter())
    try:
        server = SimulationServer(
            host=args.host or "127.0.0.1",
            port=args.port if args.port is not None else DEFAULT_PORT,
            runner=runner,
            quota=args.quota if args.quota is not None else 64,
            queue_limit=args.queue_limit if args.queue_limit is not None else 1024,
            max_active_requests=args.max_active if args.max_active is not None else 4,
            journal_path=args.journal,
            resume=bool(args.resume),
        )
        server.start_in_thread()
    except (ReproError, OSError) as exc:  # bad knobs, port in use, bad journal
        print(f"error: {exc}", file=sys.stderr)
        runner.close()
        return 2
    # Operational chatter goes to stderr so scripts can own stdout.
    if server.restored_entries:
        print(
            f"resumed {server.restored_entries} journaled results into the cache",
            file=sys.stderr,
        )
    print(
        f"serving on {server.host}:{server.port} "
        f"(quota={server.admission.quota}, "
        f"queue-limit={server.admission.queue_limit}); Ctrl-C stops",
        file=sys.stderr,
    )
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{server.port}\n")
    stop = threading.Event()

    def _request_stop(_signum: int, _frame: object) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except ValueError:  # not the main thread (e.g. under a test harness)
            pass
    try:
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        print("draining in-flight jobs...", file=sys.stderr)
        server.shutdown()
        runner.close()
    print("server stopped", file=sys.stderr)
    return 0


def _run_remote_compare(args: argparse.Namespace) -> int:
    """The ``remote-compare`` mode: the comparison grid, via a running service."""
    try:
        accelerators = parse_accelerator_list(args.accelerators) or accelerator_names()
        workloads = parse_workload_list(args.workloads) or workload_names()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    specs = grid_specs(workloads, accelerators)
    jsonl_handle: Optional[IO[str]] = None
    if args.jsonl:
        try:
            jsonl_handle = (
                sys.stdout
                if args.jsonl == "-"
                else open(args.jsonl, "w", encoding="utf-8")
            )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    records = []
    try:
        with Client(
            host=args.host or "127.0.0.1",
            port=args.port if args.port is not None else DEFAULT_PORT,
            client_id=args.client_id,
        ) as client:
            for record in client.submit(specs):
                records.append(record)
                if jsonl_handle is not None:
                    jsonl_handle.write(json.dumps(record, sort_keys=True) + "\n")
                    jsonl_handle.flush()
                if not args.quiet and not _owns_stdout(args):
                    detail = record.get("provenance") or record.get("event")
                    if record.get("event") == "failed":
                        detail = f"failed: {record.get('error')}"
                    print(
                        f"[{len(records)}/{len(specs)}] "
                        f"{record.get('model')} on {record.get('accelerator')}: "
                        f"{detail}"
                    )
            counts = client.last_counts or {}
        if not args.quiet and not _owns_stdout(args):
            summary = ", ".join(
                f"{kind}={counts[kind]}" for kind in sorted(counts) if counts[kind]
            )
            print(f"done ({summary or 'no jobs'})")
        if args.json:
            _write_json(
                {"remote_compare": {"counts": counts, "records": records}},
                args.json,
                args.quiet,
            )
        return 1 if counts.get("failed") else 0
    except (ReproError, OSError) as exc:  # rejected, unreachable, protocol
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if jsonl_handle is not None and jsonl_handle is not sys.stdout:
            jsonl_handle.close()


def _run_stats(args: argparse.Namespace) -> int:
    """The ``stats`` mode: a running service's telemetry snapshot, over the wire."""
    try:
        with Client(
            host=args.host or "127.0.0.1",
            port=args.port if args.port is not None else DEFAULT_PORT,
        ) as client:
            payload = client.stats()
    except (ReproError, OSError) as exc:  # unreachable, old server, shutdown
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet and not _owns_stdout(args):
        print(
            f"server {payload.get('server', '?')}: "
            f"up {payload.get('uptime_seconds', 0.0):.1f}s, "
            f"{payload.get('requests_done', 0)} requests done, "
            f"{payload.get('jobs_done', 0)} jobs done"
        )
        print(
            f"queue depth {payload.get('queue_depth', 0)}, "
            f"{payload.get('active_requests', 0)} active requests, "
            f"{payload.get('connections', 0)} connections"
        )
        cache = payload.get("cache") or {}
        print(
            f"cache: {cache.get('hits', 0)} hits, {cache.get('misses', 0)} misses, "
            f"{cache.get('deduplicated', 0)} deduplicated "
            f"(hit rate {100 * cache.get('hit_rate', 0.0):.1f}%)"
        )
        memo = payload.get("layer_memo")
        if memo:
            print(
                f"layer memo: {memo.get('hits', 0)} hits, "
                f"{memo.get('misses', 0)} misses "
                f"(hit rate {100 * memo.get('hit_rate', 0.0):.1f}%)"
            )
        metrics = payload.get("metrics") or {}
        latency = metrics.get("histograms", {}).get("service.request_latency_seconds")
        if latency and latency.get("count"):
            print(
                f"request latency: p50 {latency['p50'] * 1000:.1f} ms, "
                f"p90 {latency['p90'] * 1000:.1f} ms, "
                f"p99 {latency['p99'] * 1000:.1f} ms "
                f"({latency['count']} requests)"
            )
    if args.json:
        _write_json({"stats": payload}, args.json, args.quiet)
    return 0


def _run_check(args: argparse.Namespace) -> int:
    """The ``check`` mode: statically verify compiled µop programs.

    Compiles every compilable layer of the requested workloads in both
    ``skip_zeros`` modes and runs the full verifier catalog; exits non-zero
    if any error-severity finding survives.
    """
    from .staticcheck import Severity, run_check_grid

    workloads = parse_workload_list(args.workloads)
    accelerators = (
        [token.strip() for token in args.accelerators.split(",") if token.strip()]
        if args.accelerators
        else ["eyeriss", "ganax"]
    )
    try:
        report = run_check_grid(
            workloads,
            accelerators,
            max_waves=args.max_waves if args.max_waves is not None else 1,
            max_columns=args.max_columns if args.max_columns is not None else 8,
            layer=args.layer,
            schedule=args.schedule,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet and not _owns_stdout(args):
        for entry in report.entries:
            for finding in entry.findings:
                mode = "skip" if entry.skip_zeros else "dense"
                print(
                    f"{entry.workload}/{entry.layer} [{entry.accelerator}, "
                    f"{mode}] {finding}"
                )
        errors = sum(
            1 for f in report.findings if f.severity is Severity.ERROR
        )
        warnings = len(report.findings) - errors
        print(
            f"checked {report.programs} programs across {len(report.entries)} "
            f"cells: {errors} errors, {warnings} warnings"
        )
    if args.json:
        _write_json({"check": report.describe()}, args.json, args.quiet)
    return 0 if report.ok else 1


def _run_lint(args: argparse.Namespace) -> int:
    """The ``lint`` mode: repo-invariant AST lints over the source tree."""
    from pathlib import Path

    from .staticcheck import run_lints

    if args.paths:
        paths = [Path(token.strip()) for token in args.paths.split(",") if token.strip()]
    else:
        paths = [Path(__file__).parent]
    try:
        findings = run_lints(paths)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet and not _owns_stdout(args):
        for finding in findings:
            print(str(finding))
        scanned = ", ".join(str(path) for path in paths)
        print(f"linted {scanned}: {len(findings)} finding(s)")
    if args.json:
        payload = {
            "ok": not findings,
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "check_id": f.check_id,
                    "message": f.message,
                }
                for f in findings
            ],
        }
        _write_json({"lint": payload}, args.json, args.quiet)
    return 0 if not findings else 1


def _run_disasm(args: argparse.Namespace) -> int:
    """The ``disasm`` mode: compile one layer and print its µop program(s)."""
    from .core.compiler import compile_layer_programs
    from .staticcheck import iter_compilable_bindings
    from .workloads.registry import get_workload

    if not args.workload or not args.layer:
        print("error: disasm requires --workload and --layer", file=sys.stderr)
        return 2
    try:
        model = get_workload(args.workload)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    bindings = {b.name: b for _, b in iter_compilable_bindings(model)}
    binding = bindings.get(args.layer)
    if binding is None:
        print(
            f"error: no compilable layer '{args.layer}' in {model.name} "
            f"(available: {', '.join(sorted(bindings))})",
            file=sys.stderr,
        )
        return 2
    config = ArchitectureConfig.paper_default()
    try:
        programs = compile_layer_programs(
            binding,
            num_pvs=config.num_pvs,
            pes_per_pv=config.pes_per_pv,
            skip_zeros=not args.no_skip_zeros,
            max_waves=args.max_waves if args.max_waves is not None else 1,
            max_columns=args.max_columns if args.max_columns is not None else 4,
            schedule=args.schedule,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet and not _owns_stdout(args):
        for index, program in enumerate(programs):
            if index:
                print()  # blank line between waves
            print(program.disassemble(), end="")
    if args.json:
        from .schedule import canonical_schedule_name

        payload = {
            "workload": model.name,
            "layer": binding.name,
            "skip_zeros": not args.no_skip_zeros,
            "schedule": canonical_schedule_name(args.schedule or "default"),
            "programs": [program.uop_records() for program in programs],
        }
        _write_json({"disasm": payload}, args.json, args.quiet)
    return 0


def _run_dse(args: argparse.Namespace, runner: SimulationRunner) -> int:
    """The ``dse`` mode: search one accelerator's design space, report the frontier."""
    try:
        options = None
        if args.schedule is not None:
            options = SimulationOptions(schedule=args.schedule)
        explorer = DesignSpaceExplorer(
            accelerator=args.accelerator or "ganax",
            baseline=args.baseline or "eyeriss",
            models=parse_workload_list(args.workloads),
            options=options,
            runner=runner,
        )
        fields = None
        if args.fields is not None:
            fields = tuple(
                token.strip() for token in args.fields.split(",") if token.strip()
            )
        space = explorer.space(fields=fields)
        strategy = get_strategy(
            args.strategy or "exhaustive",
            seed=args.seed if args.seed is not None else 0,
        )
        result = explorer.explore(space=space, strategy=strategy, budget=args.budget)

        # with '--json -' / '--jsonl -' stdout *is* the payload; the text
        # report would corrupt it, so it is implied-quiet in that case
        if not args.quiet and not _owns_stdout(args):
            print(result.report())
            print()
            print(frontier_chart("Pareto frontier (first objective)", result.frontier))
        if args.json:
            _write_json({"dse": result.summary()}, args.json, args.quiet)
        if args.cache_stats:
            _print_cache_stats(runner, args)
    except ReproError as exc:  # unknown accelerator/strategy/field, bad budget
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        runner.close()
    return 0


def _run_compare(args: argparse.Namespace, runner: SimulationRunner) -> int:
    """The ``compare`` mode: N workloads across N registered accelerators."""
    try:
        accelerators = parse_accelerator_list(args.accelerators) or accelerator_names()
        workloads = parse_workload_list(args.workloads)
        options = None
        if args.schedule is not None:
            options = SimulationOptions(schedule=args.schedule)
        session = Session(
            accelerators=accelerators,
            baseline=args.baseline,
            options=options,
            runner=runner,
        )
        comparisons = session.compare(workloads)

        if not args.quiet and not _owns_stdout(args):
            rows = [
                [
                    row["model"],
                    row["accelerator"],
                    row["speedup"],
                    row["energy_reduction"],
                    row["pe_utilization"],
                ]
                for row in multi_comparison_rows(comparisons)
            ]
            print(
                format_table(
                    [
                        "Model",
                        "Accelerator",
                        f"Speedup vs {session.baseline}",
                        "Energy reduction",
                        "PE utilization",
                    ],
                    rows,
                    title="N-way accelerator comparison (generator)",
                    float_format="{:.2f}",
                )
            )
            # The chart only has bars for non-baseline accelerators, so a
            # baseline-only comparison keeps its (valid) table-only output.
            if any(name != session.baseline for name in session.accelerators):
                print()
                print(
                    multi_comparison_chart(
                        f"Generator speedup vs {session.baseline}", comparisons
                    )
                )

        if args.json:
            payload = {
                "compare": {
                    "baseline": session.baseline,
                    "accelerators": list(session.accelerators),
                    "models": {
                        name: comparison.summary()
                        for name, comparison in comparisons.items()
                    },
                }
            }
            _write_json(payload, args.json, args.quiet)

        if args.cache_stats:
            _print_cache_stats(runner, args)
    except ReproError as exc:  # e.g. unknown --accelerators / --workloads
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        runner.close()
    return 0


def _run_sweep(args: argparse.Namespace, runner: SimulationRunner) -> int:
    """The ``sweep`` mode: one configuration field across the session grid."""
    try:
        if not args.parameter:
            raise ReproError("sweep requires --parameter")
        if not args.values:
            raise ReproError("sweep requires --values")
        known_fields = sorted(ArchitectureConfig.paper_default().to_mapping())
        if args.parameter not in known_fields:
            raise ReproError(
                f"unknown ArchitectureConfig field '{args.parameter}'; "
                f"known fields: {', '.join(known_fields)}"
            )
        values = parse_value_list(args.values)
        accelerators = parse_accelerator_list(args.accelerators) or accelerator_names()
        workloads = parse_workload_list(args.workloads)
        session = Session(
            accelerators=accelerators, baseline=args.baseline, runner=runner
        )
        grid = session.sweep(args.parameter, values, models=workloads)

        if not args.quiet and not _owns_stdout(args):
            rows = []
            for label, comparisons in grid.items():
                for row in multi_comparison_rows(comparisons):
                    rows.append(
                        [
                            label,
                            row["model"],
                            row["accelerator"],
                            row["speedup"],
                            row["energy_reduction"],
                        ]
                    )
            print(
                format_table(
                    [
                        "Point",
                        "Model",
                        "Accelerator",
                        f"Speedup vs {session.baseline}",
                        "Energy reduction",
                    ],
                    rows,
                    title=f"Sweep of {args.parameter} (generator)",
                    float_format="{:.2f}",
                )
            )

        if args.json:
            payload = {
                "sweep": {
                    "parameter": args.parameter,
                    "values": list(values),
                    "baseline": session.baseline,
                    "accelerators": list(session.accelerators),
                    "points": {
                        label: {
                            name: comparison.summary()
                            for name, comparison in comparisons.items()
                        }
                        for label, comparisons in grid.items()
                    },
                }
            }
            _write_json(payload, args.json, args.quiet)

        if args.cache_stats:
            _print_cache_stats(runner, args)
    except ReproError as exc:  # unknown field/value/workload/accelerator
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        runner.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    # Mode-specific flags are rejected elsewhere: a silently ignored selection
    # would report numbers for a run the user did not ask for.
    flag_gates = (
        ("--accelerators", args.accelerators, {"compare", "sweep", "remote-compare", "check"}),
        ("--workloads", args.workloads, {"compare", "sweep", "dse", "remote-compare", "check"}),
        ("--baseline", args.baseline, {"compare", "sweep", "dse"}),
        ("--parameter", args.parameter, {"sweep"}),
        ("--values", args.values, {"sweep"}),
        ("--accelerator", args.accelerator, {"dse"}),
        ("--strategy", args.strategy, {"dse"}),
        ("--budget", args.budget, {"dse"}),
        ("--seed", args.seed, {"dse"}),
        ("--fields", args.fields, {"dse"}),
        ("--max-bytes", args.max_bytes, {"cache-prune"}),
        ("--jsonl", args.jsonl, {"compare", "sweep", "dse", "remote-compare"}),
        ("--host", args.host, {"serve", "remote-compare", "stats"}),
        ("--port", args.port, {"serve", "remote-compare", "stats"}),
        ("--port-file", args.port_file, {"serve"}),
        ("--quota", args.quota, {"serve"}),
        ("--queue-limit", args.queue_limit, {"serve"}),
        ("--max-active", args.max_active, {"serve"}),
        ("--journal", args.journal, {"serve"}),
        ("--resume", args.resume, {"serve"}),
        ("--client-id", args.client_id, {"remote-compare"}),
        ("--trace", args.trace, {"compare", "sweep", "dse"}),
        ("--metrics", args.metrics, {"compare", "sweep", "dse"}),
        ("--workload", args.workload, {"disasm"}),
        ("--layer", args.layer, {"check", "disasm"}),
        ("--max-columns", args.max_columns, {"check", "disasm"}),
        ("--max-waves", args.max_waves, {"check", "disasm"}),
        ("--no-skip-zeros", args.no_skip_zeros, {"disasm"}),
        ("--schedule", args.schedule, {"check", "disasm", "compare", "dse"}),
        ("--paths", args.paths, {"lint"}),
    )
    for flag, value, modes in flag_gates:
        if value is not None and args.experiment not in modes:
            print(
                f"error: {flag} only applies to the "
                f"{'/'.join(sorted(repr(m) for m in modes))} mode",
                file=sys.stderr,
            )
            return 2

    stdout_claims = [
        flag
        for flag, value in (
            ("--json", args.json),
            ("--jsonl", args.jsonl),
            ("--metrics", args.metrics),
        )
        if value == "-"
    ]
    if len(stdout_claims) > 1:
        # the streams would interleave on stdout, corrupting each other
        print(
            f"error: {' - and '.join(stdout_claims)} - both claim stdout; "
            "write at least one of them to a file",
            file=sys.stderr,
        )
        return 2

    if args.experiment == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0

    if args.experiment == "list-accelerators":
        return _list_accelerators(args)

    if args.experiment == "list-workloads":
        return _list_workloads(args)

    if args.experiment == "list-schedules":
        return _list_schedules(args)

    if args.experiment == "cache-prune":
        return _run_cache_prune(args)

    if args.experiment == "serve":
        return _run_serve(args)

    if args.experiment == "remote-compare":
        return _run_remote_compare(args)

    if args.experiment == "stats":
        return _run_stats(args)

    if args.experiment == "check":
        return _run_check(args)

    if args.experiment == "lint":
        return _run_lint(args)

    if args.experiment == "disasm":
        return _run_disasm(args)

    # Each invocation starts its telemetry from zero: a fresh metrics
    # registry (metrics are on by default), and — only with --trace — a
    # fresh tracer (tracing is off by default; spans cost allocations).
    configure_metrics()
    tracer = configure_tracing() if args.trace else None

    try:
        runner = build_runner(args)
    except Exception as exc:  # bad --workers / --backend / --cache-dir
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Live consumers of the runner's event stream: every job any mode
    # submits reports the moment it terminates, whatever the backend.
    if args.progress:
        runner.subscribe(_ProgressPrinter())
    jsonl_writer: Optional[_JsonlWriter] = None
    if args.jsonl:
        try:
            jsonl_writer = _JsonlWriter(args.jsonl)
        except OSError as exc:  # unwritable --jsonl destination
            print(f"error: {exc}", file=sys.stderr)
            return 2
        runner.subscribe(jsonl_writer)

    try:
        code: Optional[int] = None
        if args.experiment == "compare":
            code = _run_compare(args, runner)
        elif args.experiment == "sweep":
            code = _run_sweep(args, runner)
        elif args.experiment == "dse":
            code = _run_dse(args, runner)
        if code is not None:
            _export_telemetry(args, tracer)
            return code
    finally:
        if jsonl_writer is not None:
            jsonl_writer.close()
        if tracer is not None:
            # don't leave the process-global tracer collecting spans after
            # the invocation it was asked for
            configure_tracing(enabled=False)

    context = ExperimentContext(runner=runner)
    try:
        if args.experiment == "all":
            results = run_all(context)
        else:
            try:
                results = [run_experiment(args.experiment, context)]
            except Exception as exc:  # surfaced as a clean CLI error
                print(f"error: {exc}", file=sys.stderr)
                return 2

        if not args.quiet and not _owns_stdout(args):
            for result in results:
                print(result.report)
                print()

        if args.json:
            payload = {
                result.experiment_id: {
                    "title": result.title,
                    "data": result.data,
                    "paper_reference": result.paper_reference,
                }
                for result in results
            }
            _write_json(payload, args.json, args.quiet)

        if args.cache_stats:
            _print_cache_stats(runner, args)
    finally:
        runner.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
