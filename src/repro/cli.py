"""Command-line interface: regenerate the paper's tables and figures.

Installed as ``repro-experiments`` (see ``pyproject.toml``).  Examples::

    repro-experiments list                # list available experiments
    repro-experiments list-accelerators   # list registered accelerator models
    repro-experiments figure8             # regenerate Figure 8
    repro-experiments all                 # regenerate everything
    repro-experiments compare             # N-way comparison, all accelerators
    repro-experiments compare --accelerators eyeriss,ganax,ideal
    repro-experiments figure8 --json out.json
    repro-experiments all --parallel --cache-stats
    repro-experiments all --cache-dir .sim-cache   # warm-start reruns

Every simulation runs through one shared
:class:`~repro.runner.SimulationRunner`, so the whole invocation shares a
content-addressed result cache; ``--parallel`` swaps the serial backend for a
process pool and ``--cache-dir`` persists results across invocations.  The
``compare`` mode routes through :class:`repro.Session`, so any accelerator
registered in :mod:`repro.accelerators` is addressable via ``--accelerators``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from .accelerators.registry import accelerator_names, get_accelerator
from .analysis.report import format_table
from .analysis.serialization import multi_comparison_rows
from .errors import ReproError, UnknownAcceleratorError
from .experiments.base import ExperimentContext
from .experiments.registry import experiment_ids, run_all, run_experiment
from .runner import (
    DiskResultCache,
    ProcessPoolBackend,
    SerialBackend,
    SimulationRunner,
)
from .session import Session


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the GANAX paper (ISCA 2018).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help=(
            "experiment id (e.g. figure8, table3), 'all', 'list', "
            "'list-accelerators', or 'compare' (N-way accelerator comparison)"
        ),
    )
    parser.add_argument(
        "--accelerators",
        metavar="NAMES",
        default=None,
        help=(
            "comma-separated registered accelerator names for 'compare' "
            "(default: every registered accelerator)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        default=None,
        help="baseline accelerator for 'compare' ratios (default: eyeriss)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the computed data as JSON to PATH",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered report (useful with --json)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="execute simulations on a process pool instead of serially",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="worker processes (implies --parallel; default: one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persist simulation results in a content-addressed disk cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching (every job re-simulates)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss accounting after the run",
    )
    return parser


def parse_accelerator_list(spec: Optional[str]) -> Optional[Tuple[str, ...]]:
    """Parse a comma-separated ``--accelerators`` value into registry names.

    Unknown (or empty) specs raise
    :class:`~repro.errors.UnknownAcceleratorError`, whose message lists every
    registered name.
    """
    if spec is None:
        return None
    names = tuple(token.strip() for token in spec.split(",") if token.strip())
    if not names:
        raise UnknownAcceleratorError(spec, accelerator_names())
    return tuple(get_accelerator(name).name for name in names)


def build_runner(args: argparse.Namespace) -> SimulationRunner:
    """Construct the runner the CLI's experiments submit through."""
    if args.workers is not None and args.workers <= 0:
        raise ValueError("--workers must be a positive integer")
    backend = (
        ProcessPoolBackend(max_workers=args.workers)
        if args.parallel or args.workers is not None
        else SerialBackend()
    )
    if args.no_cache:
        return SimulationRunner(backend=backend, use_cache=False)
    cache = DiskResultCache(args.cache_dir) if args.cache_dir else None
    return SimulationRunner(backend=backend, cache=cache)


def _print_cache_stats(runner: SimulationRunner) -> None:
    stats = runner.stats
    print(
        "cache: "
        f"{stats.hits} hits, {stats.misses} misses, "
        f"{stats.deduplicated} deduplicated "
        f"(hit rate {100 * stats.hit_rate:.1f}%)"
    )


def _run_compare(args: argparse.Namespace, runner: SimulationRunner) -> int:
    """The ``compare`` mode: all six GANs across N registered accelerators."""
    try:
        accelerators = parse_accelerator_list(args.accelerators) or accelerator_names()
        session = Session(
            accelerators=accelerators, baseline=args.baseline, runner=runner
        )
        comparisons = session.compare()

        if not args.quiet:
            rows = [
                [
                    row["model"],
                    row["accelerator"],
                    row["speedup"],
                    row["energy_reduction"],
                    row["pe_utilization"],
                ]
                for row in multi_comparison_rows(comparisons)
            ]
            print(
                format_table(
                    [
                        "Model",
                        "Accelerator",
                        f"Speedup vs {session.baseline}",
                        "Energy reduction",
                        "PE utilization",
                    ],
                    rows,
                    title="N-way accelerator comparison (generator)",
                    float_format="{:.2f}",
                )
            )

        if args.json:
            payload = {
                "compare": {
                    "baseline": session.baseline,
                    "accelerators": list(session.accelerators),
                    "models": {
                        name: comparison.summary()
                        for name, comparison in comparisons.items()
                    },
                }
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            if not args.quiet:
                print(f"wrote JSON results to {args.json}")

        if args.cache_stats:
            _print_cache_stats(runner)
    except ReproError as exc:  # e.g. unknown --accelerators / --baseline
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        runner.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment != "compare" and (args.accelerators or args.baseline):
        # The experiments regenerate the paper's fixed two-way figures; a
        # silently ignored accelerator selection would report numbers for a
        # comparison the user did not ask for.
        print(
            "error: --accelerators/--baseline only apply to the 'compare' mode",
            file=sys.stderr,
        )
        return 2

    if args.experiment == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0

    if args.experiment == "list-accelerators":
        for name in accelerator_names():
            spec = get_accelerator(name)
            print(f"{spec.name}  (v{spec.version})  {spec.description}")
        return 0

    try:
        runner = build_runner(args)
    except Exception as exc:  # bad --workers / unusable --cache-dir
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.experiment == "compare":
        return _run_compare(args, runner)

    context = ExperimentContext(runner=runner)
    try:
        if args.experiment == "all":
            results = run_all(context)
        else:
            try:
                results = [run_experiment(args.experiment, context)]
            except Exception as exc:  # surfaced as a clean CLI error
                print(f"error: {exc}", file=sys.stderr)
                return 2

        if not args.quiet:
            for result in results:
                print(result.report)
                print()

        if args.json:
            payload = {
                result.experiment_id: {
                    "title": result.title,
                    "data": result.data,
                    "paper_reference": result.paper_reference,
                }
                for result in results
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            if not args.quiet:
                print(f"wrote JSON results to {args.json}")

        if args.cache_stats:
            _print_cache_stats(runner)
    finally:
        runner.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
