"""Command-line interface: regenerate the paper's tables and figures.

Installed as ``repro-experiments`` (see ``pyproject.toml``).  Examples::

    repro-experiments list                # list available experiments
    repro-experiments figure8             # regenerate Figure 8
    repro-experiments all                 # regenerate everything
    repro-experiments figure8 --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .experiments.base import ExperimentContext
from .experiments.registry import experiment_ids, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the GANAX paper (ISCA 2018).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment id (e.g. figure8, table3), 'all', or 'list'",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the computed data as JSON to PATH",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered report (useful with --json)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0

    context = ExperimentContext()
    if args.experiment == "all":
        results = run_all(context)
    else:
        try:
            results = [run_experiment(args.experiment, context)]
        except Exception as exc:  # surfaced as a clean CLI error
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if not args.quiet:
        for result in results:
            print(result.report)
            print()

    if args.json:
        payload = {
            result.experiment_id: {
                "title": result.title,
                "data": result.data,
                "paper_reference": result.paper_reference,
            }
            for result in results
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        if not args.quiet:
            print(f"wrote JSON results to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
