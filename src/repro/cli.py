"""Command-line interface: regenerate the paper's tables and figures.

Installed as ``repro-experiments`` (see ``pyproject.toml``).  Examples::

    repro-experiments list                # list available experiments
    repro-experiments figure8             # regenerate Figure 8
    repro-experiments all                 # regenerate everything
    repro-experiments figure8 --json out.json
    repro-experiments all --parallel --cache-stats
    repro-experiments all --cache-dir .sim-cache   # warm-start reruns

Every simulation runs through one shared
:class:`~repro.runner.SimulationRunner`, so the whole invocation shares a
content-addressed result cache; ``--parallel`` swaps the serial backend for a
process pool and ``--cache-dir`` persists results across invocations.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .experiments.base import ExperimentContext
from .experiments.registry import experiment_ids, run_all, run_experiment
from .runner import (
    DiskResultCache,
    ProcessPoolBackend,
    SerialBackend,
    SimulationRunner,
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the GANAX paper (ISCA 2018).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment id (e.g. figure8, table3), 'all', or 'list'",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the computed data as JSON to PATH",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered report (useful with --json)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="execute simulations on a process pool instead of serially",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="worker processes (implies --parallel; default: one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persist simulation results in a content-addressed disk cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching (every job re-simulates)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss accounting after the run",
    )
    return parser


def build_runner(args: argparse.Namespace) -> SimulationRunner:
    """Construct the runner the CLI's experiments submit through."""
    if args.workers is not None and args.workers <= 0:
        raise ValueError("--workers must be a positive integer")
    backend = (
        ProcessPoolBackend(max_workers=args.workers)
        if args.parallel or args.workers is not None
        else SerialBackend()
    )
    if args.no_cache:
        return SimulationRunner(backend=backend, use_cache=False)
    cache = DiskResultCache(args.cache_dir) if args.cache_dir else None
    return SimulationRunner(backend=backend, cache=cache)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0

    try:
        runner = build_runner(args)
    except Exception as exc:  # bad --workers / unusable --cache-dir
        print(f"error: {exc}", file=sys.stderr)
        return 2
    context = ExperimentContext(runner=runner)
    try:
        if args.experiment == "all":
            results = run_all(context)
        else:
            try:
                results = [run_experiment(args.experiment, context)]
            except Exception as exc:  # surfaced as a clean CLI error
                print(f"error: {exc}", file=sys.stderr)
                return 2

        if not args.quiet:
            for result in results:
                print(result.report)
                print()

        if args.json:
            payload = {
                result.experiment_id: {
                    "title": result.title,
                    "data": result.data,
                    "paper_reference": result.paper_reference,
                }
                for result in results
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            if not args.quiet:
                print(f"wrote JSON results to {args.json}")

        if args.cache_stats:
            stats = runner.stats
            print(
                "cache: "
                f"{stats.hits} hits, {stats.misses} misses, "
                f"{stats.deduplicated} deduplicated "
                f"(hit rate {100 * stats.hit_rate:.1f}%)"
            )
    finally:
        runner.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
