"""Synchronous client for the simulation service.

:class:`Client` speaks the JSONL protocol of :mod:`repro.service.protocol`
over a plain TCP socket: connect (with retry + exponential backoff — servers
are often still binding when the first worker asks), ``hello``/``welcome``
handshake with schema-version checking on both sides, then one batch at a
time via :meth:`submit`, a generator yielding each terminal job event as the
server pushes it.  :meth:`run` collects a whole batch, :meth:`compare`
submits the (workload x accelerator) comparison grid that mirrors the local
``repro-experiments compare`` verb.

The client is deliberately synchronous and single-request: a worker in a
fleet submits a batch, streams its completions, and moves on.  Concurrency
comes from running many clients — the server's shared runner, admission
control, and cross-client dedup do the coordination.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from ..errors import AdmissionError, ProtocolError, ServiceError
from . import protocol
from .protocol import JobSpec, grid_specs

#: Connection retry defaults: 5 attempts, 50 ms doubling backoff.
DEFAULT_CONNECT_RETRIES = 5
DEFAULT_BACKOFF_SECONDS = 0.05


class Client:
    """One connection to a :class:`~repro.service.SimulationServer`.

    Usable as a context manager::

        with Client(port=server.port) as client:
            for record in client.submit(grid_specs(["dcgan"], ["ganax"])):
                print(record["event"], record["model"])
            print(client.last_counts)

    A :meth:`submit` generator must be consumed to completion (or the
    connection closed) before the next submit — the protocol is one
    outstanding request per connection.  :meth:`run` does the consuming.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        client_id: Optional[str] = None,
        connect_retries: int = DEFAULT_CONNECT_RETRIES,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        timeout: Optional[float] = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:8]}"
        self._connect_retries = max(0, connect_retries)
        self._backoff = backoff_seconds
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        #: Admission knobs advertised by the server's ``welcome`` record.
        self.server_quota: Optional[int] = None
        self.server_queue_limit: Optional[int] = None
        #: ``counts`` of the most recent completed :meth:`submit` batch.
        self.last_counts: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> "Client":
        """Dial the server (retry + backoff) and perform the handshake."""
        if self._sock is not None:
            return self
        delay = self._backoff
        last_error: Optional[OSError] = None
        for attempt in range(self._connect_retries + 1):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self._timeout
                )
                break
            except OSError as exc:
                last_error = exc
                if attempt < self._connect_retries:
                    time.sleep(delay)
                    delay *= 2
        if self._sock is None:
            raise ServiceError(
                f"could not connect to {self.host}:{self.port} after "
                f"{self._connect_retries + 1} attempts: {last_error}"
            )
        self._file = self._sock.makefile("rwb")
        try:
            self._send(protocol.hello_record(self.client_id))
            record = self._read()
        except ServiceError:
            self.close()
            raise
        if record.get("type") == "rejected":
            reason = str(record.get("reason", "handshake rejected"))
            code = str(record.get("code", protocol.REJECT_BAD_REQUEST))
            self.close()
            raise AdmissionError(code, reason)
        if record.get("type") != "welcome":
            self.close()
            raise ProtocolError(
                f"expected a 'welcome' record, got {record.get('type')!r}"
            )
        quota = record.get("quota")
        queue_limit = record.get("queue_limit")
        self.server_quota = quota if isinstance(quota, int) else None
        self.server_queue_limit = (
            queue_limit if isinstance(queue_limit, int) else None
        )
        return self

    def close(self) -> None:
        """Say goodbye (best effort) and release the socket (idempotent)."""
        if self._file is not None:
            try:
                self._send(protocol.bye_record())
                while True:
                    record = self._read()
                    if record.get("type") in ("goodbye", "shutdown"):
                        break
            except (ServiceError, ProtocolError, OSError):
                pass
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def submit(
        self,
        job_specs: Sequence[JobSpec],
        request_id: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Submit a batch; yield each terminal job event record as it lands.

        Connects on first use.  Raises :class:`~repro.errors.AdmissionError`
        when the server answers ``rejected`` (``error.code`` carries the wire
        code — ``quota``, ``queue-full``, ``shutting-down``, ...), and
        :class:`~repro.errors.ServiceError` if the server shuts down or the
        connection drops mid-stream.  On normal exhaustion the batch is
        complete and :attr:`last_counts` holds its ``counts``.
        """
        self.connect()
        record = protocol.submit_record(job_specs, request_id=request_id)
        sent_id = record["request_id"]
        self._send(record)
        accepted = False
        while True:
            response = self._read()
            response_type = response.get("type")
            if response_type == "rejected":
                raise AdmissionError(
                    str(response.get("code", "rejected")),
                    str(response.get("reason", "request rejected")),
                )
            if response_type == "accepted":
                accepted = True
                continue
            if response_type == "event":
                yield response
                continue
            if response_type == "done" and response.get("request_id") == sent_id:
                counts = response.get("counts")
                self.last_counts = dict(counts) if isinstance(counts, Mapping) else None
                return
            if response_type == "shutdown":
                raise ServiceError(
                    "server shut down before the batch completed"
                    if accepted
                    else "server is shutting down"
                )
            if response_type == "error":
                raise ProtocolError(
                    f"server error: {response.get('reason', 'unknown')}"
                )
            raise ProtocolError(
                f"unexpected record type {response_type!r} mid-stream"
            )

    def run(
        self,
        job_specs: Sequence[JobSpec],
        request_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Submit a batch and collect every event record (blocking)."""
        return list(self.submit(job_specs, request_id=request_id))

    def compare(
        self,
        workloads: Sequence[str],
        accelerators: Sequence[str],
        config: Optional[Mapping[str, Any]] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> List[Dict[str, Any]]:
        """Run the (workload x accelerator) grid remotely; all event records."""
        return self.run(grid_specs(workloads, accelerators, config, options))

    def stats(self) -> Dict[str, Any]:
        """The server's telemetry snapshot (the ``stats`` exchange, schema v2).

        Returns the ``stats`` record's payload: uptime, queue depth, lifetime
        request/job counters, cache accounting, and — when the server has
        metrics enabled — the full metrics-registry snapshot under
        ``"metrics"``.  Raises :class:`~repro.errors.ProtocolError` when the
        server predates the ``stats`` request (it answers ``error``).
        """
        self.connect()
        self._send(protocol.stats_request_record())
        while True:
            response = self._read()
            response_type = response.get("type")
            if response_type == "stats":
                payload = dict(response)
                payload.pop("type", None)
                payload.pop("schema_version", None)
                return payload
            if response_type == "shutdown":
                raise ServiceError("server is shutting down")
            if response_type == "error":
                raise ProtocolError(
                    f"server error: {response.get('reason', 'unknown')}"
                )
            raise ProtocolError(
                f"unexpected record type {response_type!r} awaiting stats"
            )

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(self, record: Dict[str, Any]) -> None:
        if self._file is None:
            raise ServiceError("client is not connected")
        try:
            self._file.write(protocol.encode(record))
            self._file.flush()
        except (OSError, ValueError) as exc:
            raise ServiceError(f"connection to server lost: {exc}") from exc

    def _read(self) -> Dict[str, Any]:
        if self._file is None:
            raise ServiceError("client is not connected")
        try:
            line = self._file.readline()
        except (OSError, ValueError) as exc:
            raise ServiceError(f"connection to server lost: {exc}") from exc
        if not line:
            raise ServiceError("server closed the connection")
        record = protocol.decode(line)
        protocol.check_schema(record, source="server record")
        return record
