"""The versioned JSONL wire protocol of the simulation service.

One **record** is one JSON object on one line (newline-delimited JSON), in
both directions.  Every record carries an explicit ``schema_version`` —
:data:`SCHEMA_VERSION`, shared with the runner's ``--jsonl`` record grammar
(:data:`repro.runner.RECORD_SCHEMA_VERSION`) — and both ends reject
mismatched versions with an explicit message instead of silently misparsing
(:func:`check_schema`).

Client -> server requests:

``hello``
    ``{"type": "hello", "schema_version": 1, "client": "<id>"}`` — the
    handshake; must be the first record on a connection.  The server answers
    ``welcome`` (or ``rejected`` with code ``schema-mismatch`` and closes).
``submit``
    ``{"type": "submit", "schema_version": 1, "request_id": "<id>",
    "jobs": [<job-spec>, ...]}`` — submit a batch.  The server answers
    ``accepted`` or ``rejected``, then pushes one ``event`` record per job as
    it terminates and a final ``done`` record.
``bye``
    ``{"type": "bye", "schema_version": 1}`` — orderly goodbye; the server
    answers ``goodbye`` and closes the connection.
``stats``
    ``{"type": "stats", "schema_version": 2}`` — ask the server for its
    telemetry snapshot.  The server answers a ``stats`` record carrying
    uptime, job/queue counters, cache accounting and the metrics-registry
    snapshot.  Added in schema version 2.

A **job spec** is the wire form of one
:class:`~repro.runner.SimulationJob` — the same (workload, accelerator,
config, options) tuple, with the workload as a registry name or family spec
string (``"dcgan@32x32"``) and config/options as *override* mappings applied
to the paper defaults::

    {"workload": "dcgan@64x64", "accelerator": "ganax",
     "config": {"num_pvs": 8}, "options": {"include_discriminator": false}}

Server -> client responses:

``welcome``
    ``{"type": "welcome", "schema_version": 1, "server": ..., "quota": N,
    "queue_limit": M}`` — handshake accepted; advertises admission knobs.
``accepted``
    ``{"type": "accepted", "schema_version": 1, "request_id": ...,
    "jobs": N}`` — the batch passed validation and admission control.
``rejected``
    ``{"type": "rejected", "schema_version": 1, "request_id": ...,
    "code": ..., "reason": ...}`` — the batch (or handshake) was refused.
    Codes: ``schema-mismatch``, ``bad-request``, ``quota``, ``queue-full``,
    ``shutting-down``.
``event``
    One terminal job event, pushed as the job terminates.  The payload *is*
    :meth:`RunnerEvent.describe() <repro.runner.RunnerEvent.describe>` — the
    exact ``--jsonl`` record grammar tests already pin — plus ``type``,
    ``request_id`` and the job's content-hash ``cache_key``.
``done``
    ``{"type": "done", "schema_version": 1, "request_id": ...,
    "counts": {...}}`` — every job of the request terminated;
    ``counts`` is :meth:`BatchHandle.counts`.
``goodbye`` / ``shutdown``
    Orderly connection close / server-initiated graceful shutdown notice.
``error``
    A malformed request that could not be attributed to a request_id.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..config import ArchitectureConfig, SimulationOptions
from ..errors import ProtocolError, ReproError
from ..runner import RECORD_SCHEMA_VERSION, RunnerEvent, SimulationJob

#: The wire-protocol version; identical to the ``--jsonl`` record grammar
#: version because ``event`` records *are* that grammar.
SCHEMA_VERSION: int = RECORD_SCHEMA_VERSION

#: Oldest record version this side still accepts.  Version 2 only *added*
#: fields (``timestamp``/``job_uid`` on events, the ``stats`` exchange), so
#: version-1 records parse unchanged — old clients keep talking to new
#: servers and journals written by version-1 releases still replay.  Bump
#: this only when a version actually changes or removes a field.
MIN_COMPATIBLE_SCHEMA_VERSION: int = 1

#: Server identity string advertised in ``welcome`` records.
SERVER_ID = f"repro-service/{SCHEMA_VERSION}"

#: Machine-readable rejection codes carried by ``rejected`` records.
REJECT_SCHEMA_MISMATCH = "schema-mismatch"
REJECT_BAD_REQUEST = "bad-request"
REJECT_QUOTA = "quota"
REJECT_QUEUE_FULL = "queue-full"
REJECT_SHUTTING_DOWN = "shutting-down"

_JOB_SPEC_KEYS = frozenset({"workload", "accelerator", "config", "options"})


# ----------------------------------------------------------------------
# Record encoding / decoding
# ----------------------------------------------------------------------
def encode(record: Mapping[str, Any]) -> bytes:
    """Serialize one record as a JSONL line (UTF-8 bytes incl. newline)."""
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def decode(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one JSONL line into a record; malformed input raises loudly."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSONL record: {exc}") from None
    if not isinstance(record, dict):
        raise ProtocolError(
            f"expected a JSON object per line, got {type(record).__name__}"
        )
    return record


def check_schema(record: Mapping[str, Any], source: str = "record") -> None:
    """Reject a record whose ``schema_version`` is absent or incompatible.

    Versions in ``[MIN_COMPATIBLE_SCHEMA_VERSION, SCHEMA_VERSION]`` are
    accepted — newer grammar versions have only added fields so far, so
    records from older peers (and journals written by older releases) parse
    unchanged.  Anything outside the range fails with a message naming both
    versions and the record's origin, so a stale side gets an actionable
    error instead of a silent misparse.
    """
    version = record.get("schema_version")
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or not MIN_COMPATIBLE_SCHEMA_VERSION <= version <= SCHEMA_VERSION
    ):
        raise ProtocolError(
            f"{source} has schema_version {version!r}, but this side speaks "
            f"schema_version {SCHEMA_VERSION} (accepting "
            f"{MIN_COMPATIBLE_SCHEMA_VERSION}..{SCHEMA_VERSION}); upgrade "
            "the older side"
        )


def stamp(record: Dict[str, Any]) -> Dict[str, Any]:
    """Add this side's ``schema_version`` to an outgoing record (in place)."""
    record.setdefault("schema_version", SCHEMA_VERSION)
    return record


# ----------------------------------------------------------------------
# Job specs: the wire form of SimulationJob
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One wire-level job: the (workload, accelerator, config, options) tuple.

    ``workload`` is a registry name or family spec string — wire jobs cannot
    carry ad-hoc :class:`~repro.nn.network.GANModel` instances, which keeps
    the protocol JSON-pure and lets the server resolve workloads through its
    own registry.  ``config`` and ``options`` are override mappings applied
    to :meth:`ArchitectureConfig.paper_default` / default
    :class:`SimulationOptions`; validation happens when the server builds the
    :class:`~repro.runner.SimulationJob` (unknown fields raise).
    """

    workload: str
    accelerator: str
    config: Mapping[str, Any] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> Dict[str, Any]:
        """The JSON-friendly wire form (inverse of :func:`job_spec_from_wire`)."""
        record: Dict[str, Any] = {
            "workload": self.workload,
            "accelerator": self.accelerator,
        }
        if self.config:
            record["config"] = dict(self.config)
        if self.options:
            record["options"] = dict(self.options)
        return record

    def build(self) -> SimulationJob:
        """Materialize the :class:`SimulationJob` this spec describes.

        Raises :class:`~repro.errors.ReproError` subclasses for unknown
        workloads/accelerators and invalid config/option overrides — the
        server maps those onto ``rejected`` records with code
        ``bad-request``.
        """
        base_config = ArchitectureConfig.paper_default().to_mapping()
        base_config.update(self.config)
        base_options = SimulationOptions().to_mapping()
        base_options.update(self.options)
        return SimulationJob(
            model=self.workload,
            accelerator=self.accelerator,
            config=ArchitectureConfig.from_mapping(base_config),
            options=SimulationOptions.from_mapping(base_options),
        )


def job_spec_from_wire(payload: Mapping[str, Any]) -> JobSpec:
    """Validate and parse one wire job-spec mapping into a :class:`JobSpec`."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"job spec must be an object, got {type(payload).__name__}"
        )
    unknown = set(payload) - _JOB_SPEC_KEYS
    if unknown:
        raise ProtocolError(f"unknown job-spec keys: {sorted(unknown)}")
    workload = payload.get("workload")
    accelerator = payload.get("accelerator")
    if not isinstance(workload, str) or not workload:
        raise ProtocolError("job spec requires a non-empty string 'workload'")
    if not isinstance(accelerator, str) or not accelerator:
        raise ProtocolError("job spec requires a non-empty string 'accelerator'")
    config = payload.get("config", {})
    options = payload.get("options", {})
    if not isinstance(config, Mapping):
        raise ProtocolError("job spec 'config' must be an object of overrides")
    if not isinstance(options, Mapping):
        raise ProtocolError("job spec 'options' must be an object of overrides")
    return JobSpec(
        workload=workload,
        accelerator=accelerator,
        config=dict(config),
        options=dict(options),
    )


def grid_specs(
    workloads: Sequence[str],
    accelerators: Sequence[str],
    config: Optional[Mapping[str, Any]] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> List[JobSpec]:
    """The (workload x accelerator) comparison grid as wire job specs.

    The client-side counterpart of
    :meth:`SimulationJob.for_accelerators` — what ``remote-compare`` submits.
    """
    return [
        JobSpec(
            workload=workload,
            accelerator=accelerator,
            config=dict(config or {}),
            options=dict(options or {}),
        )
        for workload in workloads
        for accelerator in accelerators
    ]


# ----------------------------------------------------------------------
# Request records (client -> server)
# ----------------------------------------------------------------------
def hello_record(client_id: str) -> Dict[str, Any]:
    return stamp({"type": "hello", "client": client_id})


def submit_record(
    job_specs: Sequence[JobSpec], request_id: Optional[str] = None
) -> Dict[str, Any]:
    return stamp(
        {
            "type": "submit",
            "request_id": request_id or uuid.uuid4().hex,
            "jobs": [spec.describe() for spec in job_specs],
        }
    )


def bye_record() -> Dict[str, Any]:
    return stamp({"type": "bye"})


def stats_request_record() -> Dict[str, Any]:
    """Ask the server for its telemetry snapshot (added in schema v2)."""
    return stamp({"type": "stats"})


def parse_submit(record: Mapping[str, Any]) -> Tuple[str, List[JobSpec]]:
    """Validate a ``submit`` record into its (request_id, job specs)."""
    request_id = record.get("request_id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("submit requires a non-empty string 'request_id'")
    jobs = record.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise ProtocolError("submit requires a non-empty 'jobs' array")
    return request_id, [job_spec_from_wire(payload) for payload in jobs]


# ----------------------------------------------------------------------
# Response records (server -> client)
# ----------------------------------------------------------------------
def welcome_record(quota: int, queue_limit: int) -> Dict[str, Any]:
    return stamp(
        {
            "type": "welcome",
            "server": SERVER_ID,
            "quota": quota,
            "queue_limit": queue_limit,
        }
    )


def accepted_record(request_id: str, jobs: int) -> Dict[str, Any]:
    return stamp({"type": "accepted", "request_id": request_id, "jobs": jobs})


def rejected_record(
    code: str, reason: str, request_id: Optional[str] = None
) -> Dict[str, Any]:
    record = {"type": "rejected", "code": code, "reason": reason}
    if request_id is not None:
        record["request_id"] = request_id
    return stamp(record)


def event_record(event: RunnerEvent, request_id: str) -> Dict[str, Any]:
    """One terminal job event as a wire record.

    The payload is exactly :meth:`RunnerEvent.describe` — the pinned
    ``--jsonl`` grammar (already carrying ``schema_version``) — plus the
    service envelope: ``type``, the owning ``request_id``, and the job's
    content-hash ``cache_key`` so clients and the journal can address
    results by content.
    """
    record = event.describe()
    record["type"] = "event"
    record["request_id"] = request_id
    record["cache_key"] = event.job.cache_key
    return record


def done_record(request_id: str, counts: Mapping[str, int]) -> Dict[str, Any]:
    return stamp({"type": "done", "request_id": request_id, "counts": dict(counts)})


def stats_record(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """The server's telemetry snapshot as a wire record (schema v2)."""
    record: Dict[str, Any] = {"type": "stats"}
    record.update(payload)
    return stamp(record)


def goodbye_record() -> Dict[str, Any]:
    return stamp({"type": "goodbye"})


def shutdown_record() -> Dict[str, Any]:
    return stamp({"type": "shutdown", "reason": "server is shutting down"})


def error_record(reason: str) -> Dict[str, Any]:
    return stamp({"type": "error", "reason": reason})


def reject_code_for(error: BaseException) -> str:
    """Map a request-validation failure onto a ``rejected`` code."""
    if isinstance(error, (ProtocolError, ReproError, TypeError, ValueError)):
        return REJECT_BAD_REQUEST
    raise error  # programming error: do not mask it as a client mistake
