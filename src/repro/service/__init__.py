"""Simulation-as-a-service: a multi-client streaming server over the runner.

This package turns the in-process :class:`~repro.runner.SimulationRunner`
into a long-running TCP service speaking a versioned JSONL protocol, so a
fleet of workers (or several interactive sweeps) can share one runner, one
content-addressed result cache, and one durable journal:

* :mod:`repro.service.protocol` — the wire grammar: versioned JSONL
  request/response records, :class:`JobSpec` (the wire form of a
  :class:`~repro.runner.SimulationJob`), schema-version checking.
* :mod:`repro.service.server` — :class:`SimulationServer`: asyncio TCP
  endpoint, admission control (per-client quota + round-robin fairness),
  cross-client dedup, durable journaling with ``--resume`` replay, graceful
  draining shutdown.
* :mod:`repro.service.client` — :class:`Client`: synchronous streaming
  client with connect retry/backoff.
* :mod:`repro.service.journal` — :class:`EventJournal`: fsync'd JSONL
  journal with atomic compaction and crash-resume replay.
* :mod:`repro.service.admission` — :class:`AdmissionController` and
  :class:`RoundRobinQueue`.

Quick start::

    from repro.service import Client, SimulationServer, grid_specs

    with SimulationServer(port=0) as server:          # serves on a thread
        with Client(port=server.port) as client:
            records = client.compare(["dcgan"], ["eyeriss", "ganax"])

See ``src/repro/service/README.md`` for the protocol specification and the
CLI verbs (``repro-experiments serve`` / ``remote-compare``).
"""

from .admission import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_QUOTA,
    AdmissionController,
    RoundRobinQueue,
)
from .client import Client
from .journal import DEFAULT_ROTATE_BYTES, EventJournal, journal_record
from .protocol import SCHEMA_VERSION, JobSpec, grid_specs
from .server import DEFAULT_MAX_ACTIVE_REQUESTS, DEFAULT_PORT, SimulationServer

__all__ = [
    "AdmissionController",
    "Client",
    "DEFAULT_MAX_ACTIVE_REQUESTS",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_QUOTA",
    "DEFAULT_ROTATE_BYTES",
    "EventJournal",
    "JobSpec",
    "RoundRobinQueue",
    "SCHEMA_VERSION",
    "SimulationServer",
    "grid_specs",
    "journal_record",
]
