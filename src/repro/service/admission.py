"""Admission control for the simulation service.

Two cooperating pieces, both plain synchronous data structures (the server
drives them from its event loop; unit tests drive them directly):

* :class:`AdmissionController` — decides whether a batch may enter.  Each
  client holds at most ``quota`` in-flight jobs (admitted but not yet
  terminal) and the server holds at most ``queue_limit`` in-flight jobs in
  total; a batch that would exceed either bound is refused with the
  machine-readable code the wire-level ``rejected`` record carries
  (``"quota"`` / ``"queue-full"``).  Admission is all-or-nothing per batch —
  partially admitting a comparison grid would hand the client an
  uninterpretable half-result.

* :class:`RoundRobinQueue` — orders admitted batches for dispatch.  One FIFO
  per client, drained one batch per client per turn, so a client saturating
  its quota with many batches cannot starve a light client: the light
  client's single batch dispatches after at most one batch from each other
  active client, regardless of how deep any backlog is.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, Generic, Optional, Tuple, TypeVar

from ..errors import ServiceError
from ..telemetry import get_metrics

T = TypeVar("T")

#: Default per-client in-flight job quota.
DEFAULT_QUOTA = 64
#: Default server-wide in-flight job bound.
DEFAULT_QUEUE_LIMIT = 1024

#: Rejection codes (mirrored by :mod:`repro.service.protocol`).
CODE_QUOTA = "quota"
CODE_QUEUE_FULL = "queue-full"


class AdmissionController:
    """Per-client quota and server-wide bound over in-flight jobs.

    Thread-safe; the server admits on its loop thread and releases from
    backend completion threads.
    """

    def __init__(
        self, quota: int = DEFAULT_QUOTA, queue_limit: int = DEFAULT_QUEUE_LIMIT
    ) -> None:
        if quota <= 0:
            raise ServiceError(f"quota must be > 0, got {quota}")
        if queue_limit <= 0:
            raise ServiceError(f"queue_limit must be > 0, got {queue_limit}")
        self._quota = quota
        self._queue_limit = queue_limit
        self._lock = threading.Lock()
        self._inflight: Dict[str, int] = {}
        self._total = 0

    @property
    def quota(self) -> int:
        return self._quota

    @property
    def queue_limit(self) -> int:
        return self._queue_limit

    def inflight(self, client: Optional[str] = None) -> int:
        """In-flight jobs for one client, or server-wide when None."""
        with self._lock:
            if client is None:
                return self._total
            return self._inflight.get(client, 0)

    def try_admit(self, client: str, jobs: int) -> Optional[Tuple[str, str]]:
        """Admit ``jobs`` for ``client``, or explain the refusal.

        Returns None when admitted (the counters are committed and the
        caller owes a matching :meth:`release`), else a ``(code, reason)``
        pair for the ``rejected`` record and no state changes.
        """
        if jobs <= 0:
            raise ServiceError(f"cannot admit a batch of {jobs} jobs")
        refusal: Optional[Tuple[str, str]] = None
        with self._lock:
            held = self._inflight.get(client, 0)
            if held + jobs > self._quota:
                refusal = (
                    CODE_QUOTA,
                    f"client '{client}' holds {held} in-flight jobs; admitting "
                    f"{jobs} more would exceed the per-client quota of "
                    f"{self._quota}",
                )
            elif self._total + jobs > self._queue_limit:
                refusal = (
                    CODE_QUEUE_FULL,
                    f"server holds {self._total} in-flight jobs; admitting "
                    f"{jobs} more would exceed the queue limit of "
                    f"{self._queue_limit}",
                )
            else:
                self._inflight[client] = held + jobs
                self._total += jobs
                total = self._total
        # Metric updates sit outside self._lock: the registry has its own
        # locking and the admission lock is on the request hot path.
        registry = get_metrics()
        if registry is not None:
            if refusal is None:
                registry.counter("service.admission.accepted", client=client).inc()
                registry.gauge("service.admission.inflight_jobs").set(total)
            else:
                registry.counter(
                    "service.admission.rejected", client=client, code=refusal[0]
                ).inc()
        return refusal

    def release(self, client: str, jobs: int) -> None:
        """Return ``jobs`` previously admitted for ``client``."""
        with self._lock:
            held = self._inflight.get(client, 0)
            remaining = max(0, held - jobs)
            if remaining:
                self._inflight[client] = remaining
            else:
                self._inflight.pop(client, None)
            self._total = max(0, self._total - jobs)
            total = self._total
        registry = get_metrics()
        if registry is not None:
            registry.gauge("service.admission.inflight_jobs").set(total)


class RoundRobinQueue(Generic[T]):
    """Per-client FIFOs drained round-robin, one item per client per turn.

    Not thread-safe by itself — the server mutates it from one event loop;
    tests drive it directly.  Clients keep their slot in the rotation for as
    long as they have queued items; the rotation cursor survives pushes, so
    a client that keeps refilling its queue cannot jump the line.
    """

    def __init__(self) -> None:
        self._queues: "OrderedDict[str, Deque[T]]" = OrderedDict()
        self._rotation: Deque[str] = deque()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def pending(self, client: str) -> int:
        queue = self._queues.get(client)
        return len(queue) if queue is not None else 0

    def push(self, client: str, item: T) -> None:
        queue = self._queues.get(client)
        if queue is None:
            queue = deque()
            self._queues[client] = queue
            self._rotation.append(client)  # joins at the back of the rotation
        queue.append(item)
        self._size += 1

    def pop(self) -> Tuple[str, T]:
        """The next (client, item) in round-robin order; raises when empty."""
        if not self._size:
            raise IndexError("pop from an empty RoundRobinQueue")
        while True:
            client = self._rotation.popleft()
            queue = self._queues.get(client)
            if queue is None or not queue:
                # client drained earlier in the rotation; drop the stale slot
                self._queues.pop(client, None)
                continue
            item = queue.popleft()
            self._size -= 1
            if queue:
                self._rotation.append(client)  # back of the line for its next
            else:
                del self._queues[client]
            return client, item
