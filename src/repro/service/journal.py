"""Durable JSONL journal of terminal job events, with resume replay.

The server appends one record per terminal job event — the wire ``event``
record (:func:`repro.service.protocol.event_record`) extended with a
``result_pickle`` payload (base64 pickle of the :class:`GanResult`) on
``completed`` / ``cache-hit`` events.  Each append is flushed **and
fsync'd**, so a record either survives a crash whole or was never
acknowledged; a torn final line (the crash happened mid-write) is detected
and skipped on replay.

Rotation is **atomic and content-preserving**: when the journal grows past
``rotate_bytes``, it is compacted — one record per distinct ``cache_key``,
newest wins, terminal non-result records (``failed`` / ``cancelled``)
dropped — into a temp file that is fsync'd and ``os.replace``'d over the
journal, so a reader (or a crash) at any instant sees either the old
complete journal or the new complete journal, never a half-written one.
Compaction is safe because the journal is content-addressed: any one
surviving record per key replays the same cached result.

:meth:`EventJournal.replay_into` is the ``--resume`` path: it feeds every
journaled result back into a :class:`~repro.runner.cache.ResultCache` keyed
by ``cache_key``, so a restarted server answers already-finished jobs from
cache and a crashed sweep re-runs only its missing jobs.  Records from a
different ``schema_version`` are rejected with an explicit message
(:class:`~repro.errors.ProtocolError`) instead of being silently misparsed.

The journal stores pickles of this package's own result objects, written by
this server; like the disk result cache, it must only be replayed from a
trusted filesystem location.
"""

from __future__ import annotations

import base64
import io
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..analysis.results import GanResult
from ..errors import ProtocolError, ServiceError
from ..runner import RunnerEvent
from ..runner.cache import ResultCache
from . import protocol

PathLike = Union[str, Path]

#: Default rotation threshold: compact once the journal passes 32 MiB.
DEFAULT_ROTATE_BYTES = 32 * 1024 * 1024


def journal_record(event: RunnerEvent, request_id: str) -> Dict[str, Any]:
    """The journal form of one terminal event: wire record + result payload."""
    record = protocol.event_record(event, request_id)
    if event.result is not None:
        record["result_pickle"] = base64.b64encode(
            pickle.dumps(event.result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    return record


def decode_result(record: Dict[str, Any]) -> Optional[GanResult]:
    """The :class:`GanResult` journaled in ``record``, or None.

    A corrupt payload (truncated base64, stale pickle) returns None rather
    than raising: the job simply re-runs, which is always safe.
    """
    payload = record.get("result_pickle")
    if not isinstance(payload, str):
        return None
    try:
        return pickle.loads(base64.b64decode(payload.encode("ascii")))
    except Exception:
        return None


class EventJournal:
    """Append-only, fsync'd JSONL journal with atomic compaction.

    Thread-safe: the server's event listeners append from backend callback
    threads.  Open the journal once per server; concurrent writers on the
    same path are **not** supported (unlike the disk cache, a journal is a
    log, not a content-addressed store — run one journal per server process
    and share results through the cache instead).
    """

    def __init__(
        self, path: PathLike, rotate_bytes: int = DEFAULT_ROTATE_BYTES
    ) -> None:
        if rotate_bytes <= 0:
            raise ServiceError(f"rotate_bytes must be > 0, got {rotate_bytes}")
        self._path = Path(path)
        self._rotate_bytes = rotate_bytes
        self._lock = threading.Lock()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[io.TextIOWrapper] = open(
            self._path, "a", encoding="utf-8"
        )
        self._size = self._path.stat().st_size

    @property
    def path(self) -> Path:
        return self._path

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (flush + fsync before returning)."""
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._handle is None:
                raise ServiceError("journal is closed")
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._size += len(line.encode("utf-8"))
            if self._size > self._rotate_bytes:
                self._compact_locked()

    def compact(self) -> int:
        """Rewrite the journal keeping one newest record per cache key.

        Returns the number of surviving records.  The rewrite is atomic:
        records stream into a same-directory temp file that is fsync'd and
        renamed over the journal, so every observable journal state is a
        complete one.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        survivors: "Dict[str, str]" = {}
        for record, line in _iter_journal_lines(self._path):
            key = record.get("cache_key")
            if not isinstance(key, str) or "result_pickle" not in record:
                continue  # failed/cancelled events never shortcut a resume
            survivors[key] = line  # newest record per key wins
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{self._path.name}.", suffix=".tmp", dir=self._path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for line in survivors.values():
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self._path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self._handle is not None:
            self._handle.close()
            self._handle = open(self._path, "a", encoding="utf-8")
        self._size = self._path.stat().st_size
        return len(survivors)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @staticmethod
    def read_records(path: PathLike) -> List[Dict[str, Any]]:
        """Every whole record in the journal, oldest first.

        A torn final line (crash mid-append) is skipped; a torn line
        *followed by* further complete records is corruption and raises.
        Records from another ``schema_version`` raise
        :class:`~repro.errors.ProtocolError` with both versions named.
        """
        return [record for record, _line in _iter_journal_lines(path, strict=True)]

    @classmethod
    def replay_into(cls, path: PathLike, cache: ResultCache) -> int:
        """Feed journaled results into ``cache``; returns entries restored.

        The resume path: after replay, any job whose ``cache_key`` was
        journaled as ``completed`` / ``cache-hit`` answers from cache, so a
        re-submitted sweep re-runs only the jobs the crash lost.  Records
        without a decodable result (failed, cancelled, corrupt payload) are
        skipped — those jobs simply execute again.
        """
        restored = 0
        for record in cls.read_records(path):
            key = record.get("cache_key")
            if not isinstance(key, str):
                continue
            result = decode_result(record)
            if result is None:
                continue
            cache.put(key, result)
            restored += 1
        return restored


def _iter_journal_lines(
    path: PathLike, strict: bool = False
) -> Iterator[Tuple[Dict[str, Any], str]]:
    """Yield (record, raw line) pairs; schema-checked, torn-tail tolerant.

    With ``strict`` a torn line that is *not* the final one raises (the
    journal was corrupted, not merely crash-truncated); without it any
    unparsable line is skipped, which is what compaction wants.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return
    lines = raw.split("\n")
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if strict and index < len(lines) - 1:
                raise ProtocolError(
                    f"journal '{path}' line {index + 1} is corrupt (not a "
                    "torn final line); refusing to resume from it"
                ) from None
            continue  # torn tail from a crash mid-append: not yet durable
        if not isinstance(record, dict):
            if strict:
                raise ProtocolError(
                    f"journal '{path}' line {index + 1} is not a JSON object"
                )
            continue
        protocol.check_schema(record, source=f"journal '{path}' line {index + 1}")
        yield record, line
