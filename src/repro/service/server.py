"""The simulation server: one shared runner, many streaming clients.

:class:`SimulationServer` hosts a single
:class:`~repro.runner.SimulationRunner` behind an asyncio TCP endpoint
speaking the JSONL protocol of :mod:`repro.service.protocol`.  Because every
client's jobs funnel through one runner and one content-addressed cache,
**cross-client deduplication is free**: identical requests from different
clients collide on their ``cache_key`` — answered from cache when warm, and
held back while an identical job is executing for another client so the
second client's copy resolves as a cache hit instead of a re-simulation.

Layering, top to bottom:

* **Connections** (:class:`_Connection`) — one reader coroutine parsing
  requests, one writer task draining a per-client outbox queue.  Backend
  completion threads publish into the outbox via
  ``loop.call_soon_threadsafe``, so the event loop stays single-threaded.
* **Admission** — every ``submit`` passes the
  :class:`~repro.service.admission.AdmissionController` (per-client quota +
  server-wide bound; refusals become wire ``rejected`` records) and then
  queues on a :class:`~repro.service.admission.RoundRobinQueue`.  The
  dispatcher drains that queue one batch per client per turn with at most
  ``max_active_requests`` batches in the runner at once, so a saturating
  client cannot starve a light one.
* **Execution** — a dispatched batch is submitted to the shared runner from
  an executor thread (which also drives passive serial futures), with a
  per-request event listener forwarding every terminal
  :class:`~repro.runner.RunnerEvent` to the owning client as a wire
  ``event`` record and appending it to the journal.
* **Durability** — with a journal configured, every terminal event is
  fsync'd to JSONL (:class:`~repro.service.journal.EventJournal`);
  ``resume=True`` replays an existing journal into the result cache at
  startup, so a server restarted after a crash answers already-finished
  jobs from cache and a re-submitted sweep re-runs only the missing ones.
* **Shutdown** — :meth:`stop` stops accepting connections, refuses new
  submits (``rejected`` / ``shutting-down``), drains every queued and
  in-flight batch to completion, notifies connected clients with a
  ``shutdown`` record, then closes the journal (and the runner, when the
  server built it).
"""

from __future__ import annotations

import asyncio
import itertools
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from ..errors import ProtocolError, ReproError, ServiceError
from ..runner import RunnerEvent, SimulationJob, SimulationRunner, get_backend
from ..runner.cache import get_layer_memo
from ..telemetry import get_metrics, get_tracer
from . import protocol
from .admission import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_QUOTA,
    AdmissionController,
    RoundRobinQueue,
)
from .journal import DEFAULT_ROTATE_BYTES, EventJournal, journal_record

PathLike = Union[str, Path]

#: Default TCP port of the `repro-experiments serve` endpoint.
DEFAULT_PORT = 8642

#: Default number of batches concurrently submitted to the shared runner.
#: Small enough that round-robin order governs dispatch under backlog (the
#: fairness story), large enough to overlap independent clients' work.
DEFAULT_MAX_ACTIVE_REQUESTS = 4

_CLOSE = object()  # outbox sentinel terminating a connection's writer task


@dataclass
class _PendingRequest:
    """One admitted ``submit`` batch, queued for dispatch."""

    conn: "_Connection"
    client_id: str
    request_id: str
    jobs: List[SimulationJob] = field(default_factory=list)
    span: Optional[Any] = None  # open "request" tracing span (tracing on only)


class _Connection:
    """Server-side state of one client connection."""

    _ids = itertools.count(1)

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.client_id = f"conn-{next(self._ids)}"
        self.outbox: "asyncio.Queue[Any]" = asyncio.Queue()
        self.writer_task: Optional[asyncio.Task] = None
        self.closed = False

    def push(self, record: Dict[str, Any]) -> None:
        """Enqueue a record for delivery (loop thread only; drops if closed)."""
        if not self.closed:
            self.outbox.put_nowait(record)

    async def write_loop(self) -> None:
        """Drain the outbox onto the socket until the close sentinel."""
        while True:
            record = await self.outbox.get()
            if record is _CLOSE:
                return
            try:
                self.writer.write(protocol.encode(record))
                await self.writer.drain()
            except (ConnectionError, OSError):
                # Client vanished mid-push.  Its jobs keep running — results
                # still land in the shared cache and the journal — but there
                # is no one left to narrate to.
                self.closed = True
                return

    async def close(self) -> None:
        """Flush queued records, then close the socket (idempotent)."""
        if self.writer_task is not None and not self.writer_task.done():
            self.outbox.put_nowait(_CLOSE)
            await self.writer_task
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class SimulationServer:
    """A long-running simulation service over one shared runner.

    Parameters
    ----------
    host, port:
        TCP endpoint.  ``port=0`` binds an ephemeral port; read the bound
        one from :attr:`port` after :meth:`start`.
    runner:
        The shared :class:`SimulationRunner`.  When omitted the server
        builds its own on the named ``backend`` (default ``asyncio`` — the
        event-driven backend is the service's natural host) with an
        in-memory cache; pass a runner with a
        :class:`~repro.runner.DiskResultCache` to share warm results with a
        worker fleet.
    quota, queue_limit:
        Admission-control bounds: per-client and server-wide in-flight jobs.
    max_active_requests:
        Batches concurrently submitted to the runner; queued batches beyond
        this drain in round-robin client order.
    journal_path:
        JSONL journal of terminal job events (durability + resume).  With
        ``resume=True`` an existing journal is replayed into the result
        cache before serving (:attr:`restored_entries` reports how many).
    heartbeat_seconds:
        Interval of the periodic heartbeat line on stderr (uptime, jobs
        done, queue depth).  ``0`` disables the heartbeat (and the startup
        banner stays — it prints once from :meth:`start`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        runner: Optional[SimulationRunner] = None,
        backend: str = "asyncio",
        max_workers: Optional[int] = None,
        quota: int = DEFAULT_QUOTA,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_active_requests: int = DEFAULT_MAX_ACTIVE_REQUESTS,
        journal_path: Optional[PathLike] = None,
        resume: bool = False,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        heartbeat_seconds: float = 60.0,
    ) -> None:
        if max_active_requests <= 0:
            raise ServiceError(
                f"max_active_requests must be > 0, got {max_active_requests}"
            )
        self._host = host
        self._requested_port = port
        self._owns_runner = runner is None
        self._runner = runner if runner is not None else SimulationRunner(
            backend=get_backend(backend, max_workers=max_workers)
        )
        self._admission = AdmissionController(quota=quota, queue_limit=queue_limit)
        self._max_active = max_active_requests
        self.restored_entries = 0
        if journal_path is not None and resume:
            if self._runner.cache is None:
                raise ServiceError(
                    "--resume needs a result cache to replay the journal into; "
                    "the runner was built with use_cache=False"
                )
            if Path(journal_path).exists():
                self.restored_entries = EventJournal.replay_into(
                    journal_path, self._runner.cache
                )
        self._journal = (
            EventJournal(journal_path, rotate_bytes=rotate_bytes)
            if journal_path is not None
            else None
        )
        # Executor driving runner submissions (and passive serial futures):
        # one thread per active request slot keeps `max_active_requests` an
        # honest bound rather than fighting the default executor's sizing.
        self._executor = ThreadPoolExecutor(
            max_workers=max_active_requests, thread_name_prefix="repro-service"
        )

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._bound_port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._connections: Set[_Connection] = set()
        self._rr: "RoundRobinQueue[_PendingRequest]" = RoundRobinQueue()
        self._dispatch_cond: Optional[asyncio.Condition] = None
        self._dispatch_task: Optional[asyncio.Task] = None
        self._request_tasks: Set[asyncio.Task] = set()
        self._inflight_keys: Dict[str, asyncio.Event] = {}
        self._active = 0
        self._stopping = False
        self._stopped = False
        # Telemetry: lifetime counters (jobs_done updated from backend
        # threads, hence the lock) and the heartbeat task.
        self._heartbeat_seconds = heartbeat_seconds
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._started_at: Optional[float] = None
        self._counts_lock = threading.Lock()
        self._jobs_done = 0
        self._requests_done = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def runner(self) -> SimulationRunner:
        return self._runner

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful once started)."""
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the endpoint and start dispatching (call once, on a loop)."""
        if self._server is not None:
            raise ServiceError("server is already started")
        self._loop = asyncio.get_running_loop()
        self._dispatch_cond = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        restored = (
            f", restored {self.restored_entries} journal entries"
            if self.restored_entries
            else ""
        )
        print(
            f"repro-service: listening on {self._host}:{self._bound_port} "
            f"(schema v{protocol.SCHEMA_VERSION}, backend="
            f"{self._runner.backend.name}, quota={self._admission.quota}, "
            f"queue-limit={self._admission.queue_limit}{restored})",
            file=sys.stderr,
        )
        self._dispatch_task = asyncio.create_task(self._dispatch_loop())
        if self._heartbeat_seconds > 0:
            self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())

    async def serve_forever(self) -> None:
        """Convenience: :meth:`start` then serve until cancelled."""
        await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: refuse new work, drain in-flight jobs, close."""
        if self._stopped:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._dispatch_cond is not None
        async with self._dispatch_cond:
            self._dispatch_cond.notify_all()
            # Drain: every admitted batch — queued or executing — completes.
            await self._dispatch_cond.wait_for(
                lambda: not len(self._rr) and self._active == 0
            )
        if self._dispatch_task is not None:
            await self._dispatch_task
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)
        for conn in list(self._connections):
            conn.push(protocol.shutdown_record())
            await conn.close()
        self._connections.clear()
        if self._journal is not None:
            self._journal.close()
        self._executor.shutdown(wait=True)
        if self._owns_runner:
            # runner.close() joins backend threads; keep the loop responsive.
            await asyncio.get_running_loop().run_in_executor(
                None, self._runner.close
            )
        self._stopped = True

    # -- threaded wrapper (tests, the CLI's `serve` verb) ---------------
    def start_in_thread(self) -> None:
        """Run the server on a dedicated event-loop thread; returns when bound."""
        if self._thread is not None:
            raise ServiceError("server thread is already running")
        started = threading.Event()
        failure: List[BaseException] = []

        def main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # bind failure: surface to caller
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=main, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Thread-safe graceful stop of a :meth:`start_in_thread` server."""
        if self._thread is None or self._loop is None:
            return
        asyncio.run_coroutine_threadsafe(self.stop(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "SimulationServer":
        self.start_in_thread()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        try:
            if not await self._handshake(conn):
                return
            conn.writer_task = asyncio.create_task(conn.write_loop())
            conn.push(
                protocol.welcome_record(
                    self._admission.quota, self._admission.queue_limit
                )
            )
            await self._read_loop(conn)
        finally:
            await conn.close()
            self._connections.discard(conn)

    async def _handshake(self, conn: _Connection) -> bool:
        """Read and validate the ``hello``; False closes the connection."""
        line = await conn.reader.readline()
        if not line:
            return False
        try:
            record = protocol.decode(line)
            if record.get("type") != "hello":
                raise ProtocolError(
                    f"first record must be 'hello', got {record.get('type')!r}"
                )
            protocol.check_schema(record, source="hello record")
        except ProtocolError as exc:
            code = (
                protocol.REJECT_SCHEMA_MISMATCH
                if "schema_version" in str(exc)
                else protocol.REJECT_BAD_REQUEST
            )
            try:
                conn.writer.write(
                    protocol.encode(protocol.rejected_record(code, str(exc)))
                )
                await conn.writer.drain()
            except (ConnectionError, OSError):
                pass
            return False
        client = record.get("client")
        if isinstance(client, str) and client:
            conn.client_id = client
        return True

    async def _read_loop(self, conn: _Connection) -> None:
        while True:
            line = await conn.reader.readline()
            if not line:
                return  # client vanished; its in-flight jobs keep running
            try:
                record = protocol.decode(line)
                protocol.check_schema(record, source="request record")
            except ProtocolError as exc:
                conn.push(protocol.error_record(str(exc)))
                continue
            request_type = record.get("type")
            if request_type == "bye":
                conn.push(protocol.goodbye_record())
                return
            if request_type == "stats":
                conn.push(protocol.stats_record(self._stats_payload()))
                continue
            if request_type == "submit":
                await self._handle_submit(conn, record)
            else:
                conn.push(
                    protocol.error_record(
                        f"unknown request type {request_type!r}"
                    )
                )

    async def _handle_submit(
        self, conn: _Connection, record: Dict[str, Any]
    ) -> None:
        raw_id = record.get("request_id")
        fallback_id = raw_id if isinstance(raw_id, str) else None
        try:
            request_id, specs = protocol.parse_submit(record)
            jobs = [spec.build() for spec in specs]
        except (ProtocolError, ReproError, TypeError, ValueError) as exc:
            conn.push(
                protocol.rejected_record(
                    protocol.REJECT_BAD_REQUEST, str(exc), fallback_id
                )
            )
            return
        tracer = get_tracer()
        span = None
        if tracer is not None:
            span = tracer.begin(
                "request",
                client=conn.client_id,
                request_id=request_id,
                jobs=len(jobs),
            )
        if self._stopping:
            conn.push(
                protocol.rejected_record(
                    protocol.REJECT_SHUTTING_DOWN,
                    "server is draining and accepts no new work",
                    request_id,
                )
            )
            if span is not None:
                tracer.end(span, outcome="rejected", code=protocol.REJECT_SHUTTING_DOWN)
            return
        admission_span = (
            tracer.begin("admission", parent_id=span.span_id)
            if tracer is not None
            else None
        )
        refusal = self._admission.try_admit(conn.client_id, len(jobs))
        if admission_span is not None:
            tracer.end(admission_span, admitted=refusal is None)
        if refusal is not None:
            code, reason = refusal
            conn.push(protocol.rejected_record(code, reason, request_id))
            if span is not None:
                tracer.end(span, outcome="rejected", code=code)
            return
        conn.push(protocol.accepted_record(request_id, len(jobs)))
        pending = _PendingRequest(conn, conn.client_id, request_id, jobs, span=span)
        assert self._dispatch_cond is not None
        async with self._dispatch_cond:
            self._rr.push(conn.client_id, pending)
            self._update_queue_gauges()
            self._dispatch_cond.notify_all()

    # ------------------------------------------------------------------
    # Dispatch and execution
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._dispatch_cond is not None
        while True:
            async with self._dispatch_cond:
                await self._dispatch_cond.wait_for(
                    lambda: (len(self._rr) and self._active < self._max_active)
                    or (self._stopping and not len(self._rr))
                )
                if not len(self._rr):
                    return  # stopping, queue fully drained
                _client, pending = self._rr.pop()
                self._active += 1
                self._update_queue_gauges()
            task = asyncio.create_task(self._run_request(pending))
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)

    async def _run_request(self, pending: _PendingRequest) -> None:
        loop = asyncio.get_running_loop()
        keys = {job.cache_key for job in pending.jobs}
        tracer = get_tracer()
        dispatch_span = (
            tracer.begin(
                "dispatch",
                parent_id=pending.span.span_id if pending.span else None,
                jobs=len(pending.jobs),
            )
            if tracer is not None
            else None
        )
        started = time.monotonic()
        outcome = "done"
        try:
            # Cross-client dedup for *concurrent* identical work: while
            # another request is executing any of our cache keys, hold this
            # batch back — when it proceeds, the shared cache answers those
            # jobs as hits instead of re-simulating them.
            while True:
                conflicts = [
                    self._inflight_keys[key]
                    for key in keys
                    if key in self._inflight_keys
                ]
                if not conflicts:
                    break
                await conflicts[0].wait()
            for key in keys:
                self._inflight_keys[key] = asyncio.Event()
            try:
                forwarded = asyncio.Event()
                listener = self._make_listener(pending, forwarded)
                counts = await loop.run_in_executor(
                    self._executor, self._execute, pending.jobs, listener
                )
                # The runner hands completions to as_completed() while the
                # final listener may still be journaling on a backend thread;
                # wait until every terminal event record has been forwarded
                # so `done` is always the last record of the batch.
                await forwarded.wait()
                pending.conn.push(
                    protocol.done_record(pending.request_id, counts)
                )
            finally:
                for key in keys:
                    event = self._inflight_keys.pop(key, None)
                    if event is not None:
                        event.set()
        except Exception as exc:  # defensive: a batch must always conclude
            outcome = "error"
            pending.conn.push(
                protocol.error_record(
                    f"request '{pending.request_id}' failed internally: {exc}"
                )
            )
        finally:
            self._admission.release(pending.client_id, len(pending.jobs))
            if tracer is not None:
                if dispatch_span is not None:
                    tracer.end(dispatch_span, outcome=outcome)
                if pending.span is not None:
                    tracer.end(pending.span, outcome=outcome)
            registry = get_metrics()
            if registry is not None:
                registry.counter("service.requests.done").inc()
                registry.histogram("service.request_latency_seconds").observe(
                    time.monotonic() - started
                )
            with self._counts_lock:
                self._requests_done += 1
            assert self._dispatch_cond is not None
            async with self._dispatch_cond:
                self._active -= 1
                self._update_queue_gauges()
                self._dispatch_cond.notify_all()

    # ------------------------------------------------------------------
    # Telemetry surfacing
    # ------------------------------------------------------------------
    def _update_queue_gauges(self) -> None:
        """Refresh the queue/active gauges (call with dispatch state settled)."""
        registry = get_metrics()
        if registry is None:
            return
        registry.gauge("service.queue_depth").set(len(self._rr))
        registry.gauge("service.active_requests").set(self._active)

    def _stats_payload(self) -> Dict[str, Any]:
        """The server's telemetry snapshot (the ``stats`` record's payload).

        Everything in one atomic-ish read: identity and uptime, live
        queue/connection state, lifetime request/job counters, the shared
        runner's cache accounting, the layer memo's accounting (when
        enabled), and the full metrics-registry snapshot (when metrics are
        enabled).  Consumed by the wire ``stats`` request and the CLI's
        ``stats`` verb.
        """
        with self._counts_lock:
            jobs_done = self._jobs_done
            requests_done = self._requests_done
        payload: Dict[str, Any] = {
            "server": protocol.SERVER_ID,
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "connections": len(self._connections),
            "queue_depth": len(self._rr),
            "active_requests": self._active,
            "requests_done": requests_done,
            "jobs_done": jobs_done,
            "restored_entries": self.restored_entries,
            "cache": self._runner.stats.as_dict(),
        }
        memo = get_layer_memo()
        if memo is not None:
            payload["layer_memo"] = memo.stats.as_dict()
        registry = get_metrics()
        if registry is not None:
            payload["metrics"] = registry.snapshot()
        return payload

    async def _heartbeat_loop(self) -> None:
        """Print a one-line liveness heartbeat to stderr every interval."""
        assert self._started_at is not None
        while True:
            await asyncio.sleep(self._heartbeat_seconds)
            with self._counts_lock:
                jobs_done = self._jobs_done
            uptime = time.monotonic() - self._started_at
            print(
                f"repro-service: heartbeat uptime={uptime:.0f}s "
                f"jobs_done={jobs_done} queue_depth={len(self._rr)} "
                f"active={self._active} connections={len(self._connections)}",
                file=sys.stderr,
            )

    def _execute(self, jobs: List[SimulationJob], listener) -> Dict[str, int]:
        """Submit and drain one batch (executor thread; drives serial futures)."""
        handle = self._runner.submit(jobs, on_event=listener)
        for _completion in handle.as_completed(raise_on_error=False):
            pass
        return handle.counts()

    def _make_listener(self, pending: _PendingRequest, forwarded: asyncio.Event):
        """Per-request runner listener: journal + forward terminal events.

        Called from whatever thread the backend completes jobs on; hands the
        wire record to the loop thread via ``call_soon_threadsafe``.  Sets
        ``forwarded`` (on the loop) once every job's terminal event has been
        pushed — the event grammar guarantees exactly one per job — so the
        batch's ``done`` record can be sequenced after the last event record.
        """
        loop = self._loop
        assert loop is not None
        lock = threading.Lock()
        state = {"remaining": len(pending.jobs)}

        def listener(event: RunnerEvent) -> None:
            if not event.is_terminal:
                return
            with self._counts_lock:
                self._jobs_done += 1
            registry = get_metrics()
            if registry is not None:
                registry.counter("service.jobs.done").inc()
            if self._journal is not None:
                try:
                    self._journal.append(
                        journal_record(event, pending.request_id)
                    )
                except Exception as exc:
                    # Journal failure must not fail the batch; it only costs
                    # resumability.  Say so instead of dying silently.
                    print(
                        f"repro-service: journal append failed: {exc}",
                        file=sys.stderr,
                    )
            record = protocol.event_record(event, pending.request_id)
            try:
                loop.call_soon_threadsafe(pending.conn.push, record)
            except RuntimeError:
                return  # loop already closed (shutdown race): nothing to narrate
            with lock:
                state["remaining"] -= 1
                last = state["remaining"] == 0
            if last:
                try:
                    loop.call_soon_threadsafe(forwarded.set)
                except RuntimeError:
                    pass

        return listener
