"""repro - a reproduction of GANAX (ISCA 2018) as a Python library.

GANAX is a unified MIMD-SIMD accelerator for Generative Adversarial Networks.
This package implements, from scratch:

* the neural-network substrate (layers, shapes, functional reference,
  structural zero analysis) and the six GAN workloads the paper evaluates,
* an EYERISS-style row-stationary baseline accelerator model,
* the GANAX architecture itself: the reorganized dataflow, the uop ISA, the
  decoupled access-execute processing engines, the hierarchical uop buffers,
  a cycle-level machine, and an analytical performance/energy model,
* the analysis and experiment harness that regenerates every table and figure
  of the paper's evaluation section,
* a pluggable accelerator registry (:mod:`repro.accelerators`) with variants
  beyond the paper's pair — ``ganax-noskip`` (zero skipping disabled) and
  ``ideal`` (consequential-MACs roofline) — and the :class:`Session` facade
  for N-way comparisons across any registered set of architecture points,
* a pluggable **workload registry** (:mod:`repro.workloads`) mirroring the
  accelerator one: register custom GANs, or address parameterized workload
  *families* via spec strings — ``dcgan@32x32``, ``artgan@ch128``,
  ``synthetic@d8c256`` (a stress-generator family with depth / channel /
  stride / zero-density knobs) — anywhere a model name is accepted,
* a design-space exploration engine (:mod:`repro.dse`): ``config_space()``-
  driven search spaces, exhaustive/random/hill-climb strategies and Pareto
  frontiers over speedup, energy and area (``Session.explore``,
  ``repro-experiments dse``), including exploration targeted at a whole
  workload family,
* a **streaming execution API** (:mod:`repro.runner`): ``submit()`` returns a
  :class:`~repro.runner.BatchHandle` whose ``as_completed()`` yields results
  as they land, with a typed :class:`~repro.runner.RunnerEvent` stream for
  live progress, three pluggable backends (serial, process-pool, asyncio),
  and streaming consumers all the way up — ``Session.stream_compare``,
  ``ParameterSweep.iter_points``, the CLI's ``--progress`` / ``--jsonl``,
* a **simulation service** (:mod:`repro.service`): a multi-client streaming
  TCP server over one shared runner — versioned JSONL protocol, per-client
  admission control, cross-client dedup, durable event journal with crash
  resume — via ``repro-experiments serve`` / ``remote-compare`` or
  :class:`repro.service.SimulationServer` / :class:`repro.service.Client`
  in-process (see ``repro/service/README.md``),
* a **unified telemetry layer** (:mod:`repro.telemetry`): hierarchical
  tracing spans (``batch -> job -> simulate_layers -> layer-memo``;
  ``request -> admission -> dispatch`` in the service) exportable as Chrome
  trace-event JSON or JSONL, an always-on process metrics registry
  (counters/gauges/histograms with an atomic ``snapshot()``), and profiling
  hooks — surfaced as ``--trace`` / ``--metrics`` / ``--cache-stats`` and
  the ``stats`` verb on the CLI (see ``repro/telemetry/README.md``)::

      from repro.telemetry import configure_tracing, get_metrics

      tracer = configure_tracing()   # opt-in; metrics are on by default
      # ... run comparisons ...
      tracer.export("trace.json")    # open in Perfetto
      print(get_metrics().snapshot()["counters"])

* a **static µop-program verifier** (:mod:`repro.staticcheck`): an abstract
  interpreter over compiled :class:`~repro.isa.MicroProgram` streams that
  models the access µ-engine state machines and PE buffers (16 checks:
  config definition-before-use, start/stop pairing, address/buffer bounds,
  repeat pairing, encode→decode round-trips, the mode flag, ...), a
  FileCheck-style golden-program harness pinning representative layer
  disassemblies under ``tests/filecheck/``, and repo-invariant AST lints —
  surfaced as the ``check`` / ``lint`` / ``disasm`` CLI verbs and wired
  into ``scripts/ci.sh`` (see ``repro/staticcheck/README.md``).

Verified compilation, in one line — every program of every compilable
layer, both zero-skipping modes, must verify clean::

    from repro.staticcheck import run_check_grid

    report = run_check_grid(accelerators=("eyeriss", "ganax"))
    assert report.ok, report.findings

Quick start — the paper's two-point comparison::

    from repro import compare_model, get_workload

    comparison = compare_model(get_workload("DCGAN"))
    print(comparison.generator_speedup)          # speedup over EYERISS
    print(comparison.generator_energy_reduction) # energy reduction over EYERISS

N-way comparison across every registered accelerator, mixing a paper
workload with synthetic stress scenarios from the workload families::

    from repro import Session
    from repro.accelerators import accelerator_names

    session = Session(accelerators=accelerator_names())
    multi = session.compare(["DCGAN", "synthetic@d8c256", "synthetic@d8c256z100"])
    print(multi["DCGAN"].generator_speedups())   # per-accelerator, vs eyeriss
    print(multi["synthetic@d8c256z100"].generator_speedups())

Streaming the same comparison — each model's row arrives the moment its
simulations finish, instead of with the slowest model::

    session = Session(accelerators=accelerator_names())
    for name, multi in session.stream_compare(["DCGAN", "ArtGAN", "MAGAN"]):
        print(name, multi.generator_speedups())  # cache hits arrive first

Registering a custom accelerator or workload makes it addressable everywhere
a name is accepted (jobs, sessions, sweeps, the CLI) — see
``repro/runner/README.md`` and ``repro/workloads/README.md``.
"""

from .accelerators import (
    AcceleratorModel,
    AcceleratorSpec,
    accelerator_names,
    create_accelerator,
    get_accelerator,
    register_accelerator,
)
from .analysis import (
    ComparisonResult,
    GanResult,
    LayerResult,
    MultiComparison,
    NetworkResult,
    compare_accelerators,
    compare_model,
    compare_models,
)
from .baseline import EyerissSimulator
from .config import ArchitectureConfig, SimulationOptions
from .core import (
    DataflowSchedule,
    GanaxLayerExecutor,
    GanaxMachine,
    GanaxSimulator,
    StridedIndexGenerator,
    build_schedule,
)
from .dse import (
    DesignPoint,
    DesignSpace,
    DesignSpaceExplorer,
    ExplorationResult,
    ParetoFrontier,
    explore,
)
from .errors import ReproError, UnknownAcceleratorError
from .session import Session
from .hw import AreaModel, EnergyBreakdown, EnergyModel, EnergyTable, EventCounters
from .runner import (
    AsyncioBackend,
    BatchHandle,
    JobCompletion,
    ProcessPoolBackend,
    RunnerEvent,
    SerialBackend,
    SimulationJob,
    SimulationRunner,
    get_default_runner,
    set_default_runner,
)
from .nn import (
    ConvLayer,
    FeatureMapShape,
    GANModel,
    Network,
    TransposedConvLayer,
)
from .workloads import (
    WorkloadFamily,
    WorkloadSpec,
    all_workloads,
    get_workload,
    get_workload_family,
    register_workload,
    register_workload_family,
    resolve_workload,
    workload_families,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratorModel",
    "AcceleratorSpec",
    "accelerator_names",
    "create_accelerator",
    "get_accelerator",
    "register_accelerator",
    "ComparisonResult",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "ParetoFrontier",
    "explore",
    "GanResult",
    "LayerResult",
    "MultiComparison",
    "NetworkResult",
    "Session",
    "UnknownAcceleratorError",
    "compare_accelerators",
    "compare_model",
    "compare_models",
    "EyerissSimulator",
    "ArchitectureConfig",
    "SimulationOptions",
    "DataflowSchedule",
    "GanaxLayerExecutor",
    "GanaxMachine",
    "GanaxSimulator",
    "StridedIndexGenerator",
    "build_schedule",
    "ReproError",
    "AreaModel",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyTable",
    "EventCounters",
    "AsyncioBackend",
    "BatchHandle",
    "JobCompletion",
    "ProcessPoolBackend",
    "RunnerEvent",
    "SerialBackend",
    "SimulationJob",
    "SimulationRunner",
    "get_default_runner",
    "set_default_runner",
    "ConvLayer",
    "FeatureMapShape",
    "GANModel",
    "Network",
    "TransposedConvLayer",
    "WorkloadFamily",
    "WorkloadSpec",
    "all_workloads",
    "get_workload",
    "get_workload_family",
    "register_workload",
    "register_workload_family",
    "resolve_workload",
    "workload_families",
    "workload_names",
    "__version__",
]
