"""repro - a reproduction of GANAX (ISCA 2018) as a Python library.

GANAX is a unified MIMD-SIMD accelerator for Generative Adversarial Networks.
This package implements, from scratch:

* the neural-network substrate (layers, shapes, functional reference,
  structural zero analysis) and the six GAN workloads the paper evaluates,
* an EYERISS-style row-stationary baseline accelerator model,
* the GANAX architecture itself: the reorganized dataflow, the uop ISA, the
  decoupled access-execute processing engines, the hierarchical uop buffers,
  a cycle-level machine, and an analytical performance/energy model,
* the analysis and experiment harness that regenerates every table and figure
  of the paper's evaluation section.

Quick start::

    from repro import compare_model, get_workload

    comparison = compare_model(get_workload("DCGAN"))
    print(comparison.generator_speedup)          # speedup over EYERISS
    print(comparison.generator_energy_reduction) # energy reduction over EYERISS
"""

from .analysis import (
    ComparisonResult,
    GanResult,
    LayerResult,
    NetworkResult,
    compare_model,
    compare_models,
)
from .baseline import EyerissSimulator
from .config import ArchitectureConfig, SimulationOptions
from .core import (
    DataflowSchedule,
    GanaxLayerExecutor,
    GanaxMachine,
    GanaxSimulator,
    StridedIndexGenerator,
    build_schedule,
)
from .errors import ReproError
from .hw import AreaModel, EnergyBreakdown, EnergyModel, EnergyTable, EventCounters
from .runner import (
    ProcessPoolBackend,
    SerialBackend,
    SimulationJob,
    SimulationRunner,
    get_default_runner,
    set_default_runner,
)
from .nn import (
    ConvLayer,
    FeatureMapShape,
    GANModel,
    Network,
    TransposedConvLayer,
)
from .workloads import all_workloads, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "ComparisonResult",
    "GanResult",
    "LayerResult",
    "NetworkResult",
    "compare_model",
    "compare_models",
    "EyerissSimulator",
    "ArchitectureConfig",
    "SimulationOptions",
    "DataflowSchedule",
    "GanaxLayerExecutor",
    "GanaxMachine",
    "GanaxSimulator",
    "StridedIndexGenerator",
    "build_schedule",
    "ReproError",
    "AreaModel",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyTable",
    "EventCounters",
    "ProcessPoolBackend",
    "SerialBackend",
    "SimulationJob",
    "SimulationRunner",
    "get_default_runner",
    "set_default_runner",
    "ConvLayer",
    "FeatureMapShape",
    "GANModel",
    "Network",
    "TransposedConvLayer",
    "all_workloads",
    "get_workload",
    "workload_names",
    "__version__",
]
