"""Area model based on Table III of the paper.

Table III reports the area of every major hardware unit of a GANAX PE and of
the full accelerator in TSMC 45 nm, and states that GANAX carries an area
overhead of roughly 7.8% over an EYERISS baseline with the same number of PEs
and the same on-chip memory.  The GANAX-specific additions inside each PE are
the strided µindex generators and the local µop buffer share; at the top level
GANAX adds the global µop buffer.

:class:`AreaModel` reconstructs both accelerators' areas from the per-unit
numbers so the reproduction can regenerate Table III and the overhead figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PeAreaBreakdown:
    """Area of the units inside one processing engine (um^2, TSMC 45 nm)."""

    input_register: float = 766.9
    partial_sum_register: float = 1533.7
    weight_sram: float = 14378.7
    multiply_accumulate: float = 2875.7
    non_linear_function: float = 95.9
    strided_index_generator: float = 479.3
    local_uop_buffer: float = 958.6
    io_fifos: float = 5026.8
    pe_controller: float = 3356.0

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 0:
                raise ConfigurationError(f"PE area component {name} cannot be negative")

    def as_dict(self) -> Dict[str, float]:
        return {
            "input_register": self.input_register,
            "partial_sum_register": self.partial_sum_register,
            "weight_sram": self.weight_sram,
            "multiply_accumulate": self.multiply_accumulate,
            "non_linear_function": self.non_linear_function,
            "strided_index_generator": self.strided_index_generator,
            "local_uop_buffer": self.local_uop_buffer,
            "io_fifos": self.io_fifos,
            "pe_controller": self.pe_controller,
        }

    @property
    def total(self) -> float:
        """Total area of one GANAX PE."""
        return sum(self.as_dict().values())

    #: Fraction of the I/O FIFO area attributed to the address FIFOs that the
    #: decoupled access-execute design adds on top of an EYERISS-style PE
    #: (which only needs data-in/data-out queues).  One of the four FIFO
    #: groups (input-addr, weight-addr, output-addr vs data I/O) per stream is
    #: GANAX-specific; with this share the reconstructed overhead matches the
    #: paper's reported ~7.8%.
    ADDRESS_FIFO_FRACTION = 0.25

    @property
    def ganax_specific(self) -> float:
        """Area added by GANAX inside each PE.

        The strided µindex generators and the local µop buffer exist only in
        GANAX; the address FIFOs of the decoupled access-execute design add a
        share of the I/O FIFO area relative to an EYERISS-style PE.
        """
        return (
            self.strided_index_generator
            + self.local_uop_buffer
            + self.io_fifos * self.ADDRESS_FIFO_FRACTION
        )

    @property
    def baseline_total(self) -> float:
        """Area of an EYERISS-style PE without the GANAX additions."""
        return self.total - self.ganax_specific

    def fractions(self) -> Dict[str, float]:
        """Per-unit fraction of the PE area (the '%' column of Table III)."""
        total = self.total
        return {name: value / total for name, value in self.as_dict().items()}


@dataclass(frozen=True)
class AcceleratorAreaBreakdown:
    """Top-level area components outside the PE array (um^2, TSMC 45 nm)."""

    global_uop_buffer: float = 9585.8
    global_data_buffer: float = 1102366.9
    global_instruction_buffer: float = 275591.7
    noc_and_config: float = 115029.6
    global_controller: float = 19171.6

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 0:
                raise ConfigurationError(f"area component {name} cannot be negative")

    def as_dict(self) -> Dict[str, float]:
        return {
            "global_uop_buffer": self.global_uop_buffer,
            "global_data_buffer": self.global_data_buffer,
            "global_instruction_buffer": self.global_instruction_buffer,
            "noc_and_config": self.noc_and_config,
            "global_controller": self.global_controller,
        }

    @property
    def total(self) -> float:
        return sum(self.as_dict().values())

    @property
    def ganax_specific(self) -> float:
        """Top-level area added by GANAX (the global µop buffer)."""
        return self.global_uop_buffer


class AreaModel:
    """Full-accelerator area model reproducing Table III."""

    def __init__(
        self,
        num_pes: int = 256,
        pe_area: PeAreaBreakdown | None = None,
        top_area: AcceleratorAreaBreakdown | None = None,
    ) -> None:
        if num_pes <= 0:
            raise ConfigurationError("num_pes must be positive")
        self._num_pes = num_pes
        self._pe_area = pe_area or PeAreaBreakdown()
        self._top_area = top_area or AcceleratorAreaBreakdown()

    @property
    def num_pes(self) -> int:
        return self._num_pes

    @property
    def pe_area(self) -> PeAreaBreakdown:
        return self._pe_area

    @property
    def top_area(self) -> AcceleratorAreaBreakdown:
        return self._top_area

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def pe_array_area_um2(self, ganax: bool = True) -> float:
        """Area of the full PE array, with or without GANAX additions."""
        per_pe = self._pe_area.total if ganax else self._pe_area.baseline_total
        return per_pe * self._num_pes

    def total_area_um2(self, ganax: bool = True) -> float:
        """Total accelerator area."""
        top = self._top_area.total
        if not ganax:
            top -= self._top_area.ganax_specific
        return self.pe_array_area_um2(ganax=ganax) + top

    def total_area_mm2(self, ganax: bool = True) -> float:
        """Total accelerator area in mm^2."""
        return self.total_area_um2(ganax=ganax) * 1e-6

    def ganax_overhead_fraction(self) -> float:
        """Fractional area overhead of GANAX over the EYERISS baseline.

        The paper reports roughly 7.8%.
        """
        baseline = self.total_area_um2(ganax=False)
        ganax = self.total_area_um2(ganax=True)
        return (ganax - baseline) / baseline

    # ------------------------------------------------------------------
    # Table III reconstruction
    # ------------------------------------------------------------------
    def table3_rows(self) -> Tuple[Tuple[str, float, float], ...]:
        """Rows of Table III: (unit name, area um^2, % of its subtotal)."""
        pe = self._pe_area
        pe_rows = [
            ("Input Register", pe.input_register),
            ("Partial Sum Register", pe.partial_sum_register),
            ("Weight SRAM", pe.weight_sram),
            ("Multiply-and-Accumulate", pe.multiply_accumulate),
            ("Non-Linear Function", pe.non_linear_function),
            ("Strided uIndex Generator", pe.strided_index_generator),
            ("Local uOP Buffer", pe.local_uop_buffer),
            ("I/O FIFOs", pe.io_fifos),
            ("PE Controller", pe.pe_controller),
        ]
        rows = [(name, area, area / pe.total) for name, area in pe_rows]
        rows.append(("Total Area / PE", pe.total, 1.0))
        total = self.total_area_um2(ganax=True)
        rows.append(("Total PE Array", self.pe_array_area_um2(True), self.pe_array_area_um2(True) / total))
        top = self._top_area
        for name, area in (
            ("Global uOP Buffer", top.global_uop_buffer),
            ("Global Data Buffer", top.global_data_buffer),
            ("Global Instruction Buffer", top.global_instruction_buffer),
            ("Others (NoC, Config Buffers)", top.noc_and_config),
            ("Global Controller", top.global_controller),
        ):
            rows.append((name, area, area / total))
        rows.append(("GANAX Total Area", total, 1.0))
        return tuple(rows)
