"""Inter-PE network-on-chip (NoC) model.

The GANAX / EYERISS PE array forwards filter rows between vertically adjacent
PEs and accumulates partial sums horizontally across a processing vector
(paper Figures 4-6).  For the reproduction we do not model router
micro-architecture; we count word-hops, which is what the 0.40 pJ/bit
inter-PE communication cost of Table II is charged against, and we expose the
latency of a horizontal accumulation chain, which the performance model uses
for the "five cycles vs two/three cycles" accumulation argument of Section II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import HardwareError
from .counters import EventCounters


@dataclass(frozen=True)
class NocStatistics:
    """Summary of NoC activity."""

    multicast_transfers: int
    psum_transfers: int

    @property
    def total_transfers(self) -> int:
        return self.multicast_transfers + self.psum_transfers


class NocModel:
    """Word-hop counting model of the PE-array interconnect."""

    def __init__(
        self,
        rows: int,
        cols: int,
        counters: Optional[EventCounters] = None,
        name: str = "noc",
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise HardwareError(f"{name}: array dimensions must be positive")
        self._rows = rows
        self._cols = cols
        self._counters = counters
        self._name = name
        self._multicast_transfers = 0
        self._psum_transfers = 0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def statistics(self) -> NocStatistics:
        return NocStatistics(
            multicast_transfers=self._multicast_transfers,
            psum_transfers=self._psum_transfers,
        )

    # ------------------------------------------------------------------
    # Traffic recording
    # ------------------------------------------------------------------
    def multicast(self, words: int, destinations: int) -> None:
        """Record a multicast of ``words`` data words to ``destinations`` PEs.

        The cost model charges one transfer per destination per word, which
        matches the per-hop accounting of a broadcast over a row/column bus.
        """
        if words < 0 or destinations < 0:
            raise HardwareError("multicast words/destinations cannot be negative")
        transfers = words * destinations
        self._multicast_transfers += transfers
        if self._counters is not None:
            self._counters.noc_transfers += transfers

    def forward_psum(self, words: int, hops: int = 1) -> None:
        """Record partial sums forwarded between neighbouring PEs."""
        if words < 0 or hops < 0:
            raise HardwareError("psum words/hops cannot be negative")
        transfers = words * hops
        self._psum_transfers += transfers
        if self._counters is not None:
            self._counters.noc_transfers += transfers

    # ------------------------------------------------------------------
    # Latency helpers
    # ------------------------------------------------------------------
    def accumulation_latency(self, active_pes: int) -> int:
        """Cycles to reduce partial sums across ``active_pes`` PEs in a chain.

        A linear accumulation chain over N active PEs takes N cycles (one
        psum forward+add per hop), which is the quantity the paper's example
        reduces from five to two/three via the GANAX dataflow.
        """
        if active_pes < 0:
            raise HardwareError("active_pes cannot be negative")
        return active_pes

    def reset(self) -> None:
        """Clear accumulated statistics."""
        self._multicast_transfers = 0
        self._psum_transfers = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NocModel(name={self._name!r}, rows={self._rows}, cols={self._cols})"
