"""Off-chip DRAM traffic model.

The paper charges DRAM accesses at 15 pJ/bit (Table II) and notes that the
DDR4 power numbers come from Micron's system power calculator.  For the
reproduction we model DRAM as a bandwidth-limited stream with per-word access
counting:

* the *energy* contribution is proportional to the number of words moved, and
* the *performance* contribution is a roofline bound: a layer can never run
  faster than its DRAM traffic divided by the sustained bandwidth.

The analytical models call :meth:`DramModel.traffic_cycles` with byte counts;
the cycle-level machine streams words through :meth:`read_words` /
:meth:`write_words` so the same counters are used in both paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import HardwareError
from .counters import EventCounters


@dataclass(frozen=True)
class DramTraffic:
    """A summary of DRAM traffic for one layer or one model run."""

    bytes_read: int
    bytes_written: int

    def __post_init__(self) -> None:
        if self.bytes_read < 0 or self.bytes_written < 0:
            raise HardwareError("DRAM traffic cannot be negative")

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def __add__(self, other: "DramTraffic") -> "DramTraffic":
        return DramTraffic(
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )


class DramModel:
    """Bandwidth-limited DRAM model with access counting."""

    def __init__(
        self,
        bandwidth_bytes_per_cycle: float,
        data_bytes: int = 2,
        counters: Optional[EventCounters] = None,
        name: str = "dram",
    ) -> None:
        if bandwidth_bytes_per_cycle <= 0:
            raise HardwareError("DRAM bandwidth must be positive")
        if data_bytes <= 0:
            raise HardwareError("data word size must be positive")
        self._bandwidth = bandwidth_bytes_per_cycle
        self._data_bytes = data_bytes
        self._counters = counters
        self._name = name
        self._bytes_read = 0
        self._bytes_written = 0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def bandwidth_bytes_per_cycle(self) -> float:
        return self._bandwidth

    @property
    def bytes_read(self) -> int:
        return self._bytes_read

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    @property
    def total_bytes(self) -> int:
        return self._bytes_read + self._bytes_written

    # ------------------------------------------------------------------
    # Traffic accounting
    # ------------------------------------------------------------------
    def read_words(self, count: int) -> None:
        """Record ``count`` data words streamed in from DRAM."""
        if count < 0:
            raise HardwareError("cannot read a negative number of words")
        self._bytes_read += count * self._data_bytes
        if self._counters is not None:
            self._counters.dram_reads += count

    def write_words(self, count: int) -> None:
        """Record ``count`` data words streamed out to DRAM."""
        if count < 0:
            raise HardwareError("cannot write a negative number of words")
        self._bytes_written += count * self._data_bytes
        if self._counters is not None:
            self._counters.dram_writes += count

    def record_traffic(self, traffic: DramTraffic) -> None:
        """Record a pre-computed traffic summary (analytical model path)."""
        read_words = traffic.bytes_read // self._data_bytes
        write_words = traffic.bytes_written // self._data_bytes
        self.read_words(read_words)
        self.write_words(write_words)

    # ------------------------------------------------------------------
    # Performance
    # ------------------------------------------------------------------
    def traffic_cycles(self, traffic: Optional[DramTraffic] = None) -> int:
        """Minimum cycles needed to move ``traffic`` (or all recorded traffic).

        This is the roofline bound used by the analytical models:
        ``ceil(total_bytes / bandwidth)``.
        """
        total = traffic.total_bytes if traffic is not None else self.total_bytes
        return int(math.ceil(total / self._bandwidth))

    def reset(self) -> None:
        """Clear traffic totals (counters owned elsewhere are untouched)."""
        self._bytes_read = 0
        self._bytes_written = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DramModel(name={self._name!r}, bandwidth={self._bandwidth} B/cycle, "
            f"read={self._bytes_read} B, written={self._bytes_written} B)"
        )
