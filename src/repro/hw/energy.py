"""Energy model based on Table II of the paper.

Table II reports per-bit energy costs for the major structures (TSMC 45 nm,
numbers aligned with TETRIS/EYERISS): register file 0.20 pJ/bit, 16-bit
fixed-point PE 0.36 pJ/bit, inter-PE communication 0.40 pJ/bit, global buffer
access 1.20 pJ/bit, DDR4 memory access 15.0 pJ/bit.  The PE cost already
includes the strided µindex generators, per the table's caption.

:class:`EnergyModel` converts :class:`~repro.hw.counters.EventCounters`
(events on data words) into an :class:`EnergyBreakdown` in picojoules, using
the configured word width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..errors import ConfigurationError
from .counters import EventCounters

#: Canonical component keys used in breakdowns (Figure 10's categories).
ENERGY_COMPONENTS = ("pe", "rf", "noc", "gbuf", "dram")


@dataclass(frozen=True)
class EnergyTable:
    """Per-bit energy costs (picojoules per bit), Table II of the paper."""

    register_file_pj_per_bit: float = 0.20
    pe_pj_per_bit: float = 0.36
    inter_pe_pj_per_bit: float = 0.40
    global_buffer_pj_per_bit: float = 1.20
    dram_pj_per_bit: float = 15.00
    uop_fetch_pj_per_bit: float = 0.20
    index_generation_pj_per_bit: float = 0.0  # folded into the PE cost (Table II)

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 0:
                raise ConfigurationError(f"energy cost {name} cannot be negative")

    def as_dict(self) -> Dict[str, float]:
        return {
            "register_file_pj_per_bit": self.register_file_pj_per_bit,
            "pe_pj_per_bit": self.pe_pj_per_bit,
            "inter_pe_pj_per_bit": self.inter_pe_pj_per_bit,
            "global_buffer_pj_per_bit": self.global_buffer_pj_per_bit,
            "dram_pj_per_bit": self.dram_pj_per_bit,
            "uop_fetch_pj_per_bit": self.uop_fetch_pj_per_bit,
            "index_generation_pj_per_bit": self.index_generation_pj_per_bit,
        }

    def relative_costs(self) -> Dict[str, float]:
        """Costs normalised to the register-file access (Table II last column)."""
        base = self.register_file_pj_per_bit
        if base <= 0:
            raise ConfigurationError("register file energy must be positive")
        return {
            "Register File Access": self.register_file_pj_per_bit / base,
            "16-bit Fixed Point PE": self.pe_pj_per_bit / base,
            "Inter-PE Communication": self.inter_pe_pj_per_bit / base,
            "Global Buffer Access": self.global_buffer_pj_per_bit / base,
            "DDR4 Memory Access": self.dram_pj_per_bit / base,
        }

    @classmethod
    def paper_table2(cls) -> "EnergyTable":
        """The exact Table II numbers."""
        return cls()


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (picojoules) split by microarchitectural component.

    The component set mirrors Figure 10: PE datapath, register files, NoC,
    global buffer and DRAM.
    """

    pe_pj: float = 0.0
    rf_pj: float = 0.0
    noc_pj: float = 0.0
    gbuf_pj: float = 0.0
    dram_pj: float = 0.0

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 0:
                raise ConfigurationError(f"energy component {name} cannot be negative")

    @property
    def total_pj(self) -> float:
        return self.pe_pj + self.rf_pj + self.noc_pj + self.gbuf_pj + self.dram_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def as_dict(self) -> Dict[str, float]:
        return {
            "pe": self.pe_pj,
            "rf": self.rf_pj,
            "noc": self.noc_pj,
            "gbuf": self.gbuf_pj,
            "dram": self.dram_pj,
        }

    def fractions(self) -> Dict[str, float]:
        """Each component as a fraction of the total (0 if total is 0)."""
        total = self.total_pj
        if total <= 0:
            return {key: 0.0 for key in ENERGY_COMPONENTS}
        return {key: value / total for key, value in self.as_dict().items()}

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            pe_pj=self.pe_pj + other.pe_pj,
            rf_pj=self.rf_pj + other.rf_pj,
            noc_pj=self.noc_pj + other.noc_pj,
            gbuf_pj=self.gbuf_pj + other.gbuf_pj,
            dram_pj=self.dram_pj + other.dram_pj,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        if factor < 0:
            raise ConfigurationError("cannot scale energy by a negative factor")
        return EnergyBreakdown(
            pe_pj=self.pe_pj * factor,
            rf_pj=self.rf_pj * factor,
            noc_pj=self.noc_pj * factor,
            gbuf_pj=self.gbuf_pj * factor,
            dram_pj=self.dram_pj * factor,
        )

    @classmethod
    def zero(cls) -> "EnergyBreakdown":
        return cls()

    @classmethod
    def sum(cls, breakdowns) -> "EnergyBreakdown":
        total = cls.zero()
        for b in breakdowns:
            total = total + b
        return total


class EnergyModel:
    """Converts event counters into an energy breakdown.

    Parameters
    ----------
    table:
        Per-bit energy costs (defaults to the paper's Table II).
    data_bits:
        Width of a data word.
    uop_bits:
        Width of a fetched µop (used for the small µop-fetch overhead, which
        is charged to the register-file category as the µop buffers are small
        SRAM structures inside the PE array).
    gated_op_fraction:
        Fraction of the full PE energy charged for a zero-gated operation
        (EYERISS's data gating saves most, but not all, of the MAC energy).
    """

    def __init__(
        self,
        table: EnergyTable | None = None,
        data_bits: int = 16,
        uop_bits: int = 16,
        gated_op_fraction: float = 0.1,
    ) -> None:
        if data_bits <= 0 or uop_bits <= 0:
            raise ConfigurationError("data_bits and uop_bits must be positive")
        if not (0.0 <= gated_op_fraction <= 1.0):
            raise ConfigurationError("gated_op_fraction must lie in [0, 1]")
        self._table = table or EnergyTable.paper_table2()
        self._data_bits = data_bits
        self._uop_bits = uop_bits
        self._gated_op_fraction = gated_op_fraction

    @property
    def table(self) -> EnergyTable:
        return self._table

    @property
    def data_bits(self) -> int:
        return self._data_bits

    def energy_of(self, counters: EventCounters) -> EnergyBreakdown:
        """Energy breakdown (pJ) corresponding to ``counters``."""
        bits = self._data_bits
        t = self._table
        pe_pj = (
            counters.mac_ops * t.pe_pj_per_bit * bits
            + counters.alu_ops * t.pe_pj_per_bit * bits * 0.5
            + counters.gated_ops * t.pe_pj_per_bit * bits * self._gated_op_fraction
            + counters.index_generations * t.index_generation_pj_per_bit * bits
        )
        rf_pj = (
            counters.register_file_accesses * t.register_file_pj_per_bit * bits
            + counters.uop_fetches * t.uop_fetch_pj_per_bit * self._uop_bits
        )
        noc_pj = counters.noc_transfers * t.inter_pe_pj_per_bit * bits
        gbuf_pj = counters.global_buffer_accesses * t.global_buffer_pj_per_bit * bits
        dram_pj = counters.dram_accesses * t.dram_pj_per_bit * bits
        return EnergyBreakdown(
            pe_pj=pe_pj, rf_pj=rf_pj, noc_pj=noc_pj, gbuf_pj=gbuf_pj, dram_pj=dram_pj
        )
