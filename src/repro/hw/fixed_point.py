"""16-bit fixed-point arithmetic model.

The GANAX and EYERISS datapaths evaluated in the paper are 16-bit fixed-point
(Table II prices a "16-bit Fixed Point PE", Table III sizes a 16-bit MAC).
This module provides the quantisation substrate used to reason about that
datapath from Python:

* :class:`FixedPointFormat` — a signed Qm.n format with saturation,
* :func:`quantize` / :func:`dequantize` — array conversion helpers, and
* :class:`FixedPointAccumulator` — a MAC accumulator with a configurable
  guard-bit width, mirroring how spatial accelerators keep wider partial sums
  than their operand precision.

The cycle-level machine operates on floats for clarity; tests use this module
to bound the quantisation error a 16-bit datapath would introduce on the
workloads' value ranges (GAN generators operate on tanh/sigmoid-bounded
activations, so Q2.13 covers them comfortably).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from ..errors import ConfigurationError

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``integer_bits`` + ``fraction_bits`` + sign.

    Attributes
    ----------
    integer_bits:
        Bits to the left of the binary point (excluding the sign bit).
    fraction_bits:
        Bits to the right of the binary point.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ConfigurationError("fixed-point field widths cannot be negative")
        if self.total_bits < 2:
            raise ConfigurationError("a fixed-point format needs at least 2 bits")

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Total storage width including the sign bit."""
        return self.integer_bits + self.fraction_bits + 1

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** -self.fraction_bits

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.total_bits - 1)) * self.scale

    @property
    def max_code(self) -> int:
        return 2 ** (self.total_bits - 1) - 1

    @property
    def min_code(self) -> int:
        return -(2 ** (self.total_bits - 1))

    # ------------------------------------------------------------------
    # Constructors for the formats the paper's datapath implies
    # ------------------------------------------------------------------
    @classmethod
    def q2_13(cls) -> "FixedPointFormat":
        """16-bit activation format: sign + 2 integer + 13 fraction bits."""
        return cls(integer_bits=2, fraction_bits=13)

    @classmethod
    def q0_15(cls) -> "FixedPointFormat":
        """16-bit weight format: sign + 15 fraction bits (values in (-1, 1))."""
        return cls(integer_bits=0, fraction_bits=15)

    @classmethod
    def accumulator(cls, guard_bits: int = 8) -> "FixedPointFormat":
        """A wide accumulator format with ``guard_bits`` extra integer bits."""
        if guard_bits < 0:
            raise ConfigurationError("guard_bits cannot be negative")
        return cls(integer_bits=2 + guard_bits, fraction_bits=13)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.integer_bits}.{self.fraction_bits}"


# ----------------------------------------------------------------------
# Quantisation helpers
# ----------------------------------------------------------------------
def quantize_to_code(values: ArrayLike, fmt: FixedPointFormat) -> np.ndarray:
    """Quantise real values to integer codes with round-to-nearest + saturation."""
    codes = np.rint(np.asarray(values, dtype=np.float64) / fmt.scale)
    return np.clip(codes, fmt.min_code, fmt.max_code).astype(np.int64)


def dequantize_code(codes: ArrayLike, fmt: FixedPointFormat) -> np.ndarray:
    """Convert integer codes back to real values."""
    return np.asarray(codes, dtype=np.float64) * fmt.scale


def quantize(values: ArrayLike, fmt: FixedPointFormat) -> np.ndarray:
    """Round-trip real values through the fixed-point grid (round + saturate)."""
    return dequantize_code(quantize_to_code(values, fmt), fmt)


def quantization_error(values: ArrayLike, fmt: FixedPointFormat) -> float:
    """Maximum absolute quantisation error over ``values``.

    For values inside the representable range the error is bounded by half an
    LSB; saturated values can incur arbitrarily large errors, which is why the
    workload-facing tests check their value ranges first.
    """
    values = np.asarray(values, dtype=np.float64)
    return float(np.max(np.abs(values - quantize(values, fmt)))) if values.size else 0.0


class FixedPointAccumulator:
    """A multiply-accumulate accumulator in fixed point.

    Products of a ``Qa`` activation and ``Qw`` weight are accumulated at full
    product precision into a wide register (operand fraction bits summed plus
    ``guard_bits`` of headroom), then read out in the activation format — the
    standard arrangement in 16-bit MAC datapaths and the reason the paper's
    partial-sum registers are wider than its activations.
    """

    def __init__(
        self,
        activation_format: FixedPointFormat | None = None,
        weight_format: FixedPointFormat | None = None,
        guard_bits: int = 8,
    ) -> None:
        if guard_bits < 0:
            raise ConfigurationError("guard_bits cannot be negative")
        self._activations = activation_format or FixedPointFormat.q2_13()
        self._weights = weight_format or FixedPointFormat.q0_15()
        self._guard_bits = guard_bits
        self._fraction_bits = self._activations.fraction_bits + self._weights.fraction_bits
        integer_bits = (
            self._activations.integer_bits + self._weights.integer_bits + guard_bits
        )
        self._wide = FixedPointFormat(
            integer_bits=integer_bits, fraction_bits=self._fraction_bits
        )
        self._code = 0
        self._macs = 0
        self._saturated = False

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def activation_format(self) -> FixedPointFormat:
        return self._activations

    @property
    def weight_format(self) -> FixedPointFormat:
        return self._weights

    @property
    def wide_format(self) -> FixedPointFormat:
        return self._wide

    @property
    def macs_performed(self) -> int:
        return self._macs

    @property
    def saturated(self) -> bool:
        """True if any accumulation clipped at the wide register's range."""
        return self._saturated

    @property
    def value(self) -> float:
        """Current accumulator value as a real number."""
        return self._code * self._wide.scale

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._code = 0
        self._macs = 0
        self._saturated = False

    def mac(self, activation: float, weight: float) -> float:
        """Accumulate one activation x weight product; returns the new value."""
        a_code = int(quantize_to_code(activation, self._activations))
        w_code = int(quantize_to_code(weight, self._weights))
        self._code += a_code * w_code
        self._macs += 1
        if self._code > self._wide.max_code:
            self._code = self._wide.max_code
            self._saturated = True
        elif self._code < self._wide.min_code:
            self._code = self._wide.min_code
            self._saturated = True
        return self.value

    def mac_many(self, activations: Iterable[float], weights: Iterable[float]) -> float:
        """Accumulate a dot product element by element."""
        for activation, weight in zip(activations, weights):
            self.mac(activation, weight)
        return self.value

    def read_out(self) -> float:
        """Read the accumulator back in the activation format (round + saturate)."""
        return float(quantize(self.value, self._activations))
