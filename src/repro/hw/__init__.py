"""Hardware substrate: FIFOs, scratchpads, DRAM, NoC, energy and area models."""

from .area import AcceleratorAreaBreakdown, AreaModel, PeAreaBreakdown
from .counters import EventCounters
from .dram import DramModel, DramTraffic
from .energy import ENERGY_COMPONENTS, EnergyBreakdown, EnergyModel, EnergyTable
from .fifo import Fifo
from .fixed_point import (
    FixedPointAccumulator,
    FixedPointFormat,
    quantization_error,
    quantize,
)
from .noc import NocModel, NocStatistics
from .sram import Scratchpad

__all__ = [
    "AcceleratorAreaBreakdown",
    "AreaModel",
    "PeAreaBreakdown",
    "EventCounters",
    "DramModel",
    "DramTraffic",
    "ENERGY_COMPONENTS",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyTable",
    "Fifo",
    "FixedPointAccumulator",
    "FixedPointFormat",
    "quantization_error",
    "quantize",
    "NocModel",
    "NocStatistics",
    "Scratchpad",
]
