"""Event counters shared by the hardware models.

Every hardware primitive (buffers, DRAM, NoC, PEs) records its activity into
an :class:`EventCounters` instance.  The energy model later converts those
counts into picojoules using the per-bit costs of Table II, and the
performance model uses some of them (e.g. DRAM bytes) for roofline bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, Mapping


@dataclass
class EventCounters:
    """Mutable activity counters for one simulated component or accelerator.

    All counters are in *events*; bit conversion happens in the energy model.

    Attributes
    ----------
    mac_ops:
        Multiply-accumulate operations actually performed (consequential).
    gated_ops:
        Operations suppressed by zero gating: a cycle is spent but the
        datapath is gated, costing only a small fraction of the MAC energy.
    alu_ops:
        Non-MAC ALU operations (adds for accumulation, comparisons, ...).
    register_file_reads / register_file_writes:
        Accesses to the per-PE register files (input/weight/psum registers).
    noc_transfers:
        Word transfers over the inter-PE network (psum forwarding, filter-row
        multicast hops).
    global_buffer_reads / global_buffer_writes:
        Word accesses to the shared on-chip global data buffer.
    dram_reads / dram_writes:
        Word accesses to off-chip DRAM.
    uop_fetches:
        Micro-op fetches (global or local µop buffer reads).
    index_generations:
        Addresses produced by the strided µindex generators.
    """

    mac_ops: int = 0
    gated_ops: int = 0
    alu_ops: int = 0
    register_file_reads: int = 0
    register_file_writes: int = 0
    noc_transfers: int = 0
    global_buffer_reads: int = 0
    global_buffer_writes: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    uop_fetches: int = 0
    index_generations: int = 0

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------
    def add(self, other: "EventCounters") -> "EventCounters":
        """Accumulate ``other`` into this instance and return ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __add__(self, other: "EventCounters") -> "EventCounters":
        result = EventCounters()
        result.add(self)
        result.add(other)
        return result

    def scaled(self, factor: float) -> "EventCounters":
        """Return a copy with every counter multiplied by ``factor``.

        Used to scale a single representative window / row to the whole
        layer.  Counts are rounded to the nearest integer.
        """
        result = EventCounters()
        for f in fields(self):
            setattr(result, f.name, int(round(getattr(self, f.name) * factor)))
        return result

    def as_dict(self) -> Dict[str, int]:
        """Plain dict view (stable field order), useful for reports/tests."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total_events(self) -> int:
        """Sum of all counters; only meaningful as a sanity check."""
        return sum(self.as_dict().values())

    @property
    def register_file_accesses(self) -> int:
        return self.register_file_reads + self.register_file_writes

    @property
    def global_buffer_accesses(self) -> int:
        return self.global_buffer_reads + self.global_buffer_writes

    @property
    def dram_accesses(self) -> int:
        return self.dram_reads + self.dram_writes

    @classmethod
    def from_dict(cls, mapping: Mapping[str, int]) -> "EventCounters":
        """Inverse of :meth:`as_dict`; unknown keys raise ``TypeError``."""
        return cls(**dict(mapping))

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.as_dict().items())
