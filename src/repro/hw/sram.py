"""On-chip scratchpad buffers (register files, weight SRAM, data buffers).

The cycle-level machine uses :class:`Scratchpad` for the per-PE input, weight
and output buffers and for the shared global data buffer.  Every read and
write is counted so the energy model can convert accesses into picojoules.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import BufferError_
from .counters import EventCounters


class Scratchpad:
    """A word-addressable on-chip buffer with access counting.

    Parameters
    ----------
    words:
        Capacity of the buffer in data words.
    name:
        Human-readable name used in error messages and statistics.
    counters:
        Optional shared :class:`EventCounters`; when provided, reads and
        writes are recorded into the given counter attributes.
    read_counter / write_counter:
        Names of the :class:`EventCounters` fields to increment on accesses
        (e.g. ``"register_file_reads"`` or ``"global_buffer_reads"``).
    """

    def __init__(
        self,
        words: int,
        name: str = "scratchpad",
        counters: Optional[EventCounters] = None,
        read_counter: str = "register_file_reads",
        write_counter: str = "register_file_writes",
    ) -> None:
        if words <= 0:
            raise BufferError_(f"{name}: capacity must be positive, got {words}")
        self._name = name
        self._data = np.zeros(words, dtype=np.float64)
        self._valid = np.zeros(words, dtype=bool)
        self._counters = counters
        self._read_counter = read_counter
        self._write_counter = write_counter
        self._reads = 0
        self._writes = 0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def capacity(self) -> int:
        return int(self._data.shape[0])

    @property
    def reads(self) -> int:
        return self._reads

    @property
    def writes(self) -> int:
        return self._writes

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _check_address(self, address: int) -> None:
        if not (0 <= address < self.capacity):
            raise BufferError_(
                f"{self._name}: address {address} out of range [0, {self.capacity})"
            )

    def read(self, address: int) -> float:
        """Read one word; reading a never-written word returns 0.0."""
        self._check_address(address)
        self._reads += 1
        if self._counters is not None:
            setattr(
                self._counters,
                self._read_counter,
                getattr(self._counters, self._read_counter) + 1,
            )
        return float(self._data[address])

    def write(self, address: int, value: float) -> None:
        """Write one word."""
        self._check_address(address)
        self._writes += 1
        if self._counters is not None:
            setattr(
                self._counters,
                self._write_counter,
                getattr(self._counters, self._write_counter) + 1,
            )
        self._data[address] = value
        self._valid[address] = True

    def load(self, values: Iterable[float], base: int = 0) -> None:
        """Bulk-initialise contents without counting accesses (DMA fill)."""
        values = list(values)
        if base < 0 or base + len(values) > self.capacity:
            raise BufferError_(
                f"{self._name}: bulk load of {len(values)} words at base {base} "
                f"exceeds capacity {self.capacity}"
            )
        self._data[base : base + len(values)] = values
        self._valid[base : base + len(values)] = True

    def dump(self, base: int = 0, count: Optional[int] = None) -> List[float]:
        """Copy contents without counting accesses (for result collection)."""
        if count is None:
            count = self.capacity - base
        if base < 0 or base + count > self.capacity:
            raise BufferError_(
                f"{self._name}: dump of {count} words at base {base} exceeds "
                f"capacity {self.capacity}"
            )
        return [float(v) for v in self._data[base : base + count]]

    def is_written(self, address: int) -> bool:
        """Whether the word at ``address`` has ever been written/loaded."""
        self._check_address(address)
        return bool(self._valid[address])

    def clear(self) -> None:
        """Zero the contents and validity bits (statistics are preserved)."""
        self._data[:] = 0.0
        self._valid[:] = False

    def statistics(self) -> Dict[str, int]:
        """Access statistics for reports and tests."""
        return {"reads": self._reads, "writes": self._writes, "capacity": self.capacity}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scratchpad(name={self._name!r}, words={self.capacity})"
