"""Bounded FIFO used by the decoupled access-execute micro-engines.

The GANAX PE contains one address FIFO per strided µindex generator and one
µop FIFO in front of the execute µ-engine (Figure 7).  These FIFOs provide
the synchronisation between the two µ-engines: a full address FIFO stalls the
index generator and an empty µop / address FIFO stalls the execute engine.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

from ..errors import FifoError

T = TypeVar("T")


class Fifo(Generic[T]):
    """A bounded first-in first-out queue with occupancy statistics."""

    def __init__(self, depth: int, name: str = "fifo") -> None:
        if depth <= 0:
            raise FifoError(f"{name}: depth must be positive, got {depth}")
        self._depth = depth
        self._name = name
        self._items: Deque[T] = deque()
        self._pushes = 0
        self._pops = 0
        self._full_stalls = 0
        self._empty_stalls = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self._depth

    @property
    def is_empty(self) -> bool:
        return not self._items

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def push(self, item: T) -> None:
        """Push an item; raises :class:`FifoError` if the FIFO is full."""
        if self.is_full:
            self._full_stalls += 1
            raise FifoError(f"{self._name}: push on full FIFO (depth={self._depth})")
        self._items.append(item)
        self._pushes += 1

    def try_push(self, item: T) -> bool:
        """Push an item if space is available; returns False (and records a
        stall) otherwise."""
        if self.is_full:
            self._full_stalls += 1
            return False
        self._items.append(item)
        self._pushes += 1
        return True

    def pop(self) -> T:
        """Pop the oldest item; raises :class:`FifoError` if empty."""
        if self.is_empty:
            self._empty_stalls += 1
            raise FifoError(f"{self._name}: pop on empty FIFO")
        self._pops += 1
        return self._items.popleft()

    def try_pop(self) -> Optional[T]:
        """Pop the oldest item, or return None (and record a stall) if empty."""
        if self.is_empty:
            self._empty_stalls += 1
            return None
        self._pops += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """Look at the oldest item without removing it."""
        if self.is_empty:
            return None
        return self._items[0]

    def clear(self) -> None:
        """Drop all queued items (statistics are preserved)."""
        self._items.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def total_pushes(self) -> int:
        return self._pushes

    @property
    def total_pops(self) -> int:
        return self._pops

    @property
    def full_stalls(self) -> int:
        return self._full_stalls

    @property
    def empty_stalls(self) -> int:
        return self._empty_stalls

    def snapshot(self) -> List[T]:
        """Copy of the queued items, oldest first (for tests/debugging)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(list(self._items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fifo(name={self._name!r}, depth={self._depth}, occupancy={self.occupancy})"
