"""Execute µ-engine: µop FIFO, ALU and accumulator register (Figure 7a).

The execute µ-engine consumes one µop per cycle from its µop FIFO.  Execute
µops carry no operand addresses; the engine pops source/destination addresses
from the access µ-engine's address FIFOs and reads/writes the PE-local data
buffers.  When the µop FIFO is empty — or a needed address FIFO is empty —
the engine stalls, which is exactly the decoupled synchronisation the paper
describes.

Supported operations mirror the SIMD µop group: ``add``, ``mul``, ``mac``,
``pool``, ``act`` plus the ``repeat`` prefix that re-executes the following
µop a register-defined number of times.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import SimulationError
from ..hw.counters import EventCounters
from ..hw.fifo import Fifo
from ..hw.sram import Scratchpad
from ..isa.uops import AddressGenerator, ExecuteOp, ExecuteUop, MicroOp, RepeatUop
from .access_engine import AccessEngine

_ACTIVATIONS: Dict[str, Callable[[float], float]] = {
    "relu": lambda x: max(x, 0.0),
    "leaky_relu": lambda x: x if x >= 0 else 0.2 * x,
    "tanh": math.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)),
    "identity": lambda x: x,
}


class ExecuteEngine:
    """The execute µ-engine of one GANAX processing engine."""

    def __init__(
        self,
        access: AccessEngine,
        input_buffer: Scratchpad,
        weight_buffer: Scratchpad,
        output_buffer: Scratchpad,
        uop_fifo_depth: int = 8,
        counters: Optional[EventCounters] = None,
        name: str = "execute",
    ) -> None:
        self._name = name
        self._access = access
        self._input = input_buffer
        self._weight = weight_buffer
        self._output = output_buffer
        self._counters = counters if counters is not None else EventCounters()
        self._uop_fifo: Fifo[MicroOp] = Fifo(depth=uop_fifo_depth, name=f"{name}.uop_fifo")
        self._accumulator = 0.0
        self._repeat_register = 1
        self._pending_repeats = 0
        self._pending_uop: Optional[ExecuteUop] = None
        self._executed_uops = 0
        self._busy_cycles = 0
        self._stall_cycles = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def accumulator(self) -> float:
        return self._accumulator

    @property
    def repeat_register(self) -> int:
        return self._repeat_register

    @property
    def executed_uops(self) -> int:
        return self._executed_uops

    @property
    def busy_cycles(self) -> int:
        return self._busy_cycles

    @property
    def stall_cycles(self) -> int:
        return self._stall_cycles

    @property
    def uop_fifo(self) -> Fifo[MicroOp]:
        return self._uop_fifo

    @property
    def busy(self) -> bool:
        """True while µops are queued or a repeated µop is still running."""
        return not self._uop_fifo.is_empty or self._pending_repeats > 0

    # ------------------------------------------------------------------
    # Control interface
    # ------------------------------------------------------------------
    def set_repeat_register(self, value: int) -> None:
        """The mimd.ld path: preload the repetition count register."""
        if value <= 0:
            raise SimulationError(f"{self._name}: repeat register must be positive")
        self._repeat_register = value

    def enqueue(self, uop: MicroOp) -> bool:
        """Push a dispatched µop into the µop FIFO (False if the FIFO is full)."""
        if not isinstance(uop, (ExecuteUop, RepeatUop)):
            raise SimulationError(f"{self._name}: {uop!r} is not an execute-group µop")
        return self._uop_fifo.try_push(uop)

    def reset_accumulator(self) -> None:
        self._accumulator = 0.0

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    def tick(self) -> bool:
        """Advance one cycle; returns True if an operation was performed."""
        uop = self._next_uop()
        if uop is None:
            self._stall_cycles += 1
            return False
        performed = self._execute(uop)
        if performed:
            self._busy_cycles += 1
            self._executed_uops += 1
        else:
            # The operation could not proceed (address starvation): the µop
            # stays pending and the engine records a stall cycle.
            self._requeue(uop)
            self._stall_cycles += 1
        return performed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_uop(self) -> Optional[ExecuteUop]:
        if self._pending_repeats > 0 and self._pending_uop is not None:
            self._pending_repeats -= 1
            return self._pending_uop
        head = self._uop_fifo.peek()
        if head is None:
            return None
        if isinstance(head, RepeatUop):
            # A repeat prefix needs its follower in the FIFO before it can be
            # consumed; until then the engine stalls (the follower arrives on
            # a later dispatch cycle).
            if self._uop_fifo.occupancy < 2:
                return None
            self._uop_fifo.pop()
            follower = self._uop_fifo.pop()
            if not isinstance(follower, ExecuteUop):
                raise SimulationError(
                    f"{self._name}: repeat µop must be followed by an execute µop"
                )
            if self._counters is not None:
                self._counters.uop_fetches += 2
            count = head.count if head.count > 0 else self._repeat_register
            self._pending_uop = follower
            self._pending_repeats = count - 1
            return follower
        uop = self._uop_fifo.pop()
        if self._counters is not None:
            self._counters.uop_fetches += 1
        return uop

    def _requeue(self, uop: ExecuteUop) -> None:
        """Re-arm a µop that stalled on operand starvation."""
        if self._pending_uop is uop and self._pending_repeats >= 0:
            self._pending_repeats += 1
        else:
            self._pending_uop = uop
            self._pending_repeats = 1

    def _execute(self, uop: ExecuteUop) -> bool:
        op = uop.op
        if op is ExecuteOp.NOP:
            return True
        if op in (ExecuteOp.MAC, ExecuteOp.MUL, ExecuteOp.ADD):
            return self._execute_arithmetic(op)
        if op is ExecuteOp.ACT:
            return self._execute_activation(uop.activation)
        if op is ExecuteOp.POOL:
            return self._execute_pool()
        raise SimulationError(f"{self._name}: unsupported execute op {op}")

    def _execute_arithmetic(self, op: ExecuteOp) -> bool:
        if not (
            self._access.has_address(AddressGenerator.INPUT)
            and self._access.has_address(AddressGenerator.WEIGHT)
        ):
            return False
        in_addr = self._access.pop_address(AddressGenerator.INPUT)
        w_addr = self._access.pop_address(AddressGenerator.WEIGHT)
        assert in_addr is not None and w_addr is not None
        a = self._input.read(in_addr)
        b = self._weight.read(w_addr)
        if op is ExecuteOp.MAC:
            self._accumulator += a * b
        elif op is ExecuteOp.MUL:
            self._accumulator = a * b
        else:  # ADD
            self._accumulator = a + b
        if self._counters is not None:
            self._counters.mac_ops += 1
        return True

    def _execute_activation(self, activation: str) -> bool:
        if not self._access.has_address(AddressGenerator.OUTPUT):
            return False
        out_addr = self._access.pop_address(AddressGenerator.OUTPUT)
        assert out_addr is not None
        function = _ACTIVATIONS.get(activation)
        if function is None:
            raise SimulationError(f"{self._name}: unknown activation '{activation}'")
        self._output.write(out_addr, function(self._accumulator))
        self._accumulator = 0.0
        if self._counters is not None:
            self._counters.alu_ops += 1
        return True

    def _execute_pool(self) -> bool:
        """Max pooling over the addresses currently queued in the input FIFO."""
        if not (
            self._access.has_address(AddressGenerator.INPUT)
            and self._access.has_address(AddressGenerator.OUTPUT)
        ):
            return False
        values = []
        while self._access.has_address(AddressGenerator.INPUT):
            addr = self._access.pop_address(AddressGenerator.INPUT)
            assert addr is not None
            values.append(self._input.read(addr))
        out_addr = self._access.pop_address(AddressGenerator.OUTPUT)
        assert out_addr is not None
        self._output.write(out_addr, max(values))
        if self._counters is not None:
            self._counters.alu_ops += len(values)
        return True
