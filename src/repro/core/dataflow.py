"""The GANAX flow of data: output-row and filter-row reorganization.

Section II of the paper develops two dataflow optimizations for executing a
transposed convolution on a spatial array:

1. **Output-row reorganization** — output rows sharing the same pattern of
   consequential filter rows (the same *row phase*) are made adjacent so they
   can be processed by neighbouring processing vectors and reuse the same
   filter rows.
2. **Filter-row reorganization** — within each output-row group the filter
   rows are packed so the idle compute nodes (those whose filter row only ever
   multiplies inserted zeros) can be removed from the dataflow entirely.

The result is a :class:`DataflowSchedule`: for each row phase, the group of
output rows, the consequential filter rows assigned to the PEs of the PV
processing that group, and the per-output-column work.  Both the analytical
performance model and the cycle-level layer compiler consume this schedule,
so the same reorganization drives the experiments and the functional
validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DataflowError
from ..nn.layers import ConvLayer, TransposedConvLayer
from ..nn.network import LayerBinding
from ..nn.shapes import FeatureMapShape
from ..schedule import ScheduleLike, resolve_schedule


@dataclass(frozen=True)
class ColumnSegment:
    """A run of same-phase output columns within one output row.

    Attributes
    ----------
    phase:
        Column phase (output column index modulo the horizontal stride).
    columns:
        Output column indices belonging to this phase, in increasing order.
    taps:
        Number of consequential kernel columns for the interior columns of
        this phase (border columns may see fewer; the compiler handles them
        explicitly, the analytical model uses the interior value).
    input_start_columns:
        For each output column, the starting column in the *genuine* (packed)
        input that its window covers.
    kernel_columns:
        The consequential kernel column indices for interior columns.
    """

    phase: int
    columns: Tuple[int, ...]
    taps: int
    input_start_columns: Tuple[int, ...]
    kernel_columns: Tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.columns)


@dataclass(frozen=True)
class RowGroup:
    """All output rows of one row phase plus their filter-row assignment.

    Attributes
    ----------
    phase:
        Row phase (output row index modulo the vertical stride).
    output_rows:
        Output row indices of this phase, made adjacent by the output-row
        reorganization.
    filter_rows:
        Consequential kernel row indices: the filter rows that are packed
        next to each other by the filter-row reorganization.  Their count is
        the number of PEs that stay active for this group.
    input_rows:
        For each output row, the starting row in the genuine input that its
        (consequential) window covers.
    column_segments:
        Column-phase segments shared by every row of this group.
    """

    phase: int
    output_rows: Tuple[int, ...]
    filter_rows: Tuple[int, ...]
    input_rows: Tuple[int, ...]
    column_segments: Tuple[ColumnSegment, ...]

    @property
    def active_pes(self) -> int:
        """PEs doing useful work for one output row of this group."""
        return len(self.filter_rows)

    @property
    def macs_per_output_row(self) -> int:
        """Consequential MACs (per input channel, per output channel) per row."""
        per_row = 0
        for segment in self.column_segments:
            per_row += segment.width * segment.taps
        return per_row * max(1, len(self.filter_rows))

    @property
    def accumulation_depth(self) -> int:
        """Length of the horizontal accumulation chain for this group's rows."""
        return len(self.filter_rows)


@dataclass(frozen=True)
class DataflowSchedule:
    """The complete GANAX dataflow schedule for one (t)conv layer."""

    layer_name: str
    stride_rows: int
    stride_cols: int
    kernel_rows: int
    kernel_cols: int
    output_rows: int
    output_cols: int
    row_groups: Tuple[RowGroup, ...]

    @property
    def num_patterns(self) -> int:
        """Number of distinct row-computation patterns (== vertical stride)."""
        return len(self.row_groups)

    @property
    def is_uniform(self) -> bool:
        """True when every group has the same shape of work (pure SIMD is enough)."""
        if len(self.row_groups) <= 1:
            return True
        signature = {
            (g.active_pes, tuple(s.taps for s in g.column_segments))
            for g in self.row_groups
        }
        return len(signature) == 1

    def row_plan(
        self, schedule: ScheduleLike = None
    ) -> Tuple[Tuple[int, RowGroup], ...]:
        """``(output_row, group)`` pairs in the order a schedule lowers them.

        The pairs themselves are fixed by the algorithm — which rows exist
        and which consequential filter rows each carries never changes — but
        a :class:`~repro.schedule.ScheduleSpec`'s ``row_order`` decides the
        walk: ``"grouped"`` (default) follows the reorganized groups phase by
        phase, ``"raster"`` re-sorts by ascending output row across groups.
        """
        spec = resolve_schedule(schedule)
        pairs = [
            (output_row, group)
            for group in self.row_groups
            for output_row in group.output_rows
        ]
        if spec.row_order == "raster":
            pairs.sort(key=lambda pair: pair[0])
        return tuple(pairs)

    def group_for_row(self, output_row: int) -> RowGroup:
        for group in self.row_groups:
            if output_row in group.output_rows:
                return group
        raise DataflowError(
            f"{self.layer_name}: output row {output_row} not covered by any group"
        )

    def baseline_idle_fraction(self) -> float:
        """Fraction of compute nodes idle under the conventional dataflow.

        In the conventional dataflow every output row occupies ``kernel_rows``
        compute nodes but only ``active_pes`` of them perform consequential
        vector-vector work (Figure 4b's white circles).
        """
        total_nodes = 0
        active_nodes = 0
        for group in self.row_groups:
            total_nodes += len(group.output_rows) * self.kernel_rows
            active_nodes += len(group.output_rows) * group.active_pes
        if total_nodes == 0:
            return 0.0
        return 1.0 - active_nodes / total_nodes


# ----------------------------------------------------------------------
# Schedule construction
# ----------------------------------------------------------------------
def build_schedule(
    binding: LayerBinding, schedule: ScheduleLike = None
) -> DataflowSchedule:
    """Build the GANAX dataflow schedule for a convolutional layer binding.

    Conventional convolutions are handled as the degenerate single-pattern
    case (stride-1 "transposed" structure with every filter row consequential),
    which is how GANAX runs discriminators in pure SIMD mode.

    ``schedule`` names a :class:`~repro.schedule.ScheduleSpec` (spec string,
    instance, or ``None`` for the default).  The group decomposition returned
    here is the *algorithm* half of the separation and is identical for every
    spec; the spec is resolved (so unknown names fail here, before any
    planning) and drives the ordering knobs through
    :meth:`DataflowSchedule.row_plan` and the compiler.
    """
    resolve_schedule(schedule)
    layer = binding.layer
    if isinstance(layer, TransposedConvLayer):
        return _build_tconv_schedule(layer, binding.input_shape)
    if isinstance(layer, ConvLayer):
        return _build_conv_schedule(layer, binding)
    raise DataflowError(f"layer '{binding.name}' is not convolutional")


def _build_tconv_schedule(
    layer: TransposedConvLayer, input_shape: FeatureMapShape
) -> DataflowSchedule:
    if layer.rank not in (2, 3):
        raise DataflowError(
            f"{layer.name}: dataflow schedules support 2-D and 3-D layers"
        )
    # For rank-3 layers the schedule describes one depth slice; the analytical
    # model multiplies by the depth extent and by the depth-phase tap factor.
    row_dim = layer.rank - 2
    col_dim = layer.rank - 1
    out = layer.output_shape(input_shape)

    stride_rows = layer.stride[row_dim]
    stride_cols = layer.stride[col_dim]
    kernel_rows = layer.kernel[row_dim]
    kernel_cols = layer.kernel[col_dim]
    padding_rows = layer.padding[row_dim]
    padding_cols = layer.padding[col_dim]
    out_rows = out.spatial[row_dim]
    out_cols = out.spatial[col_dim]
    in_rows = input_shape.spatial[row_dim]
    in_cols = input_shape.spatial[col_dim]

    groups: List[RowGroup] = []
    for phase in range(min(stride_rows, out_rows)):
        rows = tuple(r for r in range(out_rows) if r % stride_rows == phase)
        if not rows:
            continue
        filter_rows = _consequential_kernel_indices(
            phase, kernel_rows, stride_rows, padding_rows
        )
        if not filter_rows:
            # A phase whose rows touch no genuine input can only happen for
            # degenerate geometries; represent it as a single idle-filter row
            # so downstream consumers never divide by zero.
            filter_rows = (0,)
        input_rows = tuple(
            _input_start(r, kernel_rows, stride_rows, padding_rows, in_rows)
            for r in rows
        )
        segments = _column_segments(
            out_cols, kernel_cols, stride_cols, padding_cols, in_cols
        )
        groups.append(
            RowGroup(
                phase=phase,
                output_rows=rows,
                filter_rows=filter_rows,
                input_rows=input_rows,
                column_segments=segments,
            )
        )
    return DataflowSchedule(
        layer_name=layer.name,
        stride_rows=stride_rows,
        stride_cols=stride_cols,
        kernel_rows=kernel_rows,
        kernel_cols=kernel_cols,
        output_rows=out_rows,
        output_cols=out_cols,
        row_groups=tuple(groups),
    )


def _build_conv_schedule(layer: ConvLayer, binding: LayerBinding) -> DataflowSchedule:
    out = binding.output_shape
    row_dim = layer.rank - 2 if layer.rank >= 2 else 0
    col_dim = layer.rank - 1
    kernel_rows = layer.kernel[row_dim] if layer.rank >= 2 else 1
    kernel_cols = layer.kernel[col_dim]
    out_rows = out.spatial[row_dim] if layer.rank >= 2 else 1
    out_cols = out.spatial[col_dim]

    segment = ColumnSegment(
        phase=0,
        columns=tuple(range(out_cols)),
        taps=kernel_cols,
        input_start_columns=tuple(c * layer.stride[col_dim] for c in range(out_cols)),
        kernel_columns=tuple(range(kernel_cols)),
    )
    group = RowGroup(
        phase=0,
        output_rows=tuple(range(out_rows)),
        filter_rows=tuple(range(kernel_rows)),
        input_rows=tuple(
            r * (layer.stride[row_dim] if layer.rank >= 2 else 1) for r in range(out_rows)
        ),
        column_segments=(segment,),
    )
    return DataflowSchedule(
        layer_name=layer.name,
        stride_rows=1,
        stride_cols=1,
        kernel_rows=kernel_rows,
        kernel_cols=kernel_cols,
        output_rows=out_rows,
        output_cols=out_cols,
        row_groups=(group,),
    )


# ----------------------------------------------------------------------
# Geometry helpers
# ----------------------------------------------------------------------
def _consequential_kernel_indices(
    phase: int, kernel: int, stride: int, padding: int
) -> Tuple[int, ...]:
    """Kernel indices that touch genuine values for outputs of ``phase``."""
    border = kernel - 1 - padding
    return tuple(k for k in range(kernel) if (phase + k - border) % stride == 0)


def _input_start(
    out_index: int, kernel: int, stride: int, padding: int, in_extent: int
) -> int:
    """Starting genuine-input index of the window producing ``out_index``.

    The window of output ``o`` covers expanded coordinates ``o..o+kernel-1``;
    genuine elements live at expanded coordinates ``border + stride * i``.
    The first genuine element inside the window is at genuine index
    ``ceil((o - border) / stride)`` clamped to ``[0, in_extent)``.
    """
    border = kernel - 1 - padding
    first = -(-(out_index - border) // stride)  # ceil division
    return max(0, min(in_extent - 1, first))


def _column_segments(
    out_cols: int, kernel: int, stride: int, padding: int, in_cols: int
) -> Tuple[ColumnSegment, ...]:
    segments: List[ColumnSegment] = []
    for phase in range(min(stride, out_cols)):
        columns = tuple(c for c in range(out_cols) if c % stride == phase)
        if not columns:
            continue
        kernel_columns = _consequential_kernel_indices(phase, kernel, stride, padding)
        starts = tuple(
            _input_start(c, kernel, stride, padding, in_cols) for c in columns
        )
        segments.append(
            ColumnSegment(
                phase=phase,
                columns=columns,
                taps=max(1, len(kernel_columns)),
                input_start_columns=starts,
                kernel_columns=kernel_columns if kernel_columns else (0,),
            )
        )
    return tuple(segments)


# ----------------------------------------------------------------------
# Aggregate queries used by the performance model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleSummary:
    """The aggregate schedule quantities the analytical model consumes.

    The performance estimators never read the materialised per-row and
    per-column tuples of a :class:`DataflowSchedule` — only the total output
    rows, the pattern count and the row-weighted average of consequential
    filter rows.  All three are computable in O(stride x kernel) arithmetic,
    so :func:`schedule_summary` provides them without building the schedule.
    ``tests/test_dataflow.py`` pins the equivalence against
    :func:`build_schedule` / :func:`average_active_filter_rows`.
    """

    output_rows: int
    num_patterns: int
    average_active_filter_rows: float


@lru_cache(maxsize=4096)
def _summarize_row_geometry(
    out_rows: int, kernel_rows: int, stride_rows: int, padding_rows: int
) -> ScheduleSummary:
    rows = 0
    weighted = 0
    patterns = 0
    for phase in range(min(stride_rows, out_rows)):
        count = (out_rows - 1 - phase) // stride_rows + 1
        active = max(
            1,
            len(
                _consequential_kernel_indices(
                    phase, kernel_rows, stride_rows, padding_rows
                )
            ),
        )
        patterns += 1
        rows += count
        weighted += count * active
    average = weighted / rows if rows else 0.0
    return ScheduleSummary(
        output_rows=out_rows,
        num_patterns=patterns,
        average_active_filter_rows=average,
    )


def schedule_summary(binding: LayerBinding) -> ScheduleSummary:
    """Aggregate schedule quantities of a (t)conv binding, without the schedule.

    Equivalent to summarising ``build_schedule(binding)`` but O(stride x
    kernel) instead of O(rows + cols), and memoized on the row geometry —
    every layer sharing an output height / kernel / stride / padding reuses
    one summary.
    """
    layer = binding.layer
    if isinstance(layer, TransposedConvLayer):
        if layer.rank not in (2, 3):
            raise DataflowError(
                f"{layer.name}: dataflow schedules support 2-D and 3-D layers"
            )
        row_dim = layer.rank - 2
        return _summarize_row_geometry(
            binding.output_shape.spatial[row_dim],
            layer.kernel[row_dim],
            layer.stride[row_dim],
            layer.padding[row_dim],
        )
    if isinstance(layer, ConvLayer):
        row_dim = layer.rank - 2 if layer.rank >= 2 else 0
        out_rows = binding.output_shape.spatial[row_dim] if layer.rank >= 2 else 1
        kernel_rows = layer.kernel[row_dim] if layer.rank >= 2 else 1
        # Conventional convolutions are the degenerate single-pattern case:
        # stride-1 structure with every filter row consequential.
        return _summarize_row_geometry(out_rows, kernel_rows, 1, 0)
    raise DataflowError(f"layer '{binding.name}' is not convolutional")


def average_active_filter_rows(schedule: DataflowSchedule) -> float:
    """Row-count weighted average of consequential filter rows per output row."""
    rows = 0
    weighted = 0
    for group in schedule.row_groups:
        rows += len(group.output_rows)
        weighted += len(group.output_rows) * group.active_pes
    if rows == 0:
        return 0.0
    return weighted / rows


def pv_assignment(schedule: DataflowSchedule, num_pvs: int) -> Dict[int, List[int]]:
    """Round-robin assignment of output rows to PVs, group by group.

    Rows of the same group are assigned to consecutive PVs so that (a) rows
    sharing a pattern are adjacent, preserving filter-row reuse, and (b) at
    any instant different PVs may be working on different patterns, which is
    what the MIMD-SIMD execution model supports.
    """
    if num_pvs <= 0:
        raise DataflowError("num_pvs must be positive")
    assignment: Dict[int, List[int]] = {pv: [] for pv in range(num_pvs)}
    next_pv = 0
    for group in schedule.row_groups:
        for row in group.output_rows:
            assignment[next_pv].append(row)
            next_pv = (next_pv + 1) % num_pvs
    return assignment
