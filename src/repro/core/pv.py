"""Processing vector: a row of PEs sharing one local µop buffer.

A processing vector (PV) is the unit of MIMD-ness in GANAX: the PEs inside a
PV always execute the same µop (SIMD), while different PVs may execute
different µops selected by the per-PV index fields of a ``mimd.exe`` global
µop.  The PV also performs the horizontal accumulation of the partial-sum
rows its PEs produce, which is how an output row's value is completed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import ArchitectureConfig
from ..errors import SimulationError
from ..hw.counters import EventCounters
from ..isa.uops import (
    AddressGenerator,
    ConfigRegister,
    ExecuteUop,
    MicroOp,
    RepeatUop,
)
from .pe import ProcessingEngine
from .uop_buffers import LocalUopBuffer


class ProcessingVector:
    """A horizontal group of PEs plus its local µop buffer."""

    def __init__(
        self,
        pv_index: int,
        num_pes: int,
        config: Optional[ArchitectureConfig] = None,
        counters: Optional[EventCounters] = None,
        pe_buffer_words: Optional[dict] = None,
    ) -> None:
        if num_pes <= 0:
            raise SimulationError("a PV needs at least one PE")
        self._config = config or ArchitectureConfig.paper_default()
        self._pv_index = pv_index
        self._counters = counters if counters is not None else EventCounters()
        buffer_words = pe_buffer_words or {}
        self._pes: List[ProcessingEngine] = [
            ProcessingEngine(
                pv_index=pv_index,
                pe_index=i,
                config=self._config,
                counters=self._counters,
                input_words=buffer_words.get("input"),
                weight_words=buffer_words.get("weight"),
                output_words=buffer_words.get("output"),
            )
            for i in range(num_pes)
        ]
        self._local_buffer = LocalUopBuffer(
            entries=self._config.local_uop_entries,
            pv_index=pv_index,
            counters=self._counters,
        )
        self._accumulation_cycles = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def pv_index(self) -> int:
        return self._pv_index

    @property
    def pes(self) -> List[ProcessingEngine]:
        return self._pes

    @property
    def num_pes(self) -> int:
        return len(self._pes)

    @property
    def local_buffer(self) -> LocalUopBuffer:
        return self._local_buffer

    @property
    def busy(self) -> bool:
        return any(pe.busy for pe in self._pes)

    @property
    def accumulation_cycles(self) -> int:
        return self._accumulation_cycles

    def pe(self, index: int) -> ProcessingEngine:
        if not (0 <= index < len(self._pes)):
            raise SimulationError(
                f"PV {self._pv_index}: PE index {index} out of range"
            )
        return self._pes[index]

    # ------------------------------------------------------------------
    # Dispatch interface (called by the global controller)
    # ------------------------------------------------------------------
    def preload_local_uops(self, uops: Sequence[MicroOp]) -> None:
        self._local_buffer.preload(uops)

    def broadcast_uop(self, uop: MicroOp, pes: Optional[Sequence[int]] = None) -> bool:
        """Broadcast an execute-group µop to the PEs (SIMD within the PV).

        Returns False — and enqueues nothing — when any target µop FIFO is
        full, so the controller can retry next cycle (back-pressure).
        """
        if not isinstance(uop, (ExecuteUop, RepeatUop)):
            raise SimulationError(f"PV cannot broadcast {uop!r}")
        targets = self._pes if pes is None else [self._pes[i] for i in pes]
        if any(pe.execute.uop_fifo.is_full for pe in targets):
            return False
        # A RepeatUop and its follower must land in the FIFO together, so the
        # caller dispatches them as separate global µops; FIFO depth >= 2
        # guarantees both fit eventually.
        for pe in targets:
            if not pe.enqueue_uop(uop):  # pragma: no cover - guarded above
                raise SimulationError("µop FIFO overflow despite capacity check")
        return True

    def dispatch_local(self, index: int, pes: Optional[Sequence[int]] = None) -> bool:
        """MIMD-SIMD dispatch: fetch local µop ``index`` and broadcast it."""
        uop = self._local_buffer.fetch(index)
        return self.broadcast_uop(uop, pes=pes)

    def apply_access_cfg(
        self, generator: AddressGenerator, register: ConfigRegister, value: int
    ) -> None:
        for pe in self._pes:
            pe.apply_access_cfg(generator, register, value)

    def start_generator(self, generator: AddressGenerator) -> None:
        for pe in self._pes:
            pe.start_generator(generator)

    def stop_generator(self, generator: AddressGenerator) -> None:
        for pe in self._pes:
            pe.stop_generator(generator)

    def any_generator_running(self, generator: AddressGenerator) -> bool:
        return any(pe.generator_running(generator) for pe in self._pes)

    def set_repeat_register(self, value: int) -> None:
        for pe in self._pes:
            pe.set_repeat_register(value)

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Advance every PE one cycle; returns how many PEs did useful work."""
        return sum(1 for pe in self._pes if pe.tick())

    # ------------------------------------------------------------------
    # Horizontal accumulation
    # ------------------------------------------------------------------
    def accumulate_rows(self, width: int, active_pes: Optional[int] = None) -> List[float]:
        """Sum the partial-sum rows of the (active) PEs element-wise.

        Models the horizontal accumulation chain of Figures 4-5: partial sums
        hop from PE to PE and are added along the way.  The latency charged is
        ``width + active_pes`` cycles (a pipelined chain of ``active_pes``
        adders over ``width`` elements) and each element crosses
        ``active_pes - 1`` NoC links.
        """
        if width <= 0:
            raise SimulationError("accumulation width must be positive")
        count = len(self._pes) if active_pes is None else active_pes
        if not (0 < count <= len(self._pes)):
            raise SimulationError(
                f"PV {self._pv_index}: cannot accumulate over {count} PEs"
            )
        rows = [pe.read_output_row(width) for pe in self._pes[:count]]
        total = [sum(values) for values in zip(*rows)]
        hops = (count - 1) * width
        self._counters.noc_transfers += hops
        self._counters.alu_ops += hops
        self._accumulation_cycles += width + count
        return total
