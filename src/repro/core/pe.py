"""A GANAX processing engine: decoupled access and execute µ-engines.

Each PE (Figure 7a) owns:

* an :class:`~repro.core.access_engine.AccessEngine` with three strided
  µindex generators (input, weight, output) and their address FIFOs,
* an :class:`~repro.core.execute_engine.ExecuteEngine` with a µop FIFO, an
  ALU and an accumulator register, and
* three small data buffers: the input register file, the weight SRAM and the
  output (partial-sum) register file, sized per Table III.

The PE exposes a single :meth:`tick` that advances both µ-engines by one
cycle; they communicate only through the address FIFOs, so either engine can
run ahead of (or stall behind) the other — the decoupled access-execute
behaviour the paper relies on to amortise MIMD overheads.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..config import ArchitectureConfig
from ..errors import SimulationError
from ..hw.counters import EventCounters
from ..hw.sram import Scratchpad
from ..isa.uops import (
    AddressGenerator,
    ConfigRegister,
    ExecuteUop,
    MicroOp,
    RepeatUop,
)
from .access_engine import AccessEngine
from .execute_engine import ExecuteEngine


class ProcessingEngine:
    """One GANAX PE with decoupled access/execute µ-engines."""

    def __init__(
        self,
        pv_index: int,
        pe_index: int,
        config: Optional[ArchitectureConfig] = None,
        counters: Optional[EventCounters] = None,
        input_words: Optional[int] = None,
        weight_words: Optional[int] = None,
        output_words: Optional[int] = None,
    ) -> None:
        self._config = config or ArchitectureConfig.paper_default()
        self._pv_index = pv_index
        self._pe_index = pe_index
        self._counters = counters if counters is not None else EventCounters()
        name = f"pe[{pv_index}][{pe_index}]"

        self._input_buffer = Scratchpad(
            words=input_words or max(self._config.input_register_entries, 64),
            name=f"{name}.input",
            counters=self._counters,
            read_counter="register_file_reads",
            write_counter="register_file_writes",
        )
        self._weight_buffer = Scratchpad(
            words=weight_words or max(self._config.weight_sram_entries, 64),
            name=f"{name}.weight",
            counters=self._counters,
            read_counter="register_file_reads",
            write_counter="register_file_writes",
        )
        self._output_buffer = Scratchpad(
            words=output_words or max(self._config.partial_sum_register_entries, 64),
            name=f"{name}.output",
            counters=self._counters,
            read_counter="register_file_reads",
            write_counter="register_file_writes",
        )
        self._access = AccessEngine(
            fifo_depth=self._config.address_fifo_depth,
            counters=self._counters,
            name=f"{name}.access",
        )
        self._execute = ExecuteEngine(
            access=self._access,
            input_buffer=self._input_buffer,
            weight_buffer=self._weight_buffer,
            output_buffer=self._output_buffer,
            uop_fifo_depth=self._config.uop_fifo_depth,
            counters=self._counters,
            name=f"{name}.execute",
        )
        self._cycles = 0

    # ------------------------------------------------------------------
    # Identity and sub-components
    # ------------------------------------------------------------------
    @property
    def pv_index(self) -> int:
        return self._pv_index

    @property
    def pe_index(self) -> int:
        return self._pe_index

    @property
    def access(self) -> AccessEngine:
        return self._access

    @property
    def execute(self) -> ExecuteEngine:
        return self._execute

    @property
    def input_buffer(self) -> Scratchpad:
        return self._input_buffer

    @property
    def weight_buffer(self) -> Scratchpad:
        return self._weight_buffer

    @property
    def output_buffer(self) -> Scratchpad:
        return self._output_buffer

    @property
    def counters(self) -> EventCounters:
        return self._counters

    @property
    def cycles(self) -> int:
        return self._cycles

    @property
    def busy(self) -> bool:
        """True while either µ-engine has outstanding work."""
        return self._access.busy or self._execute.busy

    # ------------------------------------------------------------------
    # Control interface (driven by the global controller / PV)
    # ------------------------------------------------------------------
    def apply_access_cfg(
        self, generator: AddressGenerator, register: ConfigRegister, value: int
    ) -> None:
        self._access.write_register(generator, register, value)

    def start_generator(self, generator: AddressGenerator) -> None:
        self._access.start(generator)

    def stop_generator(self, generator: AddressGenerator) -> None:
        self._access.stop(generator)

    def generator_running(self, generator: AddressGenerator) -> bool:
        return self._access.generator(generator).running

    def set_repeat_register(self, value: int) -> None:
        self._execute.set_repeat_register(value)

    def enqueue_uop(self, uop: MicroOp) -> bool:
        """Push a dispatched execute-group µop; False when the FIFO is full."""
        if not isinstance(uop, (ExecuteUop, RepeatUop)):
            raise SimulationError(f"PE cannot execute {uop!r}")
        return self._execute.enqueue(uop)

    # ------------------------------------------------------------------
    # Data movement helpers (modelled as fills from the global buffer)
    # ------------------------------------------------------------------
    def load_input_row(self, values: Iterable[float], base: int = 0) -> None:
        values = list(values)
        self._input_buffer.load(values, base=base)
        self._count_fill(len(values))

    def load_weight_row(self, values: Iterable[float], base: int = 0) -> None:
        values = list(values)
        self._weight_buffer.load(values, base=base)
        self._count_fill(len(values))

    def read_output_row(self, count: int, base: int = 0) -> List[float]:
        return self._output_buffer.dump(base=base, count=count)

    def clear_output(self) -> None:
        self._output_buffer.clear()

    def _count_fill(self, words: int) -> None:
        """A buffer fill reads the global buffer and crosses the NoC once per word."""
        self._counters.global_buffer_reads += words
        self._counters.noc_transfers += words

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    def tick(self) -> bool:
        """Advance both µ-engines one cycle; True if the execute engine worked."""
        self._cycles += 1
        self._access.tick()
        return self._execute.tick()
