"""GANAX core: dataflow, ISA-level machine, compiler and analytical simulator."""

from .access_engine import AccessEngine
from .compiler import GanaxLayerExecutor, LayerExecution
from .dataflow import (
    ColumnSegment,
    DataflowSchedule,
    RowGroup,
    average_active_filter_rows,
    build_schedule,
    pv_assignment,
)
from .execute_engine import ExecuteEngine
from .index_generator import GeneratorConfig, StridedIndexGenerator
from .machine import GanaxMachine, MachineRunStatistics
from .pe import ProcessingEngine
from .performance import GanaxLayerEstimate, estimate_layer
from .pv import ProcessingVector
from .simulator import ACCELERATOR_NAME, GanaxSimulator
from .uop_buffers import GlobalUopBuffer, LocalUopBuffer

__all__ = [
    "AccessEngine",
    "GanaxLayerExecutor",
    "LayerExecution",
    "ColumnSegment",
    "DataflowSchedule",
    "RowGroup",
    "average_active_filter_rows",
    "build_schedule",
    "pv_assignment",
    "ExecuteEngine",
    "GeneratorConfig",
    "StridedIndexGenerator",
    "GanaxMachine",
    "MachineRunStatistics",
    "ProcessingEngine",
    "GanaxLayerEstimate",
    "estimate_layer",
    "ProcessingVector",
    "ACCELERATOR_NAME",
    "GanaxSimulator",
    "GlobalUopBuffer",
    "LocalUopBuffer",
]
