"""Hierarchical µop buffers (paper Section III-A).

GANAX uses a two-level µop buffer hierarchy:

* one **global µop buffer** (32 entries x 64 bits) shared by the whole array,
  holding the statically-translated µop stream of the current layer; it is
  double-buffered so the next layer's µops can be loaded while the current
  layer executes, and
* one **local µop buffer** per processing vector (16 entries x 16 bits),
  preloaded once with the small set of execute µops, which a ``mimd.exe``
  global µop indexes with a 4-bit field per PV.

In SIMD mode the local buffers are bypassed and the global µop is broadcast
to every PE; in MIMD-SIMD mode each PV fetches the µop its index selects and
broadcasts it to its own PEs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ProgramError, SimulationError
from ..hw.counters import EventCounters
from ..isa.uops import ExecuteUop, MicroOp, RepeatUop


class LocalUopBuffer:
    """Per-PV local µop buffer."""

    def __init__(
        self,
        entries: int,
        pv_index: int,
        counters: Optional[EventCounters] = None,
    ) -> None:
        if entries <= 0:
            raise SimulationError("local µop buffer must have at least one entry")
        self._entries = entries
        self._pv_index = pv_index
        self._uops: List[MicroOp] = []
        self._counters = counters
        self._fetches = 0

    @property
    def capacity(self) -> int:
        return self._entries

    @property
    def occupancy(self) -> int:
        return len(self._uops)

    @property
    def fetches(self) -> int:
        return self._fetches

    def preload(self, uops: Sequence[MicroOp]) -> None:
        """Load the buffer contents before execution starts."""
        uops = list(uops)
        if len(uops) > self._entries:
            raise ProgramError(
                f"PV {self._pv_index}: {len(uops)} µops exceed the local buffer "
                f"capacity of {self._entries}"
            )
        for uop in uops:
            if not isinstance(uop, (ExecuteUop, RepeatUop)):
                raise ProgramError(
                    f"PV {self._pv_index}: {uop!r} cannot live in a local µop buffer"
                )
        self._uops = uops

    def fetch(self, index: int) -> MicroOp:
        """Fetch the µop at ``index`` (the MIMD-SIMD path)."""
        if not (0 <= index < len(self._uops)):
            raise SimulationError(
                f"PV {self._pv_index}: local µop index {index} out of range "
                f"(buffer holds {len(self._uops)} µops)"
            )
        self._fetches += 1
        if self._counters is not None:
            self._counters.uop_fetches += 1
        return self._uops[index]

    def contents(self) -> Tuple[MicroOp, ...]:
        return tuple(self._uops)


class GlobalUopBuffer:
    """The double-buffered global µop buffer.

    The buffer holds ``entries`` µops at a time; programs longer than one
    buffer's worth are streamed in refills (the double-buffering hides the
    refill latency, so the model charges only the fetch energy).
    """

    def __init__(
        self,
        entries: int,
        counters: Optional[EventCounters] = None,
    ) -> None:
        if entries <= 0:
            raise SimulationError("global µop buffer must have at least one entry")
        self._entries = entries
        self._counters = counters
        self._stream: List[MicroOp] = []
        self._pc = 0
        self._fetches = 0
        self._refills = 0

    @property
    def capacity(self) -> int:
        return self._entries

    @property
    def program_counter(self) -> int:
        return self._pc

    @property
    def fetches(self) -> int:
        return self._fetches

    @property
    def refills(self) -> int:
        """Number of times a fresh window of µops had to be streamed in."""
        return self._refills

    @property
    def exhausted(self) -> bool:
        return self._pc >= len(self._stream)

    def load_program(self, uops: Sequence[MicroOp]) -> None:
        """Load a (possibly multi-window) µop stream and reset the PC."""
        self._stream = list(uops)
        self._pc = 0
        self._refills = max(0, (len(self._stream) - 1)) // self._entries

    def peek(self) -> Optional[MicroOp]:
        """The µop the controller would dispatch next (None when exhausted)."""
        if self.exhausted:
            return None
        return self._stream[self._pc]

    def advance(self) -> MicroOp:
        """Consume the current µop (called once the dispatch succeeded)."""
        if self.exhausted:
            raise SimulationError("global µop buffer is exhausted")
        uop = self._stream[self._pc]
        self._pc += 1
        self._fetches += 1
        if self._counters is not None:
            self._counters.uop_fetches += 1
        return uop

    def remaining(self) -> int:
        return len(self._stream) - self._pc
