"""Layer-to-microprogram compiler and cycle-level layer executor.

The compiler lowers a small single-channel 2-D (transposed) convolution onto
the cycle-level :class:`~repro.core.machine.GanaxMachine`:

* the :class:`~repro.core.dataflow.DataflowSchedule` decides which output rows
  and which consequential filter rows each processing vector works on,
* each PE receives one (packed) input row and one filter row in its private
  buffers,
* the access µ-engines are configured with strided patterns that enumerate
  exactly the consequential operand addresses, and
* the execute stream is the tiny reusable set the paper describes —
  ``repeat`` + ``mac`` per output element, followed by ``act`` to commit it —
  dispatched with ``mimd.exe`` so different PVs can run different patterns.

Two dataflow modes are supported so the benefit of the GANAX reorganization
can be measured on identical hardware:

* :meth:`GanaxLayerExecutor.run_transposed_conv` with ``skip_zeros=True``
  (GANAX): only consequential taps are enumerated;
* the same entry point with ``skip_zeros=False`` (conventional): the window
  walks the zero-inserted input, spending multiply-adds on inserted zeros
  exactly like a conventional convolution dataflow.

The executor is restricted to single input / output channel layers whose
kernel height fits within one PV; multi-channel behaviour is covered by the
analytical model.  Within that restriction its numerical output is validated
against the NumPy functional reference.

Note on dispatch bandwidth: the executor issues the access configuration µops
of every output column through the single global dispatch port, so its
wall-clock cycle counts over-weigh control relative to a production mapping
that would amortise one configuration over a long-running pattern.  The
quantities meant for comparisons are therefore the PE-level statistics
(executed µops / MAC counts), while end-to-end performance numbers come from
:mod:`repro.core.performance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ArchitectureConfig
from ..errors import CompilationError
from ..isa.program import MicroProgram, MicroProgramBuilder
from ..isa.uops import (
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    RepeatUop,
)
from ..nn.functional import insert_zeros_2d
from ..nn.layers import ConvLayer, TransposedConvLayer
from ..nn.network import LayerBinding
from ..nn.shapes import FeatureMapShape
from ..schedule import ScheduleLike, ScheduleSpec, resolve_schedule
from .dataflow import DataflowSchedule, build_schedule
from .machine import GanaxMachine, MachineRunStatistics


@dataclass(frozen=True)
class ColumnWork:
    """The operand addressing of one output column for one PV."""

    taps: int
    input_base: int
    weight_base: int
    weight_step: int
    output_column: int


@dataclass(frozen=True)
class RowTask:
    """One output row's worth of work for one PV within one wave."""

    pv_index: int
    output_row: int
    filter_rows: Tuple[int, ...]
    columns: Tuple[ColumnWork, ...]


@dataclass(frozen=True)
class LayerExecution:
    """Result of executing one small layer on the cycle-level machine."""

    layer_name: str
    output: np.ndarray
    cycles: int
    waves: int
    statistics: Tuple[MachineRunStatistics, ...]
    skip_zeros: bool

    @property
    def executed_pe_uops(self) -> int:
        return sum(s.executed_pe_uops for s in self.statistics)

    @property
    def pe_busy_cycles(self) -> int:
        return sum(s.pe_busy_cycles for s in self.statistics)


class GanaxLayerExecutor:
    """Compile and run small single-channel 2-D layers on the GANAX machine."""

    def __init__(
        self,
        num_pvs: int = 2,
        pes_per_pv: int = 4,
        config: Optional[ArchitectureConfig] = None,
        skip_zeros: bool = True,
        schedule: ScheduleLike = None,
    ) -> None:
        if num_pvs <= 0 or pes_per_pv <= 0:
            raise CompilationError("executor dimensions must be positive")
        self._num_pvs = num_pvs
        self._pes_per_pv = pes_per_pv
        self._config = config or ArchitectureConfig.paper_default()
        self._skip_zeros = skip_zeros
        self._schedule = resolve_schedule(schedule)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run_transposed_conv(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        stride: int,
        padding: int,
    ) -> LayerExecution:
        """Execute a single-channel 2-D transposed convolution.

        ``x`` has shape ``(H, W)``; ``weight`` has shape ``(kH, kW)`` in the
        transposed-convolution (scatter) convention, matching
        :func:`repro.nn.functional.transposed_conv2d` with single channels.
        """
        self._check_2d(x, weight)
        layer = TransposedConvLayer(
            name="tconv_exec",
            out_channels=1,
            kernel=(weight.shape[0], weight.shape[1]),
            stride=stride,
            padding=padding,
        )
        input_shape = FeatureMapShape.image(1, x.shape[0], x.shape[1])
        binding = _bind(layer, input_shape)
        if self._skip_zeros:
            return self._run_ganax_dataflow(binding, x, weight)
        return self._run_conventional_dataflow(binding, x, weight)

    def run_conv(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        stride: int,
        padding: int,
    ) -> LayerExecution:
        """Execute a single-channel 2-D conventional convolution (SIMD-style)."""
        self._check_2d(x, weight)
        layer = ConvLayer(
            name="conv_exec",
            out_channels=1,
            kernel=(weight.shape[0], weight.shape[1]),
            stride=stride,
            padding=padding,
        )
        input_shape = FeatureMapShape.image(1, x.shape[0], x.shape[1])
        binding = _bind(layer, input_shape)
        padded = np.pad(x, ((padding, padding), (padding, padding)))
        tasks = self._dense_tasks(binding, padded, weight, stride)
        return self._execute_tasks(binding, tasks, skip_zeros=True)

    @staticmethod
    def _check_2d(x: np.ndarray, weight: np.ndarray) -> None:
        if x.ndim != 2 or weight.ndim != 2:
            raise CompilationError(
                "the cycle-level executor handles 2-D single-channel data"
            )

    # ------------------------------------------------------------------
    # GANAX dataflow (zero skipping + reorganization)
    # ------------------------------------------------------------------
    def _run_ganax_dataflow(
        self, binding: LayerBinding, x: np.ndarray, weight: np.ndarray
    ) -> LayerExecution:
        layer = binding.layer
        assert isinstance(layer, TransposedConvLayer)
        schedule = build_schedule(binding, self._schedule)
        max_active = max(len(g.filter_rows) for g in schedule.row_groups)
        if max_active > self._pes_per_pv:
            raise CompilationError(
                f"{binding.name}: needs {max_active} active PEs per PV but the "
                f"executor has only {self._pes_per_pv}"
            )
        in_rows, in_cols = x.shape
        tasks = plan_ganax_row_tasks(
            layer, in_cols, schedule, self._num_pvs, schedule_spec=self._schedule
        )

        def load_operands(machine: GanaxMachine, task: RowTask) -> int:
            active = len(task.filter_rows)
            k_rows, k_cols = weight.shape
            for j, kernel_row in enumerate(task.filter_rows):
                input_row_index = _input_row_for(task.output_row, kernel_row, layer, in_rows)
                if input_row_index is None:
                    input_row = np.zeros(in_cols)
                else:
                    input_row = x[input_row_index, :]
                # The zero-insertion formulation convolves with the flipped
                # kernel: enumerated kernel index k pairs with weight index
                # K-1-k, so each PE holds the flipped row of the flipped
                # kernel-row index.
                flipped_row = weight[k_rows - 1 - kernel_row, ::-1]
                machine.load_pe_operands(task.pv_index, j, list(input_row), list(flipped_row))
            for j in range(active, self._pes_per_pv):
                machine.load_pe_operands(task.pv_index, j, [0.0] * in_cols, [0.0] * k_cols)
            return active

        return self._execute_tasks(
            binding, tasks, skip_zeros=True, load_operands=load_operands
        )

    # ------------------------------------------------------------------
    # Conventional (dense) dataflow over the zero-inserted input
    # ------------------------------------------------------------------
    def _run_conventional_dataflow(
        self, binding: LayerBinding, x: np.ndarray, weight: np.ndarray
    ) -> LayerExecution:
        layer = binding.layer
        assert isinstance(layer, TransposedConvLayer)
        expanded = insert_zeros_2d(
            x[np.newaxis, :, :], (layer.stride[0], layer.stride[1])
        )[0]
        out_rows, out_cols = binding.output_shape.spatial
        pad_top = layer.kernel[0] - 1 - layer.padding[0]
        pad_left = layer.kernel[1] - 1 - layer.padding[1]
        pad_bottom = out_rows + layer.kernel[0] - 1 - pad_top - expanded.shape[0]
        pad_right = out_cols + layer.kernel[1] - 1 - pad_left - expanded.shape[1]
        padded = np.pad(expanded, ((pad_top, pad_bottom), (pad_left, pad_right)))
        flipped = np.flip(np.flip(weight, 0), 1)
        tasks = self._dense_tasks(binding, padded, flipped, stride=1)
        result = self._execute_tasks(
            binding,
            tasks,
            skip_zeros=False,
            operands=(padded, flipped),
        )
        return result

    def _dense_tasks(
        self,
        binding: LayerBinding,
        padded: np.ndarray,
        weight: np.ndarray,
        stride: int,
    ) -> List[RowTask]:
        k_rows, k_cols = weight.shape
        if k_rows > self._pes_per_pv:
            raise CompilationError(
                f"{binding.name}: kernel height {k_rows} exceeds {self._pes_per_pv} PEs per PV"
            )
        out_rows, out_cols = binding.output_shape.spatial
        tasks = plan_dense_row_tasks(
            out_rows,
            out_cols,
            k_rows,
            k_cols,
            stride,
            self._num_pvs,
            schedule_spec=self._schedule,
        )
        # Dense tasks carry their operands implicitly via the padded array /
        # weight captured in the default loader below.
        self._dense_operands = (padded, weight, stride)
        return tasks

    # ------------------------------------------------------------------
    # Shared execution engine
    # ------------------------------------------------------------------
    def _execute_tasks(
        self,
        binding: LayerBinding,
        tasks: Sequence[RowTask],
        skip_zeros: bool,
        load_operands=None,
        operands: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> LayerExecution:
        out_rows, out_cols = binding.output_shape.spatial
        output = np.zeros((out_rows, out_cols), dtype=np.float64)
        waves = _chunk(tasks, self._num_pvs)
        stats: List[MachineRunStatistics] = []
        total_cycles = 0

        if load_operands is None:
            padded, weight, stride = self._dense_operands

            def load_operands(machine: GanaxMachine, task: RowTask) -> int:  # type: ignore[misc]
                k_rows, k_cols = weight.shape
                for j in range(k_rows):
                    input_row = padded[task.output_row * stride + j, :]
                    machine.load_pe_operands(task.pv_index, j, list(input_row), list(weight[j, :]))
                for j in range(k_rows, self._pes_per_pv):
                    machine.load_pe_operands(
                        task.pv_index, j, [0.0] * padded.shape[1], [0.0] * k_cols
                    )
                return k_rows

        max_words = 4096
        for wave in waves:
            machine = self._new_machine(max_words, max_words, max(out_cols, 16))
            active_by_pv: Dict[int, int] = {}
            for task in wave:
                active_by_pv[task.pv_index] = load_operands(machine, task)
            program = build_wave_program(
                binding.name, wave, self._num_pvs, schedule_spec=self._schedule
            )
            machine.load_program(program)
            run = machine.run()
            stats.append(run)
            total_cycles += run.cycles
            for task in wave:
                row_values = machine.accumulate_pv(
                    task.pv_index, out_cols, active_pes=active_by_pv[task.pv_index]
                )
                output[task.output_row, :] = row_values
            total_cycles += out_cols + max(active_by_pv.values())

        return LayerExecution(
            layer_name=binding.name,
            output=output,
            cycles=total_cycles,
            waves=len(waves),
            statistics=tuple(stats),
            skip_zeros=skip_zeros,
        )

    def _new_machine(self, input_words: int, weight_words: int, output_words: int) -> GanaxMachine:
        return GanaxMachine(
            num_pvs=self._num_pvs,
            pes_per_pv=self._pes_per_pv,
            config=self._config,
            pe_buffer_words={
                "input": max(16, input_words),
                "weight": max(16, weight_words),
                "output": max(16, output_words),
            },
        )


# ----------------------------------------------------------------------
# Static compilation (operand-free planning and program emission)
# ----------------------------------------------------------------------
def plan_ganax_row_tasks(
    layer: TransposedConvLayer,
    in_cols: int,
    schedule: DataflowSchedule,
    num_pvs: int,
    schedule_spec: ScheduleLike = None,
) -> List[RowTask]:
    """Plan the GANAX (zero-skipping) row tasks for one 2-D layer slice.

    Pure geometry: the plan depends only on the layer's kernel/stride/padding
    and the input width, never on operand values, so the same tasks drive both
    the cycle-level executor and static program compilation.

    ``schedule_spec`` applies the ordering knobs of a
    :class:`~repro.schedule.ScheduleSpec` — row walk, PV policy and column
    traversal — over the fixed work the :class:`DataflowSchedule` describes.
    Each task always covers one *full* output row (the executor commits whole
    rows), so no spec can split a row across tasks.
    """
    spec = resolve_schedule(schedule_spec)
    planned: List[Tuple[int, Tuple[int, ...], Tuple[ColumnWork, ...]]] = []
    for output_row, group in schedule.row_plan(spec):
        columns = tuple(
            ColumnWork(
                taps=taps,
                input_base=input_base,
                weight_base=kernel_cols[0],
                weight_step=layer.stride[1],
                output_column=out_col,
            )
            for out_col in range(schedule.output_cols)
            for taps, kernel_cols, input_base in [
                _column_window(out_col, layer, in_cols)
            ]
            if taps > 0
        )
        planned.append(
            (output_row, group.filter_rows, spec.permute_columns(columns))
        )
    tasks: List[RowTask] = []
    for index, pv in spec.task_emission(len(planned), num_pvs):
        output_row, filter_rows, columns = planned[index]
        tasks.append(
            RowTask(
                pv_index=pv,
                output_row=output_row,
                filter_rows=filter_rows,
                columns=columns,
            )
        )
    return tasks


def plan_dense_row_tasks(
    out_rows: int,
    out_cols: int,
    k_rows: int,
    k_cols: int,
    stride: int,
    num_pvs: int,
    schedule_spec: ScheduleLike = None,
) -> List[RowTask]:
    """Plan the conventional (dense) row tasks: every tap of every window.

    The schedule spec's PV-policy and column-traversal knobs apply exactly as
    in the zero-skipping planner (``row_order`` is moot: the dense walk is
    already a raster over a single pattern).
    """
    spec = resolve_schedule(schedule_spec)
    columns = spec.permute_columns(
        tuple(
            ColumnWork(
                taps=k_cols,
                input_base=out_col * stride,
                weight_base=0,
                weight_step=1,
                output_column=out_col,
            )
            for out_col in range(out_cols)
        )
    )
    filter_rows = tuple(range(k_rows))
    tasks: List[RowTask] = []
    for row, pv in spec.task_emission(out_rows, num_pvs):
        tasks.append(
            RowTask(
                pv_index=pv,
                output_row=row,
                filter_rows=filter_rows,
                columns=columns,
            )
        )
    return tasks


def build_wave_program(
    name: str,
    wave: Sequence[RowTask],
    num_pvs: int,
    schedule_spec: ScheduleLike = None,
) -> MicroProgram:
    """Column-synchronised micro-program for one wave of row tasks.

    All tasks advance column index in lockstep: per column, each active PV
    receives its own access configuration (per-PV µops) and then three
    ``mimd.exe`` µops dispatch ``repeat``/``mac``/``act`` to every PV.  PVs
    that have exhausted their columns receive a ``nop``.  Each PV's local
    buffer is preloaded with exactly the µops it will be dispatched — active
    PVs get ``mac``/``act``/``repeat`` (plus ``nop`` if some dispatch leaves
    them idle), PVs with no work in the wave get only ``nop`` — so compiled
    programs carry no dead local µops.

    The schedule spec's lowering knobs act here: ``repeat_unroll`` splits a
    column's accumulation into several repeat/mac dispatch groups before the
    single committing ``act`` (exact, because the PE accumulator persists
    across dispatches), and ``hoist_invariant_cfg`` elides configuration and
    repeat-register writes whose target already holds the value (exact,
    because the machine's registers persist until rewritten).  The default
    spec reproduces the legacy emission byte-identically.
    """
    spec = resolve_schedule(schedule_spec)
    builder = MicroProgramBuilder(name=name, num_pvs=num_pvs)
    mac = ExecuteUop(op=ExecuteOp.MAC)
    act = ExecuteUop(op=ExecuteOp.ACT, activation="identity")
    rep = RepeatUop()
    nop = ExecuteUop(op=ExecuteOp.NOP)

    by_pv = {task.pv_index: task for task in wave}
    max_columns = max(len(task.columns) for task in wave)
    column_active: List[List[int]] = [
        [
            pv
            for pv in range(num_pvs)
            if by_pv.get(pv) is not None and column_index < len(by_pv[pv].columns)
        ]
        for column_index in range(max_columns)
    ]
    # Per column, split each active PV's repeat count into the spec's unroll
    # parts (part 0 is never empty); the dispatch groups decide preloading.
    column_parts: List[Dict[int, Tuple[int, ...]]] = [
        {
            pv: spec.split_repeat(by_pv[pv].columns[column_index].taps)
            for pv in column_active[column_index]
        }
        for column_index in range(max_columns)
    ]
    dispatch_groups: List[List[int]] = []
    for column_index in range(max_columns):
        active = column_active[column_index]
        if not active:
            continue
        dispatch_groups.append(active)
        for part in range(1, spec.repeat_unroll):
            group = [
                pv for pv in active if column_parts[column_index][pv][part] > 0
            ]
            if group:
                dispatch_groups.append(group)
    mac_idx: Dict[int, int] = {}
    act_idx: Dict[int, int] = {}
    rep_idx: Dict[int, int] = {}
    nop_idx: Dict[int, int] = {}
    for pv in range(num_pvs):
        if any(pv in group for group in dispatch_groups):
            mac_idx[pv] = builder.preload_local(pv, mac)
            act_idx[pv] = builder.preload_local(pv, act)
            rep_idx[pv] = builder.preload_local(pv, rep)
        if any(pv not in group for group in dispatch_groups):
            nop_idx[pv] = builder.preload_local(pv, nop)

    cfg_state: Optional[Dict[Tuple[int, AddressGenerator, ConfigRegister], int]]
    repeat_state: Optional[Dict[int, int]]
    cfg_state = {} if spec.hoist_invariant_cfg else None
    repeat_state = {} if spec.hoist_invariant_cfg else None

    for column_index in range(max_columns):
        active_pvs = column_active[column_index]
        parts = column_parts[column_index]
        for pv in active_pvs:
            work = by_pv[pv].columns[column_index]
            _emit_generator(
                builder, pv, AddressGenerator.INPUT,
                offset=work.input_base, end=work.taps, repeat=1,
                cfg_state=cfg_state,
            )
            _emit_generator(
                builder, pv, AddressGenerator.WEIGHT,
                offset=work.weight_base,
                end=(work.taps - 1) * work.weight_step + 1,
                repeat=1,
                step=work.weight_step,
                cfg_state=cfg_state,
            )
            _emit_generator(
                builder, pv, AddressGenerator.OUTPUT,
                offset=work.output_column, end=1, repeat=1,
                cfg_state=cfg_state,
            )
            _emit_repeat_load(builder, pv, parts[pv][0], repeat_state)
        if not active_pvs:
            continue

        def indices(active_map, idle_map, group):
            return [
                active_map[pv] if pv in group else idle_map[pv]
                for pv in range(num_pvs)
            ]

        builder.emit_mimd(indices(rep_idx, nop_idx, active_pvs))
        builder.emit_mimd(indices(mac_idx, nop_idx, active_pvs))
        for part in range(1, spec.repeat_unroll):
            group = [pv for pv in active_pvs if parts[pv][part] > 0]
            if not group:
                continue
            for pv in group:
                _emit_repeat_load(builder, pv, parts[pv][part], repeat_state)
            builder.emit_mimd(indices(rep_idx, nop_idx, group))
            builder.emit_mimd(indices(mac_idx, nop_idx, group))
        builder.emit_mimd(indices(act_idx, nop_idx, active_pvs))
    return builder.build()


def _emit_generator(
    builder: MicroProgramBuilder,
    pv: int,
    generator: AddressGenerator,
    *,
    offset: int,
    end: int,
    repeat: int,
    step: int = 1,
    addr: int = 0,
    cfg_state: Optional[Dict[Tuple[int, AddressGenerator, ConfigRegister], int]] = None,
) -> None:
    # A single-address pattern (End=1) degenerates to step 1: the hardware
    # constrains Step <= End.
    step = min(step, end)
    for register, value in (
        (ConfigRegister.ADDR, addr),
        (ConfigRegister.OFFSET, offset),
        (ConfigRegister.STEP, step),
        (ConfigRegister.END, end),
        (ConfigRegister.REPEAT, repeat),
    ):
        if cfg_state is not None:
            key = (pv, generator, register)
            if cfg_state.get(key) == value:
                continue
            cfg_state[key] = value
        builder.emit_access_cfg(pv, generator, register, value)
    builder.emit_access_start(pv, generator)


def _emit_repeat_load(
    builder: MicroProgramBuilder,
    pv: int,
    count: int,
    repeat_state: Optional[Dict[int, int]],
) -> None:
    """``mimd.ld`` of the per-PV repeat register, elidable when hoisting."""
    if repeat_state is not None:
        if repeat_state.get(pv) == count:
            return
        repeat_state[pv] = count
    builder.emit_mimd_load(pv, "repeat", count)


def compile_layer_programs(
    binding: LayerBinding,
    *,
    num_pvs: int,
    pes_per_pv: int,
    skip_zeros: bool = True,
    max_waves: Optional[int] = None,
    max_columns: Optional[int] = None,
    schedule: ScheduleLike = None,
) -> Tuple[MicroProgram, ...]:
    """Statically compile a convolutional layer binding to micro-programs.

    Emits the exact per-wave programs the cycle-level executor would run for a
    single-channel 2-D slice of the layer (rank-3 layers compile their spatial
    slice; the channel dimension is covered by the analytical model).  No
    operand data is needed — planning and emission are pure geometry — which
    makes this the entry point for static verification and disassembly.

    ``max_waves`` / ``max_columns`` bound the emitted program to a
    representative tile so whole-workload grids stay cheap; the µop *pattern*
    of the truncated program is identical to the full one.

    ``schedule`` selects the :class:`~repro.schedule.ScheduleSpec` lowering
    the fixed layer algorithm (spec string, instance, or ``None`` for the
    default, which reproduces the legacy emission byte-identically).
    """
    if num_pvs <= 0 or pes_per_pv <= 0:
        raise CompilationError("compile dimensions must be positive")
    spec = resolve_schedule(schedule)
    layer = binding.layer
    if not isinstance(layer, (ConvLayer, TransposedConvLayer)):
        raise CompilationError(
            f"{binding.name}: only convolutional layers compile to micro-programs, "
            f"got {type(layer).__name__}"
        )
    in_rows, in_cols = binding.input_shape.spatial[-2:]
    slice_cls = TransposedConvLayer if isinstance(layer, TransposedConvLayer) else ConvLayer
    slice_layer = slice_cls(
        name=layer.name,
        out_channels=1,
        kernel=(layer.kernel[-2], layer.kernel[-1]),
        stride=(layer.stride[-2], layer.stride[-1]),
        padding=(layer.padding[-2], layer.padding[-1]),
    )
    slice_binding = _bind(slice_layer, FeatureMapShape.image(1, in_rows, in_cols))
    out_rows, out_cols = slice_binding.output_shape.spatial
    k_rows, k_cols = slice_layer.kernel

    if isinstance(slice_layer, TransposedConvLayer) and skip_zeros:
        dataflow = build_schedule(slice_binding, spec)
        max_active = max(len(g.filter_rows) for g in dataflow.row_groups)
        if max_active > pes_per_pv:
            raise CompilationError(
                f"{binding.name}: needs {max_active} active PEs per PV but the "
                f"target has only {pes_per_pv}"
            )
        tasks = plan_ganax_row_tasks(
            slice_layer, in_cols, dataflow, num_pvs, schedule_spec=spec
        )
    else:
        if k_rows > pes_per_pv:
            raise CompilationError(
                f"{binding.name}: kernel height {k_rows} exceeds {pes_per_pv} PEs per PV"
            )
        stride = 1 if isinstance(slice_layer, TransposedConvLayer) else slice_layer.stride[1]
        tasks = plan_dense_row_tasks(
            out_rows, out_cols, k_rows, k_cols, stride, num_pvs, schedule_spec=spec
        )

    if max_columns is not None:
        tasks = [
            RowTask(
                pv_index=task.pv_index,
                output_row=task.output_row,
                filter_rows=task.filter_rows,
                columns=task.columns[:max_columns],
            )
            for task in tasks
        ]
    tasks = [task for task in tasks if task.columns]
    if not tasks:
        return ()
    waves = _chunk(tasks, num_pvs)
    if max_waves is not None:
        waves = waves[:max_waves]
    return tuple(
        build_wave_program(binding.name, wave, num_pvs, schedule_spec=spec)
        for wave in waves
    )


# ----------------------------------------------------------------------
# Module-level helpers
# ----------------------------------------------------------------------
def _bind(layer, input_shape: FeatureMapShape) -> LayerBinding:
    """Create a standalone binding without constructing a full network."""
    return LayerBinding(
        index=0,
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.output_shape(input_shape),
    )


def _chunk(tasks: Sequence[RowTask], num_pvs: int) -> List[List[RowTask]]:
    """Split row tasks into waves with at most one task per PV."""
    waves: List[List[RowTask]] = []
    current: List[RowTask] = []
    used: set = set()
    for task in tasks:
        if task.pv_index in used:
            waves.append(current)
            current = []
            used = set()
        current.append(task)
        used.add(task.pv_index)
    if current:
        waves.append(current)
    return waves


def _input_row_for(
    output_row: int, kernel_row: int, layer: TransposedConvLayer, in_rows: int
) -> Optional[int]:
    """Genuine input row paired with enumerated ``kernel_row`` for ``output_row``.

    Returns None when the tap falls on an inserted zero or outside the input
    (border), in which case the PE's contribution is zero.
    """
    border = layer.kernel[0] - 1 - layer.padding[0]
    expanded_row = output_row + kernel_row - border
    if expanded_row < 0:
        return None
    if expanded_row % layer.stride[0] != 0:
        return None
    genuine = expanded_row // layer.stride[0]
    if genuine >= in_rows:
        return None
    return genuine


def _column_window(
    out_col: int,
    layer: TransposedConvLayer,
    in_cols: int,
) -> Tuple[int, Tuple[int, ...], int]:
    """Consequential column taps for one output column.

    Returns ``(taps, enumerated_kernel_columns, first_genuine_input_column)``
    with border clipping applied, so edge columns naturally get fewer taps.
    The weight buffer holds the *flipped* filter row, so the enumerated kernel
    column indices address it directly.
    """
    border = layer.kernel[1] - 1 - layer.padding[1]
    kernel_cols = []
    genuine_cols = []
    for k in range(layer.kernel[1]):
        expanded = out_col + k - border
        if expanded < 0 or expanded % layer.stride[1] != 0:
            continue
        genuine = expanded // layer.stride[1]
        if genuine >= in_cols:
            continue
        kernel_cols.append(k)
        genuine_cols.append(genuine)
    if not kernel_cols:
        return 0, (), 0
    return len(kernel_cols), tuple(kernel_cols), genuine_cols[0]
