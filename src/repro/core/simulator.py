"""Whole-network simulator for the GANAX accelerator.

:class:`GanaxSimulator` mirrors :class:`~repro.baseline.simulator.EyerissSimulator`
but uses the GANAX analytical model (:mod:`repro.core.performance`): transposed
convolutions run in MIMD-SIMD mode with the reorganized dataflow and zero
skipping, every other layer runs in plain SIMD mode at baseline efficiency.
It registers itself as the ``"ganax"`` entry of the accelerator registry;
setting ``SimulationOptions.ganax_zero_skipping`` to False degrades the
transposed convolutions to dense execution (the ``"ganax-noskip"`` registry
variant packages exactly that).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..accelerators.base import GanSimulatorBase
from ..accelerators.registry import register_accelerator
from ..analysis.results import LayerResult
from ..nn.network import LayerBinding
from .performance import GanaxLayerEstimate, estimate_layer, estimate_network

#: Canonical accelerator identifier used in results.
ACCELERATOR_NAME = "ganax"


@register_accelerator(ACCELERATOR_NAME)
class GanaxSimulator(GanSimulatorBase):
    """Analytical simulator of the GANAX MIMD-SIMD accelerator."""

    accelerator_name = ACCELERATOR_NAME
    summary = (
        "GANAX unified MIMD-SIMD accelerator: reorganized dataflow with "
        "zero skipping on transposed convolutions"
    )

    def estimate_layer(self, binding: LayerBinding) -> GanaxLayerEstimate:
        """Expose the raw analytical estimate (used by ablation benchmarks)."""
        return estimate_layer(
            binding,
            self._config,
            zero_skipping=self._options.ganax_zero_skipping,
            schedule=self._options.schedule,
        )

    def simulate_layer(self, binding: LayerBinding) -> LayerResult:
        """Simulate a single bound layer."""
        estimate = self.estimate_layer(binding)
        return self._layer_result(
            binding,
            cycles=estimate.cycles,
            active_pe_cycles=estimate.active_pe_cycles,
            busy_pe_cycles=estimate.busy_pe_cycles,
            total_pe_cycles=estimate.total_pe_cycles,
            counters=estimate.counters,
        )

    def simulate_layers(
        self, bindings: Sequence[LayerBinding]
    ) -> Tuple[LayerResult, ...]:
        """Simulate a batch of layers through the vectorized estimator."""
        estimates = estimate_network(
            bindings,
            self._config,
            zero_skipping=self._options.ganax_zero_skipping,
            schedule=self._options.schedule,
        )
        return self._layer_results_from_estimates(bindings, estimates)
