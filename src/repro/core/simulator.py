"""Whole-network simulator for the GANAX accelerator.

:class:`GanaxSimulator` mirrors :class:`~repro.baseline.simulator.EyerissSimulator`
but uses the GANAX analytical model (:mod:`repro.core.performance`): transposed
convolutions run in MIMD-SIMD mode with the reorganized dataflow and zero
skipping, every other layer runs in plain SIMD mode at baseline efficiency.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..analysis.results import GanResult, LayerResult, NetworkResult
from ..config import ArchitectureConfig, SimulationOptions
from ..hw.energy import EnergyModel, EnergyTable
from ..nn.network import GANModel, LayerBinding, Network
from .performance import GanaxLayerEstimate, estimate_layer

#: Canonical accelerator identifier used in results.
ACCELERATOR_NAME = "ganax"


class GanaxSimulator:
    """Analytical simulator of the GANAX MIMD-SIMD accelerator."""

    def __init__(
        self,
        config: Optional[ArchitectureConfig] = None,
        energy_table: Optional[EnergyTable] = None,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        self._config = config or ArchitectureConfig.paper_default()
        self._options = options or SimulationOptions()
        self._energy_model = EnergyModel(
            table=energy_table or EnergyTable.paper_table2(),
            data_bits=self._config.data_bits,
            gated_op_fraction=self._config.zero_gating_energy_fraction,
        )

    @property
    def config(self) -> ArchitectureConfig:
        return self._config

    @property
    def energy_model(self) -> EnergyModel:
        return self._energy_model

    @property
    def name(self) -> str:
        return ACCELERATOR_NAME

    # ------------------------------------------------------------------
    # Layer / network / model entry points
    # ------------------------------------------------------------------
    def estimate_layer(self, binding: LayerBinding) -> GanaxLayerEstimate:
        """Expose the raw analytical estimate (used by ablation benchmarks)."""
        return estimate_layer(binding, self._config)

    def simulate_layer(self, binding: LayerBinding) -> LayerResult:
        """Simulate a single bound layer."""
        estimate = estimate_layer(binding, self._config)
        counters = estimate.counters.scaled(self._options.batch_size)
        cycles = estimate.cycles * self._options.batch_size
        energy = self._energy_model.energy_of(counters)
        return LayerResult(
            layer_name=binding.name,
            accelerator=ACCELERATOR_NAME,
            cycles=cycles,
            active_pe_cycles=estimate.active_pe_cycles * self._options.batch_size,
            busy_pe_cycles=estimate.busy_pe_cycles * self._options.batch_size,
            total_pe_cycles=estimate.total_pe_cycles * self._options.batch_size,
            macs_total=binding.total_macs * self._options.batch_size,
            macs_consequential=binding.consequential_macs * self._options.batch_size,
            counters=counters,
            energy=energy,
            is_transposed=binding.is_transposed,
            is_convolutional=binding.is_convolutional,
        )

    def simulate_network(
        self, network: Network, bindings: Optional[Iterable[LayerBinding]] = None
    ) -> NetworkResult:
        """Simulate every (or a chosen subset of) layer of ``network``."""
        selected = tuple(bindings) if bindings is not None else network.bindings
        results = tuple(self.simulate_layer(binding) for binding in selected)
        return NetworkResult(
            network_name=network.name,
            accelerator=ACCELERATOR_NAME,
            layer_results=results,
        )

    def simulate_gan(self, model: GANModel) -> GanResult:
        """Simulate a full GAN: generator plus (optionally) discriminator."""
        generator = self.simulate_network(model.generator)
        discriminator = None
        if self._options.include_discriminator:
            bindings = model.discriminator.bindings
            if model.discriminator_conv_only and self._options.magan_discriminator_conv_only:
                bindings = tuple(b for b in bindings if not b.is_transposed)
            discriminator = self.simulate_network(model.discriminator, bindings)
        return GanResult(
            model_name=model.name,
            accelerator=ACCELERATOR_NAME,
            generator=generator,
            discriminator=discriminator,
        )
