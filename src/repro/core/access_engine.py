"""Access µ-engine: strided µindex generators + address FIFOs (Figure 7a).

The access µ-engine owns one :class:`StridedIndexGenerator` per operand
stream (input, weight, output) and one address FIFO per generator.  Every
cycle each running generator pushes one address into its FIFO unless the FIFO
is full, in which case the generator stalls.  The execute µ-engine later pops
addresses from these FIFOs; the FIFOs are the only synchronisation between
the two µ-engines, exactly as in the paper's decoupled design.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import SimulationError
from ..hw.counters import EventCounters
from ..hw.fifo import Fifo
from ..isa.uops import AddressGenerator, ConfigRegister
from .index_generator import GeneratorConfig, StridedIndexGenerator


class AccessEngine:
    """The access µ-engine of one GANAX processing engine."""

    def __init__(
        self,
        fifo_depth: int = 8,
        counters: Optional[EventCounters] = None,
        name: str = "access",
    ) -> None:
        if fifo_depth <= 0:
            raise SimulationError(f"{name}: FIFO depth must be positive")
        self._name = name
        self._counters = counters
        self._generators: Dict[AddressGenerator, StridedIndexGenerator] = {
            stream: StridedIndexGenerator(name=f"{name}.{stream.name.lower()}")
            for stream in AddressGenerator
        }
        self._fifos: Dict[AddressGenerator, Fifo[int]] = {
            stream: Fifo(depth=fifo_depth, name=f"{name}.{stream.name.lower()}_fifo")
            for stream in AddressGenerator
        }

    # ------------------------------------------------------------------
    # Configuration (access.cfg / access.start / access.stop µops)
    # ------------------------------------------------------------------
    def write_register(
        self, stream: AddressGenerator, register: ConfigRegister, value: int
    ) -> None:
        self._generators[stream].write_register(register, value)

    def configure(self, stream: AddressGenerator, config: GeneratorConfig) -> None:
        self._generators[stream].configure(config)

    def start(self, stream: AddressGenerator) -> None:
        self._generators[stream].start()

    def stop(self, stream: AddressGenerator) -> None:
        self._generators[stream].stop()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def generator(self, stream: AddressGenerator) -> StridedIndexGenerator:
        return self._generators[stream]

    def fifo(self, stream: AddressGenerator) -> Fifo[int]:
        return self._fifos[stream]

    @property
    def busy(self) -> bool:
        """True while any generator is running or any FIFO holds addresses."""
        return any(g.running for g in self._generators.values()) or any(
            not f.is_empty for f in self._fifos.values()
        )

    def pending_addresses(self, stream: AddressGenerator) -> int:
        return self._fifos[stream].occupancy

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Advance all generators one cycle; returns addresses produced."""
        produced = 0
        for stream, generator in self._generators.items():
            fifo = self._fifos[stream]
            if not generator.running:
                continue
            if fifo.is_full:
                # Back-pressure: a full address FIFO stalls its generator.
                continue
            address = generator.tick()
            if address is None:
                continue
            fifo.push(address)
            produced += 1
            if self._counters is not None:
                self._counters.index_generations += 1
        return produced

    # ------------------------------------------------------------------
    # Execute-side interface
    # ------------------------------------------------------------------
    def peek_address(self, stream: AddressGenerator) -> Optional[int]:
        return self._fifos[stream].peek()

    def pop_address(self, stream: AddressGenerator) -> Optional[int]:
        """Pop the next address for ``stream`` or None when the FIFO is empty."""
        return self._fifos[stream].try_pop()

    def has_address(self, stream: AddressGenerator) -> bool:
        return not self._fifos[stream].is_empty

    def drain_statistics(self) -> Dict[str, Tuple[int, int]]:
        """Per-stream (pushes, pops) statistics for tests and reports."""
        return {
            stream.name.lower(): (fifo.total_pushes, fifo.total_pops)
            for stream, fifo in self._fifos.items()
        }
