"""Strided µindex generator (paper Figure 7b).

The access µ-engine of every GANAX PE contains one strided µindex generator
per operand stream (input, weight, output).  Five configuration registers
govern the generated pattern:

* ``Addr``   — the starting point of the counter within the range,
* ``Offset`` — a constant added to every generated value (the base address),
* ``Step``   — the increment applied by the modulo adder each cycle,
* ``End``    — the exclusive upper bound of the counting range, and
* ``Repeat`` — how many rounds (wrap-arounds) are generated before stopping.

Each cycle the generator emits ``Offset + current`` and advances ``current``
by ``Step`` through the modulo adder: when the sum reaches ``End`` it wraps by
subtracting ``End`` and the ``Repeat`` counter is decremented; when ``Repeat``
reaches zero the ``Stop`` signal is asserted and no further addresses are
produced.  After configuration the generator yields one address per cycle
without any further controller intervention, which is what lets GANAX reuse
tiny execute µops on millions of operands.

Two common configurations used by the layer compiler:

* sequential sweep of ``n`` addresses starting at ``base``:
  ``Addr=0, Offset=base, Step=1, End=n, Repeat=1``;
* the same constant address repeated ``n`` times (a stationary operand):
  ``Addr=0, Offset=base, Step=1, End=1, Repeat=n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SimulationError
from ..isa.uops import ConfigRegister


@dataclass
class GeneratorConfig:
    """The five configuration registers of one strided µindex generator."""

    addr: int = 0
    offset: int = 0
    step: int = 1
    end: int = 1
    repeat: int = 0

    def validate(self) -> None:
        if self.step <= 0:
            raise SimulationError(f"index generator Step must be positive, got {self.step}")
        if self.end <= 0:
            raise SimulationError(f"index generator End must be positive, got {self.end}")
        if self.step > self.end:
            raise SimulationError(
                f"index generator Step ({self.step}) must not exceed End "
                f"({self.end}); the modulo adder wraps within [0, End)"
            )
        if self.repeat < 0:
            raise SimulationError(f"index generator Repeat must be >= 0, got {self.repeat}")
        if self.addr < 0 or self.offset < 0:
            raise SimulationError("index generator Addr/Offset must be >= 0")
        if self.addr >= self.end:
            raise SimulationError(
                f"index generator Addr ({self.addr}) must be < End ({self.end})"
            )

    def addresses_per_round(self) -> int:
        """Number of addresses emitted in one round of the counting range."""
        span = self.end - self.addr
        return (span + self.step - 1) // self.step

    def total_addresses(self) -> int:
        """Total addresses the configuration will emit before stopping.

        Each round starts where the modulo adder left off (``Addr`` for the
        first round, the wrapped remainder afterwards) and runs until the next
        wrap, so rounds can differ in length when ``Step`` does not divide
        ``End``.  The count is computed round by round with the same modulo
        arithmetic the hardware applies.
        """
        total = 0
        start = self.addr
        for _ in range(self.repeat):
            length = (self.end - start + self.step - 1) // self.step
            total += length
            start = start + length * self.step - self.end
        return total


class StridedIndexGenerator:
    """Cycle-level model of the strided µindex generator."""

    def __init__(self, name: str = "indexgen") -> None:
        self._name = name
        self._config = GeneratorConfig()
        self._current = 0
        self._repeats_left = 0
        self._running = False
        self._generated = 0

    # ------------------------------------------------------------------
    # Configuration interface (driven by access.cfg µops)
    # ------------------------------------------------------------------
    def write_register(self, register: ConfigRegister, value: int) -> None:
        """Write one configuration register (the access.cfg µop)."""
        if value < 0:
            raise SimulationError(f"{self._name}: register value must be >= 0")
        if register is ConfigRegister.ADDR:
            self._config.addr = value
        elif register is ConfigRegister.OFFSET:
            self._config.offset = value
        elif register is ConfigRegister.STEP:
            self._config.step = value
        elif register is ConfigRegister.END:
            self._config.end = value
        elif register is ConfigRegister.REPEAT:
            self._config.repeat = value
        else:  # pragma: no cover - enum is exhaustive
            raise SimulationError(f"unknown configuration register {register}")

    def configure(self, config: GeneratorConfig) -> None:
        """Load a full configuration at once (convenience for tests)."""
        self._config = GeneratorConfig(
            addr=config.addr,
            offset=config.offset,
            step=config.step,
            end=config.end,
            repeat=config.repeat,
        )

    def start(self) -> None:
        """The access.start µop: begin generating addresses."""
        self._config.validate()
        self._current = self._config.addr
        self._repeats_left = self._config.repeat
        self._running = self._repeats_left > 0

    def stop(self) -> None:
        """The access.stop µop: interrupt address generation."""
        self._running = False

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    @property
    def running(self) -> bool:
        """True while the Stop signal has not been asserted."""
        return self._running

    @property
    def addresses_generated(self) -> int:
        return self._generated

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    def tick(self) -> Optional[int]:
        """Advance one cycle; returns the generated address or None if stopped."""
        if not self._running:
            return None
        address = self._config.offset + self._current
        self._generated += 1

        nxt = self._current + self._config.step
        if nxt < self._config.end:
            self._current = nxt
        else:
            # Modulo adder wrap: subtract End and decrement Repeat.
            self._current = nxt - self._config.end
            self._repeats_left -= 1
            if self._repeats_left <= 0:
                self._running = False
        return address

    def drain(self, limit: int = 1_000_000) -> List[int]:
        """Run the generator to completion and collect every address.

        Intended for tests and the compiler's static address-stream checks;
        ``limit`` guards against misconfigured infinite patterns.
        """
        addresses: List[int] = []
        while self._running:
            if len(addresses) >= limit:
                raise SimulationError(
                    f"{self._name}: drained more than {limit} addresses; "
                    "configuration is likely wrong"
                )
            value = self.tick()
            if value is None:
                break
            addresses.append(value)
        return addresses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self._config
        return (
            f"StridedIndexGenerator(name={self._name!r}, addr={c.addr}, "
            f"offset={c.offset}, step={c.step}, end={c.end}, repeat={c.repeat}, "
            f"running={self._running})"
        )
