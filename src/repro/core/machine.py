"""Cycle-level GANAX machine: PE array + global controller.

:class:`GanaxMachine` executes :class:`~repro.isa.program.MicroProgram`
objects on a (usually small) array of processing vectors.  It is used to

* validate the ISA and the decoupled access-execute microarchitecture
  end-to-end against the NumPy functional reference (tests and the ISA
  walkthrough example), and
* measure cycle counts of the GANAX dataflow versus the conventional dense
  dataflow on identical hardware for small layers (an ablation benchmark).

Full-model numbers in the experiments come from the analytical model
(:mod:`repro.core.performance`), mirroring how the paper's own evaluation uses
a simulator rather than RTL for whole networks.

Dispatch semantics
------------------
One global µop is dispatched per cycle, in program order:

* ``access.cfg`` writes a configuration register of one generator in every PE
  of the addressed PV; it stalls while that generator is still running so an
  in-flight pattern is never corrupted.
* ``access.start`` / ``access.stop`` control the addressed generator.
* ``mimd.ld`` writes the repeat register of every PE in the addressed PV.
* an execute-group µop (SIMD mode) is broadcast to every PE of every PV.
* ``mimd.exe`` (MIMD-SIMD mode) makes each PV fetch the µop selected by its
  4-bit index from its local buffer and broadcast it to its own PEs.

Broadcasts apply back-pressure: if any destination µop FIFO is full the
global µop retries on the next cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import ArchitectureConfig
from ..errors import SimulationError
from ..hw.counters import EventCounters
from ..isa.program import MicroProgram
from ..isa.uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    ExecuteUop,
    MicroOp,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)
from .pv import ProcessingVector
from .uop_buffers import GlobalUopBuffer


@dataclass(frozen=True)
class MachineRunStatistics:
    """Summary of one program execution on the cycle-level machine."""

    cycles: int
    dispatched_uops: int
    dispatch_stall_cycles: int
    executed_pe_uops: int
    pe_busy_cycles: int
    pe_stall_cycles: int

    @property
    def pe_occupancy(self) -> float:
        total = self.pe_busy_cycles + self.pe_stall_cycles
        if total == 0:
            return 0.0
        return self.pe_busy_cycles / total


class GanaxMachine:
    """A cycle-level model of the GANAX PE array and its global controller."""

    def __init__(
        self,
        num_pvs: int = 2,
        pes_per_pv: int = 4,
        config: Optional[ArchitectureConfig] = None,
        pe_buffer_words: Optional[Dict[str, int]] = None,
    ) -> None:
        if num_pvs <= 0 or pes_per_pv <= 0:
            raise SimulationError("machine dimensions must be positive")
        base = config or ArchitectureConfig.paper_default()
        self._config = base.with_updates(num_pvs=num_pvs, pes_per_pv=pes_per_pv)
        self._counters = EventCounters()
        self._pvs: List[ProcessingVector] = [
            ProcessingVector(
                pv_index=i,
                num_pes=pes_per_pv,
                config=self._config,
                counters=self._counters,
                pe_buffer_words=pe_buffer_words,
            )
            for i in range(num_pvs)
        ]
        self._global_buffer = GlobalUopBuffer(
            entries=self._config.global_uop_entries, counters=self._counters
        )
        self._cycle = 0
        self._dispatched = 0
        self._dispatch_stalls = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> ArchitectureConfig:
        return self._config

    @property
    def counters(self) -> EventCounters:
        return self._counters

    @property
    def pvs(self) -> List[ProcessingVector]:
        return self._pvs

    @property
    def cycle(self) -> int:
        return self._cycle

    def pv(self, index: int) -> ProcessingVector:
        if not (0 <= index < len(self._pvs)):
            raise SimulationError(f"PV index {index} out of range")
        return self._pvs[index]

    @property
    def busy(self) -> bool:
        return (not self._global_buffer.exhausted) or any(pv.busy for pv in self._pvs)

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------
    def load_program(self, program: MicroProgram) -> None:
        """Load local µop buffers and the global µop stream."""
        if program.num_pvs != len(self._pvs):
            raise SimulationError(
                f"program targets {program.num_pvs} PVs but the machine has "
                f"{len(self._pvs)}"
            )
        program.validate_against_buffers(self._config.local_uop_entries)
        for pv, uops in zip(self._pvs, program.local_uops):
            pv.preload_local_uops(uops)
        self._global_buffer.load_program(program.global_uops)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 1_000_000) -> MachineRunStatistics:
        """Run until the program completes and the array drains."""
        start_cycle = self._cycle
        start_dispatched = self._dispatched
        start_stalls = self._dispatch_stalls
        while self.busy:
            if self._cycle - start_cycle >= max_cycles:
                raise SimulationError(
                    f"machine did not finish within {max_cycles} cycles; "
                    "the program is likely deadlocked"
                )
            self.step()
        busy = sum(pe.execute.busy_cycles for pv in self._pvs for pe in pv.pes)
        stalls = sum(pe.execute.stall_cycles for pv in self._pvs for pe in pv.pes)
        executed = sum(pe.execute.executed_uops for pv in self._pvs for pe in pv.pes)
        return MachineRunStatistics(
            cycles=self._cycle - start_cycle,
            dispatched_uops=self._dispatched - start_dispatched,
            dispatch_stall_cycles=self._dispatch_stalls - start_stalls,
            executed_pe_uops=executed,
            pe_busy_cycles=busy,
            pe_stall_cycles=stalls,
        )

    def step(self) -> None:
        """Advance the whole machine by one cycle."""
        self._cycle += 1
        self._dispatch_one()
        for pv in self._pvs:
            pv.tick()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_one(self) -> None:
        uop = self._global_buffer.peek()
        if uop is None:
            return
        if self._try_dispatch(uop):
            self._global_buffer.advance()
            self._dispatched += 1
        else:
            self._dispatch_stalls += 1

    def _try_dispatch(self, uop: MicroOp) -> bool:
        if isinstance(uop, AccessCfg):
            pv = self.pv(uop.pv_index)
            if pv.any_generator_running(uop.generator):
                return False
            pv.apply_access_cfg(uop.generator, uop.register, uop.immediate)
            return True
        if isinstance(uop, AccessStart):
            pv = self.pv(uop.pv_index)
            if pv.any_generator_running(uop.generator):
                return False
            pv.start_generator(uop.generator)
            return True
        if isinstance(uop, AccessStop):
            self.pv(uop.pv_index).stop_generator(uop.generator)
            return True
        if isinstance(uop, MimdLoad):
            pv = self.pv(uop.pv_index)
            if uop.destination == "repeat":
                pv.set_repeat_register(uop.immediate)
                return True
            raise SimulationError(
                f"mimd.ld destination '{uop.destination}' is not modelled"
            )
        if isinstance(uop, (ExecuteUop, RepeatUop)):
            # SIMD mode: broadcast to every PE of every PV; all-or-nothing.
            if any(
                any(pe.execute.uop_fifo.is_full for pe in pv.pes) for pv in self._pvs
            ):
                return False
            for pv in self._pvs:
                pv.broadcast_uop(uop)
            return True
        if isinstance(uop, MimdExecute):
            # MIMD-SIMD mode: per-PV local fetch; all-or-nothing so the PVs
            # stay aligned with the global stream.
            if any(
                any(pe.execute.uop_fifo.is_full for pe in pv.pes) for pv in self._pvs
            ):
                return False
            for pv, index in zip(self._pvs, uop.local_indices):
                pv.dispatch_local(index)
            return True
        raise SimulationError(f"cannot dispatch µop {uop!r}")

    # ------------------------------------------------------------------
    # Data-side helpers used by the layer executor
    # ------------------------------------------------------------------
    def load_pe_operands(
        self,
        pv_index: int,
        pe_index: int,
        input_row: Sequence[float],
        weight_row: Sequence[float],
    ) -> None:
        pe = self.pv(pv_index).pe(pe_index)
        pe.clear_output()
        pe.load_input_row(input_row)
        pe.load_weight_row(weight_row)

    def accumulate_pv(self, pv_index: int, width: int, active_pes: int) -> List[float]:
        return self.pv(pv_index).accumulate_rows(width, active_pes=active_pes)
