"""Analytical cycle and activity model of the GANAX accelerator.

GANAX executes conventional convolutions in pure SIMD mode with the same
row-stationary behaviour as the EYERISS baseline ("without compromising the
efficiency of conventional convolution accelerators"), so those layers reuse
the baseline estimate.  Transposed convolutions run in MIMD-SIMD mode with the
GANAX dataflow:

* only consequential multiply-adds occupy PE cycles (zero skipping via the
  strided µindex generators),
* the output/filter-row reorganization packs the consequential filter rows
  onto adjacent PEs, so the horizontal accumulation chain shrinks from the
  full kernel height to the number of consequential filter rows,
* the global controller pays a small MIMD dispatch overhead per group of
  µops, amortised by the ``repeat`` µop and the decoupled access engines, and
* DRAM traffic covers only genuine values — the zeros are never stored or
  streamed because the index generators skip them.

The model also caps the achievable utilization at
``ArchitectureConfig.ganax_target_utilization`` to reflect pipeline ramp-up,
edge windows and residual load imbalance (the paper reports roughly 90% PE
utilization rather than 100%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..baseline.performance import (
    BaselineLayerEstimate,
    _float64_safe,
    estimate_layer as baseline_estimate,
    estimate_network as baseline_estimate_network,
    gbuf_input_tiles,
)
from ..baseline.row_stationary import RowStationaryMapping, map_layer
from ..config import ArchitectureConfig
from ..errors import SimulationError
from ..hw.counters import EventCounters
from ..isa.encoding import GLOBAL_UOP_BITS
from ..nn.layers import TransposedConvLayer
from ..nn.network import LayerBinding
from ..schedule import ScheduleLike, ScheduleSpec, resolve_schedule
from .dataflow import ScheduleSummary, schedule_summary


def _iround(value: float) -> int:
    """Deterministic nearest-integer rounding shared by every estimator path.

    Plain ``int(round(x))`` is half-to-even on the arriving float64, which
    makes the result sensitive to sub-ULP noise when the scalar and the
    vectorized (NumPy) paths produce the same quantity through different but
    algebraically equal float expressions.  Quantizing to nine decimals first
    snaps that noise away while preserving the half-to-even behaviour on
    genuine ties (e.g. an exactly-2.5 average filter-row count still rounds
    to 2).
    """
    return int(round(round(float(value), 9)))


@dataclass(frozen=True)
class GanaxLayerEstimate:
    """Cycle and activity estimate of one layer on GANAX."""

    layer_name: str
    cycles: int
    compute_cycles: int
    accumulation_cycles: int
    dispatch_cycles: int
    dram_cycles: int
    active_pe_cycles: int
    busy_pe_cycles: int
    total_pe_cycles: int
    counters: EventCounters
    mode: str  # "simd" for conventional layers, "mimd-simd" for tconv


def estimate_layer(
    binding: LayerBinding,
    config: ArchitectureConfig,
    *,
    zero_skipping: bool = True,
    schedule: ScheduleLike = None,
) -> GanaxLayerEstimate:
    """Estimate cycles and activity of one layer on GANAX.

    ``zero_skipping=False`` models the ablated dense machine (the
    ``"ganax-noskip"`` registry entry): transposed convolutions execute the
    zero-inserted input with the conventional row-stationary dataflow while
    the global controller still pays the MIMD µop dispatch overhead.

    ``schedule`` selects the :class:`~repro.schedule.ScheduleSpec` whose
    lowering knobs scale the dispatch accounting (see
    :func:`_dispatch_overhead`); the default spec reproduces the legacy
    estimate exactly.  Conventional layers run in pure SIMD mode where the
    MIMD schedule has no effect.
    """
    spec = resolve_schedule(schedule)
    layer = binding.layer
    if isinstance(layer, TransposedConvLayer):
        if not zero_skipping:
            return _estimate_dense_transposed_conv(binding, config, spec)
        return _estimate_transposed_conv(binding, config, spec)
    return _from_baseline(baseline_estimate(binding, config), mode="simd")


def _dispatch_overhead(
    schedule: ScheduleSummary, config: ArchitectureConfig, spec: ScheduleSpec
) -> Tuple[int, int, int]:
    """MIMD dispatch accounting shared by the skipping and dense tconv paths.

    One mimd.exe (plus its access configuration, amortised by the decoupled
    access engines) is charged per output row per pattern switch; the
    two-level µop buffer makes the dispatch a single-cycle broadcast.
    Returns ``(dispatch_events, dispatch_cycles, uop_fetches)`` — both
    execution modes must model the same dispatch tax, since their difference
    is exactly what the zero-skipping ablation isolates.

    The schedule spec scales the tax with pure-integer factors — repeat
    unrolling multiplies the dispatch events, configuration hoisting shrinks
    the per-event µop-fetch fan-out — applied identically here and in the
    vectorized layer table, so the scalar and NumPy paths stay bit-identical
    and the default spec reproduces the legacy numbers exactly.
    """
    dispatch_events = (
        schedule.output_rows
        * max(1, schedule.num_patterns)
        * spec.dispatch_event_multiplier()
    )
    dispatch_cycles = math.ceil(
        dispatch_events * config.mimd_dispatch_overhead_cycles / max(1, config.num_pvs)
    )
    uop_fetches = dispatch_events * spec.uop_fetches_per_event(config.num_pvs)
    return dispatch_events, dispatch_cycles, uop_fetches


def _from_baseline(estimate: BaselineLayerEstimate, mode: str) -> GanaxLayerEstimate:
    """Wrap a baseline estimate: GANAX matches EYERISS on conventional layers."""
    return GanaxLayerEstimate(
        layer_name=estimate.layer_name,
        cycles=estimate.cycles,
        compute_cycles=estimate.compute_cycles,
        accumulation_cycles=estimate.accumulation_cycles,
        dispatch_cycles=0,
        dram_cycles=estimate.dram_cycles,
        active_pe_cycles=estimate.active_pe_cycles,
        busy_pe_cycles=estimate.busy_pe_cycles,
        total_pe_cycles=estimate.total_pe_cycles,
        counters=estimate.counters,
        mode=mode,
    )


def _estimate_transposed_conv(
    binding: LayerBinding, config: ArchitectureConfig, spec: ScheduleSpec
) -> GanaxLayerEstimate:
    layer = binding.layer
    assert isinstance(layer, TransposedConvLayer)
    schedule = schedule_summary(binding)
    mapping = _reorganized_mapping(binding, schedule, config)

    peak = config.num_pes
    utilization_cap = config.ganax_target_utilization
    effective_throughput = peak * mapping.occupancy * utilization_cap
    if effective_throughput <= 0:
        raise SimulationError(f"{layer.name}: zero effective throughput")

    consequential = binding.consequential_macs
    output_elements = binding.output_shape.num_elements

    # --- compute -----------------------------------------------------------
    compute_cycles = math.ceil(consequential / effective_throughput)

    # --- horizontal accumulation -------------------------------------------
    # After the filter-row reorganization only the consequential filter rows
    # take part in the accumulation chain of each output row (2-3 hops instead
    # of the full kernel height in the paper's example).
    avg_active_rows = max(1.0, schedule.average_active_filter_rows)
    depth_taps = _depth_tap_factor(layer, binding)
    accumulation_hops = _iround(output_elements * avg_active_rows * depth_taps)
    accumulation_cycles = math.ceil(accumulation_hops / effective_throughput)

    # --- MIMD dispatch overhead ---------------------------------------------
    dispatch_events, dispatch_cycles, uop_fetches = _dispatch_overhead(
        schedule, config, spec
    )

    # --- DRAM ---------------------------------------------------------------
    # Only genuine values are streamed: the zero insertion is performed
    # implicitly by the strided µindex generators, so the working set that
    # determines the weight re-streaming tile count is the genuine input.
    input_elements = binding.input_shape.num_elements
    weight_words = binding.weight_count
    output_words = output_elements
    weight_tiles = gbuf_input_tiles(input_elements, config)
    dram_read_words = input_elements + weight_words * weight_tiles
    dram_words = dram_read_words + output_words
    dram_bytes = dram_words * config.data_bytes
    dram_cycles = math.ceil(dram_bytes / config.dram_bandwidth_bytes_per_cycle)

    cycles = max(compute_cycles + accumulation_cycles + dispatch_cycles, dram_cycles)

    # --- activity counters ---------------------------------------------------
    counters = EventCounters()
    counters.mac_ops = consequential
    counters.gated_ops = 0
    counters.alu_ops = accumulation_hops
    counters.index_generations = 3 * consequential  # input, weight, output streams

    counters.register_file_reads = 2 * consequential
    counters.register_file_writes = consequential

    out_channels = binding.output_shape.channels
    m_parallel = max(1, mapping.sets_per_pass)
    m_passes = max(1, math.ceil(out_channels / m_parallel))
    gbuf_input_reads = input_elements * m_passes
    gbuf_weight_reads = weight_words * weight_tiles
    counters.global_buffer_reads = gbuf_input_reads + gbuf_weight_reads
    counters.global_buffer_writes = output_words

    counters.noc_transfers = gbuf_input_reads + gbuf_weight_reads + accumulation_hops

    counters.dram_reads = dram_read_words
    counters.dram_writes = output_words

    # µop fetches: one global fetch per dispatch event plus the local-buffer
    # fetches the PVs perform; both are tiny next to data traffic but are
    # counted for completeness (they appear in the RF/µop energy bucket).
    counters.uop_fetches = uop_fetches

    active_pe_cycles = consequential
    busy_pe_cycles = consequential + accumulation_hops
    total_pe_cycles = cycles * peak

    return GanaxLayerEstimate(
        layer_name=layer.name,
        cycles=cycles,
        compute_cycles=compute_cycles,
        accumulation_cycles=accumulation_cycles,
        dispatch_cycles=dispatch_cycles,
        dram_cycles=dram_cycles,
        active_pe_cycles=active_pe_cycles,
        busy_pe_cycles=busy_pe_cycles,
        total_pe_cycles=total_pe_cycles,
        counters=counters,
        mode="mimd-simd",
    )


def _estimate_dense_transposed_conv(
    binding: LayerBinding, config: ArchitectureConfig, spec: ScheduleSpec
) -> GanaxLayerEstimate:
    """Transposed convolution with zero skipping disabled (``ganax-noskip``).

    Without the strided µindex generators every inserted-zero slot occupies a
    PE cycle and the materialised zero-inserted input is streamed exactly as
    on the EYERISS baseline, so cycles, traffic and energy follow the
    baseline estimate.  The MIMD controller still issues one µop group per
    output row per access pattern, which is pure overhead here — the variant
    pays the GANAX dispatch tax without harvesting any sparsity.
    """
    return _dense_tconv_from_base(
        binding, baseline_estimate(binding, config), config, spec
    )


def _dense_tconv_from_base(
    binding: LayerBinding,
    base: BaselineLayerEstimate,
    config: ArchitectureConfig,
    spec: ScheduleSpec,
) -> GanaxLayerEstimate:
    """Overlay the MIMD dispatch tax on a precomputed baseline estimate."""
    schedule = schedule_summary(binding)
    _events, dispatch_cycles, uop_fetches = _dispatch_overhead(schedule, config, spec)
    cycles = max(
        base.compute_cycles + base.accumulation_cycles + dispatch_cycles,
        base.dram_cycles,
    )
    counters = EventCounters.from_dict(base.counters.as_dict())
    counters.uop_fetches += uop_fetches
    return GanaxLayerEstimate(
        layer_name=binding.name,
        cycles=cycles,
        compute_cycles=base.compute_cycles,
        accumulation_cycles=base.accumulation_cycles,
        dispatch_cycles=dispatch_cycles,
        dram_cycles=base.dram_cycles,
        active_pe_cycles=base.active_pe_cycles,
        busy_pe_cycles=base.busy_pe_cycles,
        total_pe_cycles=cycles * config.num_pes,
        counters=counters,
        mode="mimd-simd-dense",
    )


def _reorganized_mapping(
    binding: LayerBinding, schedule: ScheduleSummary, config: ArchitectureConfig
) -> RowStationaryMapping:
    """Spatial mapping after the output/filter-row reorganization.

    The reorganization removes the idle compute nodes from every PE set: the
    logical set height shrinks from the kernel height to the average number of
    consequential filter rows, which lets more sets be replicated across the
    array and raises occupancy (Figure 5c).
    """
    base = map_layer(binding, config)
    avg_rows = max(1, _iround(schedule.average_active_filter_rows))
    set_height = min(avg_rows, config.num_pvs)
    set_width = base.set_width
    sets_down = max(1, config.num_pvs // set_height)
    sets_across = max(1, config.pes_per_pv // set_width)
    sets_per_pass = sets_down * sets_across
    used = sets_per_pass * set_height * set_width
    occupancy = min(1.0, used / config.num_pes)
    return RowStationaryMapping(
        filter_rows=avg_rows,
        output_rows=base.output_rows,
        set_height=set_height,
        set_width=set_width,
        folds=base.folds,
        sets_per_pass=sets_per_pass,
        occupancy=occupancy,
    )


# ----------------------------------------------------------------------
# Vectorized whole-network estimation
# ----------------------------------------------------------------------
def estimate_network(
    bindings: Sequence[LayerBinding],
    config: ArchitectureConfig,
    *,
    zero_skipping: bool = True,
    schedule: ScheduleLike = None,
) -> Tuple[GanaxLayerEstimate, ...]:
    """Estimate every layer of a network on GANAX as one NumPy array program.

    Conventional layers route through the baseline's vectorized layer table
    (GANAX matches EYERISS on them); transposed convolutions are evaluated
    column-wise over a MIMD-SIMD layer table.  Bit-identical to mapping
    :func:`estimate_layer` over the bindings — layers whose intermediates
    would lose float64 exactness fall back to the scalar path.
    """
    spec = resolve_schedule(schedule)
    bindings = tuple(bindings)
    estimates: List[GanaxLayerEstimate] = [None] * len(bindings)  # type: ignore[list-item]
    tconv = [
        (i, b) for i, b in enumerate(bindings)
        if isinstance(b.layer, TransposedConvLayer)
    ]
    rest = [
        (i, b) for i, b in enumerate(bindings)
        if not isinstance(b.layer, TransposedConvLayer)
    ]
    if rest:
        base_estimates = baseline_estimate_network([b for _i, b in rest], config)
        for (i, _b), base in zip(rest, base_estimates):
            estimates[i] = _from_baseline(base, mode="simd")
    if tconv:
        tconv_bindings = [b for _i, b in tconv]
        if zero_skipping:
            tconv_estimates = _tconv_table_estimates(tconv_bindings, config, spec)
        else:
            tconv_estimates = [
                _dense_tconv_from_base(b, base, config, spec)
                for b, base in zip(
                    tconv_bindings,
                    baseline_estimate_network(tconv_bindings, config),
                )
            ]
        for (i, _b), estimate in zip(tconv, tconv_estimates):
            estimates[i] = estimate
    return tuple(estimates)


def _tconv_table_estimates(
    bindings: Sequence[LayerBinding], config: ArchitectureConfig, spec: ScheduleSpec
) -> List[GanaxLayerEstimate]:
    """The zero-skipping MIMD-SIMD rows of the layer table, column-wise."""
    summaries = [schedule_summary(b) for b in bindings]
    mappings = [
        _reorganized_mapping(b, s, config) for b, s in zip(bindings, summaries)
    ]
    cons = [b.consequential_macs for b in bindings]
    out_elems = [b.output_shape.num_elements for b in bindings]
    in_elems = [b.input_shape.num_elements for b in bindings]
    weights = [b.weight_count for b in bindings]
    depth_taps = [_depth_tap_factor(b.layer, b) for b in bindings]
    tiles = [gbuf_input_tiles(elements, config) for elements in in_elems]

    # Pure-integer columns, exact in Python; the schedule factors are the
    # same integers _dispatch_overhead applies on the scalar path.
    event_multiplier = spec.dispatch_event_multiplier()
    fetches_per_event = spec.uop_fetches_per_event(config.num_pvs)
    dispatch_events = [
        s.output_rows * max(1, s.num_patterns) * event_multiplier
        for s in summaries
    ]
    uop_fetches = [events * fetches_per_event for events in dispatch_events]
    weight_reads = [w * t for w, t in zip(weights, tiles)]
    dram_read = [e + wr for e, wr in zip(in_elems, weight_reads)]
    dram_bytes = [
        (r + o) * config.data_bytes for r, o in zip(dram_read, out_elems)
    ]
    m_passes = [
        max(1, math.ceil(b.output_shape.channels / max(1, m.sets_per_pass)))
        for b, m in zip(bindings, mappings)
    ]
    gbuf_input_reads = [e * p for e, p in zip(in_elems, m_passes)]
    dispatch_work = [
        events * config.mimd_dispatch_overhead_cycles for events in dispatch_events
    ]

    if not _float64_safe(cons, out_elems, dram_bytes, dispatch_work):
        return [_estimate_transposed_conv(b, config, spec) for b in bindings]

    peak = config.num_pes
    utilization_cap = config.ganax_target_utilization
    occupancy = np.array([m.occupancy for m in mappings], dtype=np.float64)
    effective_throughput = peak * occupancy * utilization_cap
    if np.any(effective_throughput <= 0):
        bad = bindings[int(np.argmax(effective_throughput <= 0))]
        raise SimulationError(f"{bad.name}: zero effective throughput")

    compute_cycles = _ceil_div(cons, effective_throughput)
    avg_active_rows = np.maximum(
        1.0,
        np.array(
            [s.average_active_filter_rows for s in summaries], dtype=np.float64
        ),
    )
    accumulation_products = (
        np.asarray(out_elems, dtype=np.float64)
        * avg_active_rows
        * np.asarray(depth_taps, dtype=np.float64)
    )
    accumulation_hops = [_iround(value) for value in accumulation_products.tolist()]
    if not _float64_safe(accumulation_hops):
        return [_estimate_transposed_conv(b, config, spec) for b in bindings]
    accumulation_cycles = _ceil_div(accumulation_hops, effective_throughput)
    dispatch_cycles = _ceil_div(
        dispatch_work, np.float64(max(1, config.num_pvs))
    )
    dram_cycles = _ceil_div(
        dram_bytes, np.float64(config.dram_bandwidth_bytes_per_cycle)
    )
    cycles = np.maximum(
        compute_cycles + accumulation_cycles + dispatch_cycles, dram_cycles
    )

    estimates = []
    for row, binding in enumerate(bindings):
        counters = EventCounters()
        counters.mac_ops = cons[row]
        counters.gated_ops = 0
        counters.alu_ops = accumulation_hops[row]
        counters.index_generations = 3 * cons[row]
        counters.register_file_reads = 2 * cons[row]
        counters.register_file_writes = cons[row]
        counters.global_buffer_reads = gbuf_input_reads[row] + weight_reads[row]
        counters.global_buffer_writes = out_elems[row]
        counters.noc_transfers = (
            gbuf_input_reads[row] + weight_reads[row] + accumulation_hops[row]
        )
        counters.dram_reads = dram_read[row]
        counters.dram_writes = out_elems[row]
        counters.uop_fetches = uop_fetches[row]
        layer_cycles = int(cycles[row])
        estimates.append(
            GanaxLayerEstimate(
                layer_name=binding.name,
                cycles=layer_cycles,
                compute_cycles=int(compute_cycles[row]),
                accumulation_cycles=int(accumulation_cycles[row]),
                dispatch_cycles=int(dispatch_cycles[row]),
                dram_cycles=int(dram_cycles[row]),
                active_pe_cycles=cons[row],
                busy_pe_cycles=cons[row] + accumulation_hops[row],
                total_pe_cycles=layer_cycles * peak,
                counters=counters,
                mode="mimd-simd",
            )
        )
    return estimates


def _ceil_div(numerators: Sequence[int], divisor: np.ndarray) -> np.ndarray:
    """``ceil(n / d)`` over columns, matching ``math.ceil(int / float)``."""
    return np.ceil(np.asarray(numerators, dtype=np.float64) / divisor).astype(np.int64)


def _depth_tap_factor(layer: TransposedConvLayer, binding: LayerBinding) -> float:
    """Average consequential taps along the depth dimension of rank-3 layers.

    The 2-D schedule describes one depth slice; a voxel output element also
    accumulates across the consequential kernel planes, which multiplies the
    number of accumulation hops.  For rank-2 layers the factor is 1.
    """
    if layer.rank < 3:
        return 1.0
    taps = layer.consequential_taps_along_dim(binding.input_shape, 0)
    if not taps:
        return 1.0
    return max(1.0, sum(taps) / len(taps))
